"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that legacy editable
installs (``pip install -e .``) work on environments whose setuptools
cannot build PEP 660 editable wheels offline.
"""

from setuptools import setup

setup()
