"""Adaptive re-trading: recovering when a contracted seller fails.

QT strikes *contracts* before any data moves, which makes re-planning
after a node failure cheap: the buyer simply re-runs the trading
negotiation with the failed node excluded from the market, and surviving
replica holders win the re-auctioned parts.  (This is the base mechanism
behind the paper's "contracting to model partial/adaptive query
optimization" future-work item.)

The script also demonstrates subcontracting (the §3.5 extension): in a
federation where no node holds more than one relation, sellers purchase
the missing relation from peers and sell pre-joined answers.

Run with::

    python examples/failure_recovery.py
"""

from repro.bench import build_world
from repro.bench.experiments import build_split_federation_world
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.net import Network
from repro.trading import (
    BuyerPlanGenerator,
    QueryTrader,
    SellerAgent,
    Subcontractor,
)
from repro.workload import chain_query


def failure_demo() -> None:
    print("=== adaptive re-trading after a seller failure ===")
    world = build_world(nodes=8, n_relations=2, rows=4_000, fragments=4,
                        replicas=2, seed=5)
    query = chain_query(2, selection_cat=3)
    network = Network(world.model)
    trader = QueryTrader(
        "client",
        world.seller_agents(),
        network,
        BuyerPlanGenerator(world.builder, "client"),
    )
    first = trader.optimize(query)
    victim = first.contracts[0].seller
    print(f"initial plan: cost {first.plan_cost:.4f}s, contracts with "
          f"{sorted({c.seller for c in first.contracts})}")
    print(f"node {victim!r} fails before delivery — re-trading without it")
    second = trader.retrade_after_failure(query, {victim})
    survivors = sorted({c.seller for c in second.contracts})
    print(f"re-traded plan: cost {second.plan_cost:.4f}s, contracts with "
          f"{survivors}")
    assert victim not in survivors
    data = FederationData.build(world.catalog, seed=5)
    answer = PlanExecutor(data, query).run(second.best.plan)
    assert answer.equals_unordered(evaluate_query(query, data))
    print("re-traded plan executed and verified.\n")


def subcontracting_demo() -> None:
    print("=== subcontracting (Section 3.5 extension) ===")
    world = build_split_federation_world()
    query = chain_query(2, selection_cat=3)
    for subcontracting in (False, True):
        network = Network(world.model)
        sellers = {}
        for node in world.nodes:
            if node == "client":
                continue
            sub = Subcontractor(network=network) if subcontracting else None
            sellers[node] = SellerAgent(
                world.catalog.local(node), world.builder, subcontractor=sub
            )
        if subcontracting:
            for node, agent in sellers.items():
                agent.subcontractor.connect(
                    {m: a for m, a in sellers.items() if m != node}, network
                )
        trader = QueryTrader(
            "client", sellers, network,
            BuyerPlanGenerator(world.builder, "client"),
        )
        result = trader.optimize(query)
        label = "with" if subcontracting else "without"
        print(f"{label} subcontracting: plan cost {result.plan_cost:.4f}s, "
              f"{result.messages.messages} messages")
    print("\nsellers near the data buy the missing relation from peers and\n"
          "sell pre-joined answers — better plans for more messages.")


if __name__ == "__main__":
    failure_demo()
    subcontracting_demo()
