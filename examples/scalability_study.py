"""Scalability study: QT vs. traditional optimization as federations grow.

A compact version of experiment E3: the same 3-join query optimized over
federations of growing size (with data spread over proportionally more
fragments).  The traditional optimizer must first synchronize statistics
with every node and then enumerate placements centrally; QT broadcasts an
RFB and lets the interested sellers price their own shares in parallel.
Watch the crossover.

Run with::

    python examples/scalability_study.py
"""

from repro.bench import build_world, format_table, run_distidp, run_qt
from repro.workload import chain_query


def main() -> None:
    rows = []
    for nodes in (10, 25, 50, 100, 200):
        world = build_world(
            nodes=nodes,
            n_relations=4,
            fragments=max(4, nodes // 5),
            replicas=2,
            seed=7,
        )
        query = chain_query(3, selection_cat=3)
        qt = run_qt(world, query, mode="idp")
        idp = run_distidp(world, query)
        rows.append(
            [
                nodes,
                f"{qt.optimization_time:.4f}",
                qt.messages,
                f"{qt.plan_cost:.4f}",
                f"{idp.optimization_time:.4f}",
                idp.messages,
                f"{idp.plan_cost:.4f}",
            ]
        )
    print(
        format_table(
            "QT vs distributed IDP-M(2,5) as the federation grows",
            [
                "nodes",
                "qt opt time",
                "qt msgs",
                "qt plan cost",
                "idp opt time",
                "idp msgs",
                "idp plan cost",
            ],
            rows,
        )
    )
    print(
        "\nQT's simulated optimization time flattens (parallel seller-side"
        "\npricing); the traditional optimizer keeps growing with the"
        "\nfederation because every node must be consulted and every"
        "\nplacement enumerated centrally."
    )


if __name__ == "__main__":
    main()
