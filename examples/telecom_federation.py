"""The paper's motivating example, end to end.

A telecom's regional offices each run a DBMS with their own customers;
``invoiceline`` is replicated everywhere.  A manager at Athens asks for
the total charges billed by the Corfu and Myconos offices.  The script
shows each stage of the trading negotiation:

1. the seller-side query *rewrite* at Myconos (Section 3.4's example),
2. the offers each office makes (exact partial aggregates),
3. the winning plan — Athens "purchases the two answers from the Corfu
   and Myconos nodes", exactly the paper's narrative,
4. the same trade with the Section 3.5 materialized view enabled, which
   lets offices answer from a pre-aggregate and price the answer lower.

Run with::

    python examples/telecom_federation.py
"""

from repro.cost import CardinalityEstimator, CostModel
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.execution.tables import materialize_catalog
from repro.net import Network
from repro.optimizer import PlanBuilder
from repro.sql.rewrite import rewrite_query
from repro.trading import BuyerPlanGenerator, QueryTrader, SellerAgent
from repro.workload import build_telecom_scenario


def trade(scenario, label):
    estimator = CardinalityEstimator(scenario.stats, scenario.catalog.schemas)
    model = CostModel()
    builder = PlanBuilder(estimator, model, schemes=scenario.catalog.schemes)
    network = Network(model)
    sellers = {
        node: SellerAgent(scenario.catalog.local(node), builder)
        for node in scenario.nodes
    }
    trader = QueryTrader(
        "athens-client", sellers, network,
        BuyerPlanGenerator(builder, "athens-client"),
    )
    result = trader.optimize(scenario.manager_query())
    print(f"--- {label} ---")
    print(f"plan cost {result.plan_cost:.4f}s, "
          f"{result.messages.messages} messages, "
          f"{result.iterations} round(s)")
    print(result.best.plan.explain())
    print("contracts:")
    for contract in result.contracts:
        print("  ", contract.describe())
    print()
    return result


def main() -> None:
    scenario = build_telecom_scenario(
        n_offices=4, customers_per_office=1_000, lines_per_customer=5,
        invoice_placement="full",
    )
    query = scenario.manager_query()
    print("Manager at Athens asks:\n ", query.sql(), "\n")

    # --- Section 3.4's rewrite, shown at the Myconos node -------------
    held = scenario.catalog.held_by("Myconos")
    rewritten = rewrite_query(
        query, scenario.catalog.schemas, scenario.catalog.schemes, held
    )
    print("Myconos holds:", {k: sorted(v) for k, v in held.items()})
    print("Myconos rewrites the query to what it can answer locally:")
    print(" ", rewritten.query.sql())
    print("  (covers customer fragments", sorted(rewritten.coverage["c"]),
          "and the whole invoiceline table)\n")

    # --- The trade -----------------------------------------------------
    result = trade(scenario, "base federation")

    # --- Same trade with the Section 3.5 materialized view -------------
    with_views = build_telecom_scenario(
        n_offices=4, customers_per_office=1_000, lines_per_customer=5,
        invoice_placement="full", with_views=True,
    )
    view_result = trade(with_views, "with per-(office, custid) charge views")
    saving = (1 - view_result.plan_cost / result.plan_cost) * 100
    print(f"Materialized views reduce the plan cost by {saving:.0f}%.\n")

    # --- Execute and verify against a centralized run ------------------
    data = FederationData(
        scenario.catalog,
        materialize_catalog(scenario.catalog, 0, scenario.row_factories),
    )
    answer = PlanExecutor(data, query).run(result.best.plan)
    reference = evaluate_query(query, data)
    assert answer.equals_unordered(reference)
    print("Executed answer (matches centralized evaluation):")
    for row in answer.canonical():
        print(" ", dict(zip(answer.columns, row)))


if __name__ == "__main__":
    main()
