"""Quickstart: optimize one query by trading it over a small federation.

Builds an 8-node synthetic federation, writes a SQL query, runs the
Query-Trading optimizer, prints the winning distributed plan and the
struck contracts, then *executes* the plan and checks the answer against
a centralized evaluation.

Run with::

    python examples/quickstart.py
"""

from repro.bench import build_world
from repro.cost import CostModel
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.net import Network
from repro.sql import parse_query
from repro.trading import BuyerPlanGenerator, QueryTrader


def main() -> None:
    # 1. A federation: 8 autonomous nodes, 3 relations, each split into 4
    #    horizontal fragments with 2 replicas.
    world = build_world(nodes=8, n_relations=3, rows=5_000, fragments=4,
                        replicas=2, seed=42)

    # 2. A query, written in SQL against the shared data dictionary.
    query = parse_query(
        "SELECT r0.part, SUM(r0.val) AS total "
        "FROM R0 r0, R1 r1, R2 r2 "
        "WHERE r0.ref0 = r1.id AND r1.ref0 = r2.id AND r0.cat = 3 "
        "GROUP BY r0.part",
        world.catalog.schemas,
    )
    print("Query:", query.sql(), "\n")

    # 3. Trade it: the buyer ('client') requests bids, data-holding nodes
    #    rewrite/price what they can deliver, and the buyer composes the
    #    winning offers into an execution plan.
    network = Network(world.model)
    trader = QueryTrader(
        buyer="client",
        sellers=world.seller_agents(),
        network=network,
        plan_generator=BuyerPlanGenerator(world.builder, "client"),
    )
    result = trader.optimize(query)

    print(f"Negotiated in {result.iterations} round(s): "
          f"{result.offers_considered} offers, "
          f"{result.messages.messages} messages, "
          f"{result.optimization_time:.3f}s simulated optimization time.\n")
    print("Winning plan "
          f"(estimated response time {result.plan_cost:.4f}s):")
    print(result.best.plan.explain(), "\n")
    print("Contracts struck:")
    for contract in result.contracts:
        print(" ", contract.describe())

    # 4. Execute the distributed plan on synthetic data and verify it
    #    matches a centralized evaluation exactly.
    data = FederationData.build(world.catalog, seed=42)
    answer = PlanExecutor(data, query).run(result.best.plan)
    reference = evaluate_query(query, data)
    assert answer.equals_unordered(reference)
    print("\nExecuted plan; answer matches centralized evaluation:")
    for row in answer.canonical():
        print(" ", dict(zip(answer.columns, row)))


if __name__ == "__main__":
    main()
