"""A competitive data market: strategic sellers, auctions, and surplus.

The paper's framework covers federations whose nodes compete ("nodes in
the internet offering data products"): each seller maximizes its own
surplus instead of the joint benefit.  This example prices answers in
money (valuation = time + money) and shows

* how fixed competitive margins raise what the buyer pays versus
  cooperative truth-telling,
* how a Vickrey (second-price) award rule changes payments,
* how *adaptive* sellers, losing trades to cheaper rivals, bid their
  margins down toward cost over repeated queries.

Run with::

    python examples/competitive_market.py
"""

from repro.bench import build_world
from repro.net import Network
from repro.trading import (
    AdaptiveMarginStrategy,
    BuyerPlanGenerator,
    CompetitiveSellerStrategy,
    QueryTrader,
    SellerAgent,
    VickreyAuctionProtocol,
    WeightedValuation,
)
from repro.workload import chain_query

VALUATION = WeightedValuation(money_weight=1.0)


def run_market(world, query, label, strategy_factory=None, protocol=None):
    network = Network(world.model)
    sellers = world.seller_agents(strategy_factory)
    trader = QueryTrader(
        "client",
        sellers,
        network,
        BuyerPlanGenerator(world.builder, "client", valuation=VALUATION),
        protocol=protocol,
        valuation=VALUATION,
    )
    result = trader.optimize(query)
    surplus = sum(c.surplus for c in result.contracts)
    print(
        f"{label:28s} payments={result.total_payment:.4f} "
        f"seller surplus={surplus:+.4f} "
        f"response time={result.best.properties.total_time:.4f}s"
    )
    return result


def main() -> None:
    world = build_world(nodes=12, n_relations=3, fragments=4, replicas=3,
                        seed=11)
    query = chain_query(2, selection_cat=4)
    print("Query:", query.sql(), "\n")

    print("One-shot trades under different market regimes:")
    run_market(world, query, "cooperative (truthful)")
    run_market(
        world, query, "competitive margin 30%",
        strategy_factory=lambda n: CompetitiveSellerStrategy(margin=0.3),
    )
    run_market(
        world, query, "competitive + Vickrey",
        strategy_factory=lambda n: CompetitiveSellerStrategy(margin=0.3),
        protocol=VickreyAuctionProtocol(),
    )

    # ------------------------------------------------------------------
    print("\nRepeated trades with adaptive sellers "
          "(margins adjust to wins/losses):")
    strategies = {
        node: AdaptiveMarginStrategy(margin=0.5, step=0.25)
        for node in world.nodes
        if node != "client"
    }
    network = Network(world.model)
    sellers = {
        node: SellerAgent(
            world.catalog.local(node), world.builder,
            strategy=strategies[node],
        )
        for node in world.nodes
        if node != "client"
    }
    trader = QueryTrader(
        "client",
        sellers,
        network,
        BuyerPlanGenerator(world.builder, "client", valuation=VALUATION),
        valuation=VALUATION,
    )
    for round_number in range(1, 7):
        result = trader.optimize(query)
        margins = sorted(s.margin for s in strategies.values())
        print(
            f"  trade {round_number}: payments={result.total_payment:.4f} "
            f"margins min/median/max = "
            f"{margins[0]:.2f}/{margins[len(margins) // 2]:.2f}/"
            f"{margins[-1]:.2f}"
        )
    print("\nLosing sellers cut their margins; competition disciplines "
          "prices without any central coordination.")


if __name__ == "__main__":
    main()
