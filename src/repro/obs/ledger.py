"""The negotiation decision ledger: *why* the plan looks the way it does.

PR 4's tracer records what happened (spans, events, gauges); this module
reconstructs the *causal chain of decisions* behind a trading result —
the DAG the paper's negotiation walks:

    RFB  →  offers (pricing inputs, cache-hit lineage, fault impacts)
         →  ranking comparisons (which offer displaced which, and why)
         →  plan selections per round
         →  awards / rejects (with settled — possibly Vickrey — prices)
         →  voids and renegotiations (resilience tiers)

The trading layer emits compact ``ledger.*`` decision events (category
``"decision"``) at every choice point, all guarded by ``tracer.enabled``
so the ledger is compiled out when tracing is off.  A
:class:`NegotiationLedger` is rebuilt *deterministically* from the
record stream: ``parallel``-category rows are filtered and nothing
derived from raw sequence numbers is kept, so the ledger of a
``--workers 4`` run is byte-identical to the serial one — the same
contract the deterministic JSONL exporter honors.

Build one from a live tracer (the trader does this automatically and
attaches it as ``TradingResult.ledger``) or from a trace file::

    ledger = NegotiationLedger.from_records(tracer.records)
    ledger = NegotiationLedger.from_rows(load_trace("trace.jsonl"))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.obs.tracer import CAT_PARALLEL, TraceRecord

__all__ = ["NegotiationLedger", "CAT_DECISION", "LEDGER_SCHEMA_VERSION"]

#: Category of the decision events the trading layer emits.
CAT_DECISION = "decision"

#: Bump when the ledger's JSON shape changes.
LEDGER_SCHEMA_VERSION = 2  # v2: offer nodes carry nominal pricing effort


def _offer_node(offer_id: int) -> dict[str, Any]:
    """A fresh offer node with every field the builders may fill."""
    return {
        "offer": offer_id,
        "seller": None,
        "query": None,
        "request": None,
        "coverage": None,
        "exact": None,
        "money": None,
        "total_time": None,
        "cache": None,       # seller-side lineage: hit / miss / none
        "effort": None,      # nominal optimizer effort (cache-independent)
        "shared": None,      # MQO sharer count (amortized commodities)
        "round": None,       # round the seller priced it in
        "value": None,       # buyer's valuation (set on receipt)
        "received": False,   # survived the network back to the buyer
        "outcome": None,     # intake ranking: kept / kept_over / dominated
        "over": None,        # the offer id this one displaced / lost to
        "awarded": False,
        "price": None,       # settled price (Vickrey may differ from money)
        "rejected": False,
        "voided": False,
    }


@dataclass
class NegotiationLedger:
    """The reconstructed decision DAG of one (resilient) negotiation.

    ``offers`` maps offer id to its node; the remaining lists are in
    decision order.  For a resilient run the ledger spans the initial
    trade plus every renegotiation (``trades`` has one entry per
    ``trade.optimize`` span, sub-trades included).
    """

    trades: list[dict] = field(default_factory=list)
    rounds: list[dict] = field(default_factory=list)
    offers: dict[int, dict] = field(default_factory=dict)
    rankings: list[dict] = field(default_factory=list)
    plans: list[dict] = field(default_factory=list)
    awards: list[dict] = field(default_factory=list)
    rejects: list[dict] = field(default_factory=list)
    voids: list[dict] = field(default_factory=list)
    renegotiations: list[dict] = field(default_factory=list)
    faults: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Sequence[TraceRecord]
    ) -> "NegotiationLedger":
        """Rebuild from live :class:`TraceRecord` rows (parallel-category
        rows are dropped, so worker counts cannot change the result)."""
        return cls._build(
            (r.kind, r.name, r.args or {})
            for r in records
            if r.cat != CAT_PARALLEL
        )

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "NegotiationLedger":
        """Rebuild from trace rows loaded by
        :func:`~repro.obs.report.load_trace`."""
        return cls._build(
            (row.get("kind", "event"), row.get("name", ""),
             row.get("args") or {})
            for row in rows
            if row.get("cat") != CAT_PARALLEL
        )

    # ------------------------------------------------------------------
    @classmethod
    def _build(
        cls, events: Iterator[tuple[str, str, dict]]
    ) -> "NegotiationLedger":
        ledger = cls()
        current_round: dict | None = None

        def node(offer_id: int) -> dict:
            entry = ledger.offers.get(offer_id)
            if entry is None:
                entry = _offer_node(offer_id)
                ledger.offers[offer_id] = entry
            return entry

        for kind, name, args in events:
            if kind == "span":
                if name == "trade.optimize":
                    ledger.trades.append({"query": args.get("query")})
                elif name == "trade.round":
                    current_round = {
                        "round": args.get("round"),
                        "trade": len(ledger.trades),
                        "queries": args.get("queries"),
                        "offers_received": 0,
                        "timeouts": 0,
                        "retries": 0,
                        "faults": {},
                    }
                    ledger.rounds.append(current_round)
                elif name.startswith("resilience."):
                    ledger.renegotiations.append(
                        {"kind": name.split(".", 1)[1], **args}
                    )
                continue
            if name == "ledger.priced":
                entry = node(args["offer"])
                entry.update(
                    seller=args.get("seller"),
                    query=args.get("query"),
                    request=args.get("request"),
                    coverage=args.get("coverage"),
                    exact=args.get("exact"),
                    money=args.get("money"),
                    total_time=args.get("total_time"),
                    cache=args.get("cache"),
                    effort=args.get("effort"),
                    shared=args.get("shared"),
                    round=args.get("round"),
                )
            elif name == "ledger.offer":
                entry = node(args["offer"])
                entry.update(
                    seller=args.get("seller", entry["seller"]),
                    query=args.get("query", entry["query"]),
                    coverage=args.get("coverage", entry["coverage"]),
                    exact=args.get("exact", entry["exact"]),
                    money=args.get("money", entry["money"]),
                    total_time=args.get("total_time", entry["total_time"]),
                    shared=args.get("shared", entry["shared"]),
                    value=args.get("value"),
                    received=True,
                    outcome=args.get("outcome"),
                    over=args.get("over"),
                )
                if current_round is not None:
                    current_round["offers_received"] += 1
                outcome = args.get("outcome")
                if outcome in ("kept_over", "dominated"):
                    winner, loser = (
                        (args["offer"], args.get("over"))
                        if outcome == "kept_over"
                        else (args.get("over"), args["offer"])
                    )
                    ledger.rankings.append(
                        {
                            "round": args.get("round"),
                            "winner": winner,
                            "loser": loser,
                        }
                    )
            elif name == "ledger.plan":
                plan = {
                    "round": args.get("round"),
                    "value": args.get("value"),
                    "cost": args.get("cost"),
                    "purchased": list(args.get("purchased") or ()),
                }
                ledger.plans.append(plan)
                if current_round is not None:
                    current_round["plan"] = plan
            elif name == "ledger.award":
                ledger.awards.append(dict(args))
                entry = node(args["offer"])
                entry["awarded"] = True
                entry["price"] = args.get("price")
            elif name == "ledger.reject":
                ledger.rejects.append(dict(args))
                node(args["offer"])["rejected"] = True
            elif name == "ledger.void":
                ledger.voids.append(dict(args))
                node(args["offer"])["voided"] = True
            elif name == "round.timeout":
                if current_round is not None:
                    current_round["timeouts"] += 1
            elif name == "round.retry":
                if current_round is not None:
                    current_round["retries"] += 1
            elif name.startswith("fault."):
                key = name.split(".", 1)[1]
                reason = args.get("reason")
                if reason:
                    key = f"{key}({reason})"
                ledger.faults[key] = ledger.faults.get(key, 0) + 1
                if current_round is not None:
                    per_round = current_round["faults"]
                    per_round[key] = per_round.get(key, 0) + 1
            elif name.startswith("resilience."):
                ledger.renegotiations.append(
                    {"kind": name.split(".", 1)[1], **args}
                )
        return ledger

    # ------------------------------------------------------------------
    def offer(self, offer_id: int) -> dict | None:
        return self.offers.get(offer_id)

    @property
    def awarded(self) -> list[dict]:
        """Awarded offer nodes, in offer-id order."""
        return [
            self.offers[i] for i in sorted(self.offers)
            if self.offers[i]["awarded"]
        ]

    def commodity_key(self, entry: dict) -> tuple:
        """The interchangeable-commodity identity of an offer node."""
        return (entry["query"], entry["coverage"], entry["exact"])

    def competitors(self, offer_id: int) -> list[dict]:
        """Other offers for the same commodity, in offer-id order."""
        entry = self.offers.get(offer_id)
        if entry is None:
            return []
        key = self.commodity_key(entry)
        return [
            self.offers[i]
            for i in sorted(self.offers)
            if i != offer_id and self.commodity_key(self.offers[i]) == key
        ]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form; JSON of this is the byte-identity surface."""
        return {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "trades": self.trades,
            "rounds": self.rounds,
            "offers": [self.offers[i] for i in sorted(self.offers)],
            "rankings": self.rankings,
            "plans": self.plans,
            "awards": self.awards,
            "rejects": self.rejects,
            "voids": self.voids,
            "renegotiations": self.renegotiations,
            "faults": self.faults,
            "summary": {
                "trades": len(self.trades),
                "rounds": len(self.rounds),
                "offers_priced": len(self.offers),
                "offers_received": sum(
                    1 for o in self.offers.values() if o["received"]
                ),
                "rankings": len(self.rankings),
                "awards": len(self.awards),
                "rejects": len(self.rejects),
                "voids": len(self.voids),
                "renegotiations": len(self.renegotiations),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def describe(self) -> str:
        s = self.to_dict()["summary"]
        return (
            f"ledger: {s['rounds']} round(s), {s['offers_priced']} offers "
            f"priced, {s['offers_received']} received, {s['awards']} "
            f"awarded, {s['voids']} voided, "
            f"{s['renegotiations']} renegotiation event(s)"
        )
