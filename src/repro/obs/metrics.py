"""Deterministic metrics: counters, gauges, histograms, run telemetry.

A :class:`MetricsRegistry` aggregates per-site and per-phase statistics
out of a trace's records.  Everything about it is deterministic for a
fixed simulated run: histogram bucket boundaries are fixed at class
level (not derived from observed data), label sets are sorted, and
:meth:`MetricsRegistry.to_dict` renders with sorted keys — so two runs
that produce the same trace produce byte-identical metric dumps.

Wall-clock quantities are deliberately kept *out* of the registry (they
live on the trace records themselves); the registry aggregates only
simulated-time and count data, which is what
:attr:`~repro.trading.trader.TradingResult.telemetry` exposes.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.obs.critpath import CriticalPath
from repro.obs.tracer import TraceRecord

__all__ = ["MetricsRegistry", "RunTelemetry", "SIM_SECONDS_BUCKETS"]

#: Fixed histogram bucket upper bounds for simulated-seconds durations.
#: Chosen once so output shape never depends on observed data; the last
#: implicit bucket is +inf.
SIM_SECONDS_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 10.0
)

Labels = tuple[tuple[str, str], ...]


def _labels(**kv) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in kv.items()))


def _label_str(labels: Labels) -> str:
    return ",".join(f"{k}={v}" for k, v in labels) if labels else "-"


@dataclass
class _Histogram:
    """Counts per fixed bucket plus count/sum (Prometheus-style)."""

    boundaries: tuple[float, ...] = SIM_SECONDS_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        # bisect_left makes boundaries *inclusive* upper bounds, matching
        # Prometheus `le` semantics: a value exactly on a boundary counts
        # in that bucket, not the next one.
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Counters, gauges (last + max), and fixed-bucket histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, dict[Labels, int]] = {}
        self._sums: dict[str, dict[Labels, float]] = {}
        self._gauges: dict[str, dict[Labels, tuple[float, float]]] = {}
        self._histograms: dict[str, dict[Labels, _Histogram]] = {}

    # -- write ---------------------------------------------------------
    def inc(self, name: str, amount: int = 1, **labels) -> None:
        series = self._counters.setdefault(name, {})
        key = _labels(**labels)
        series[key] = series.get(key, 0) + amount

    def add(self, name: str, amount: float, **labels) -> None:
        """A float-summing counter (e.g. simulated seconds per site)."""
        series = self._sums.setdefault(name, {})
        key = _labels(**labels)
        series[key] = series.get(key, 0.0) + amount

    def gauge_set(self, name: str, value: float, **labels) -> None:
        series = self._gauges.setdefault(name, {})
        key = _labels(**labels)
        _last, peak = series.get(key, (value, value))
        series[key] = (value, max(peak, value))

    def observe(
        self,
        name: str,
        value: float,
        boundaries: Sequence[float] = SIM_SECONDS_BUCKETS,
        **labels,
    ) -> None:
        series = self._histograms.setdefault(name, {})
        key = _labels(**labels)
        histogram = series.get(key)
        if histogram is None:
            histogram = series[key] = _Histogram(tuple(boundaries))
        histogram.observe(value)

    # -- read ----------------------------------------------------------
    def counter(self, name: str, **labels) -> int:
        return self._counters.get(name, {}).get(_labels(**labels), 0)

    def total(self, name: str) -> int:
        return sum(self._counters.get(name, {}).values())

    def sum_of(self, name: str, **labels) -> float:
        return self._sums.get(name, {}).get(_labels(**labels), 0.0)

    def gauge(self, name: str, **labels) -> tuple[float, float] | None:
        """``(last, max)`` for the gauge series, or ``None``."""
        return self._gauges.get(name, {}).get(_labels(**labels))

    def histogram(self, name: str, **labels) -> _Histogram | None:
        return self._histograms.get(name, {}).get(_labels(**labels))

    def series(self, name: str) -> dict[Labels, int]:
        """All label rows of one counter (for table rendering)."""
        return dict(self._counters.get(name, {}))

    # -- export --------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic nested dict (sorted names and label rows)."""
        out: dict = {"counters": {}, "sums": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._counters):
            out["counters"][name] = {
                _label_str(k): v
                for k, v in sorted(self._counters[name].items())
            }
        for name in sorted(self._sums):
            out["sums"][name] = {
                _label_str(k): v for k, v in sorted(self._sums[name].items())
            }
        for name in sorted(self._gauges):
            out["gauges"][name] = {
                _label_str(k): {"last": last, "max": peak}
                for k, (last, peak) in sorted(self._gauges[name].items())
            }
        for name in sorted(self._histograms):
            out["histograms"][name] = {
                _label_str(k): h.to_dict()
                for k, h in sorted(self._histograms[name].items())
            }
        return out

    # -- aggregation ---------------------------------------------------
    @classmethod
    def from_records(cls, records: Iterable[TraceRecord]) -> "MetricsRegistry":
        """Aggregate one trace interval into per-phase/per-site metrics.

        * spans → ``phase_total`` / ``phase_sim_seconds`` (histogram per
          phase name) / ``phase_sim_seconds_sum`` (per phase and, when
          attributed, per site);
        * ``msg.send`` events → ``messages_total`` and
          ``message_bytes_total`` by message kind, ``site_messages_total``
          by sender;
        * ``cache.*`` events → ``cache_total`` by site and outcome;
        * ``fault.*`` events → ``faults_total`` by event name;
        * gauge rows → last/max per gauge name.
        """
        registry = cls()
        for record in records:
            if record.kind == "span":
                duration = record.sim_duration
                registry.inc("phase_total", phase=record.name)
                registry.observe("phase_sim_seconds", duration, phase=record.name)
                registry.add("phase_sim_seconds_sum", duration, phase=record.name)
                if record.site:
                    registry.add(
                        "site_sim_seconds_sum", duration, site=record.site
                    )
            elif record.kind == "gauge":
                value = (record.args or {}).get("value", 0)
                registry.gauge_set(record.name, float(value))
            elif record.kind == "event":
                registry.inc("events_total", cat=record.cat, event=record.name)
                args = record.args or {}
                if record.name == "msg.send":
                    kind = str(args.get("kind", "?"))
                    registry.inc("messages_total", kind=kind)
                    registry.inc(
                        "message_bytes_total",
                        amount=int(args.get("bytes", 0)),
                        kind=kind,
                    )
                    if record.site:
                        registry.inc("site_messages_total", site=record.site)
                elif record.name.startswith("cache."):
                    registry.inc(
                        "cache_total",
                        site=record.site,
                        outcome=record.name.split(".", 1)[1],
                    )
                elif record.name.startswith("fault."):
                    registry.inc("faults_total", event=record.name)
        return registry


@dataclass
class RunTelemetry:
    """What one traced negotiation produced, attached to the result.

    Only present when tracing was enabled for the run (a disabled
    tracer leaves :attr:`TradingResult.telemetry` at ``None`` and every
    other field untouched — the zero-overhead contract).
    """

    spans: int
    events: int
    gauges: int
    metrics: MetricsRegistry
    #: Deterministic critical-path decomposition of the run
    #: (:mod:`repro.obs.critpath`), or ``None`` for non-trading traces.
    critical_path: dict | None = None

    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "RunTelemetry":
        spans = sum(1 for r in records if r.kind == "span")
        gauges = sum(1 for r in records if r.kind == "gauge")
        critical = CriticalPath.from_records(records)
        return cls(
            spans=spans,
            events=len(records) - spans - gauges,
            gauges=gauges,
            metrics=MetricsRegistry.from_records(records),
            critical_path=None if critical is None else critical.to_dict(),
        )

    @property
    def cache_hit_rate_by_site(self) -> dict[str, float]:
        rates: dict[str, dict[str, int]] = {}
        for labels, value in self.metrics.series("cache_total").items():
            row = dict(labels)
            per_site = rates.setdefault(row.get("site", ""), {})
            per_site[row.get("outcome", "?")] = value
        out = {}
        for site, outcomes in sorted(rates.items()):
            lookups = outcomes.get("hit", 0) + outcomes.get("miss", 0)
            out[site] = outcomes.get("hit", 0) / lookups if lookups else 0.0
        return out

    def to_dict(self) -> dict:
        return {
            "spans": self.spans,
            "events": self.events,
            "gauges": self.gauges,
            "metrics": self.metrics.to_dict(),
            "critical_path": self.critical_path,
        }
