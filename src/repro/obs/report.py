"""Trace summarization: ``python -m repro report <trace>``.

Loads a trace produced by ``trade --trace`` (either exporter format —
flat JSONL or Chrome ``trace_event`` JSON is auto-detected) and prints
the quantities a profiling pass actually wants:

* per-phase aggregates and the top-k slowest individual spans
  (simulated time; wall time shown when the trace carries it),
* the message breakdown by type (count + bytes + faults),
* the causal critical path of the negotiation (per-phase latency
  decomposition and each round's bottleneck; see
  :mod:`repro.obs.critpath`),
* per-site cache hit ratios,
* the simulator queue gauge and, for parallel runs, the offer-farm
  fallback reasons.
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Any, Iterable, Sequence

__all__ = [
    "load_trace",
    "load_trace_dir",
    "summarize",
    "render_report",
    "render_multi_report",
]

#: File suffixes the directory loader treats as traces.
TRACE_SUFFIXES = (".json", ".jsonl", ".json.gz", ".jsonl.gz", ".trace")


def _normalize(row: dict) -> dict:
    """A trace row with every field the summary reads, defaulted."""
    return {
        "kind": row.get("kind", "event"),
        "name": row.get("name", ""),
        "cat": row.get("cat", ""),
        "site": row.get("site", ""),
        "sim_start": float(row.get("sim_start", 0.0)),
        "sim_end": float(row.get("sim_end", row.get("sim_start", 0.0))),
        "args": row.get("args") or {},
        "wall_ms": row.get("wall_ms"),
    }


def load_trace(path: str) -> list[dict]:
    """Trace rows from *path*; JSONL and Chrome JSON are auto-detected,
    gzip-compressed traces (``.jsonl.gz`` etc.) read transparently (by
    magic bytes, so any filename works)."""
    with open(path, "rb") as fh:
        magic = fh.read(2)
    if magic == b"\x1f\x8b":
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            text = fh.read()
    else:
        with open(path) as fh:
            text = fh.read()
    stripped = text.lstrip()
    data = None
    if stripped.startswith("{") or stripped.startswith("["):
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            data = None  # one object per line: flat JSONL
    if isinstance(data, dict) and "traceEvents" not in data:
        data = [data]  # a single-row JSONL file parses as one dict
    if data is not None:
        events = data.get("traceEvents", []) if isinstance(data, dict) else data
        rows = []
        for event in events:
            phase = event.get("ph")
            kind = {"X": "span", "i": "event", "C": "gauge"}.get(phase)
            if kind is None:  # metadata and unknown phases
                continue
            args = dict(event.get("args") or {})
            start = event.get("ts", 0.0) / 1e6
            duration = event.get("dur", 0.0) / 1e6
            rows.append(
                _normalize(
                    {
                        "kind": kind,
                        "name": event.get("name", ""),
                        "cat": event.get("cat", ""),
                        "site": args.pop("site", ""),
                        "sim_start": start,
                        "sim_end": start + duration,
                        "wall_ms": args.pop("wall_ms", None),
                        "args": args,
                    }
                )
            )
        return rows
    return [
        _normalize(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
def summarize(rows: Sequence[dict], top: int = 8) -> dict[str, Any]:
    """Aggregate *rows* into the report's sections (plain data)."""
    phases: dict[str, dict[str, float]] = {}
    slowest: list[dict] = []
    messages: dict[str, dict[str, int]] = {}
    faults: dict[str, int] = {}
    cache: dict[str, dict[str, int]] = {}
    farm: dict[str, int] = {}
    partitions: list[dict] = []
    live_sites: dict[str, dict] = {}
    live_qerror: dict[str, list[dict]] = {}
    pending_max = None
    sim_span = 0.0

    for row in rows:
        sim_span = max(sim_span, row["sim_end"])
        if row["kind"] == "span":
            duration = row["sim_end"] - row["sim_start"]
            agg = phases.setdefault(
                row["name"], {"count": 0, "total": 0.0, "max": 0.0, "wall_ms": 0.0}
            )
            agg["count"] += 1
            agg["total"] += duration
            agg["max"] = max(agg["max"], duration)
            if row["wall_ms"] is not None:
                agg["wall_ms"] += float(row["wall_ms"])
            slowest.append(row)
        elif row["kind"] == "gauge":
            if row["name"] == "sim.pending_events":
                value = float(row["args"].get("value", 0))
                pending_max = value if pending_max is None else max(pending_max, value)
        elif row["name"] == "msg.send":
            kind = str(row["args"].get("kind", "?"))
            agg = messages.setdefault(kind, {"count": 0, "bytes": 0})
            agg["count"] += 1
            agg["bytes"] += int(row["args"].get("bytes", 0))
        elif row["name"].startswith("fault."):
            key = row["name"].split(".", 1)[1]
            reason = row["args"].get("reason")
            if reason:
                key = f"{key}({reason})"
            faults[key] = faults.get(key, 0) + 1
        elif row["name"].startswith("cache."):
            outcome = row["name"].split(".", 1)[1]
            per_site = cache.setdefault(row["site"], {})
            per_site[outcome] = per_site.get(outcome, 0) + 1
            if outcome == "hit" and row["args"].get("interned"):
                # Hits on MQO-interned (epoch-priced) commodities.
                per_site["interned"] = per_site.get("interned", 0) + 1
        elif row["name"] == "farm.serial_fallback" or row["name"] == "farm.serial_round":
            reason = str(row["args"].get("reason", "?"))
            farm[reason] = farm.get(reason, 0) + 1
        elif row["name"] == "live.site":
            # Registry rows written by `repro sites --trace-out`: one per
            # site, args carry the precomputed headline scalars.
            live_sites[row["site"] or "?"] = dict(row["args"])
        elif row["name"] == "live.qerror":
            live_qerror.setdefault(row["site"] or "?", []).append(
                dict(row["args"])
            )
        elif row["name"] == "buyer.level_partition":
            args = row["args"]
            partitions.append({
                "site": row.get("site", "?"),
                "level": args.get("level"),
                "masks": args.get("masks"),
                "pairs": args.get("pairs"),
                "chunks": args.get("chunks"),
                "imbalance": args.get("imbalance"),
            })

    slowest.sort(key=lambda r: r["sim_end"] - r["sim_start"], reverse=True)
    return {
        "sim_span": sim_span,
        "phases": phases,
        "slowest": slowest[:top],
        "messages": messages,
        "faults": faults,
        "cache": cache,
        "farm": farm,
        "partitions": partitions,
        "live_sites": live_sites,
        "live_qerror": live_qerror,
        "pending_max": pending_max,
    }


# ----------------------------------------------------------------------
def _critical_path(rows: Sequence[dict]):
    """The trace's critical path, or ``None`` for non-trading traces.

    Reports must render whatever trace they are handed, so a replay
    that cannot make sense of the rows (truncated trace, foreign
    schema) degrades to "no critical-path section" rather than failing
    the whole report.
    """
    from repro.obs.critpath import CriticalPath

    try:
        return CriticalPath.from_rows(rows)
    except Exception:
        return None


# ----------------------------------------------------------------------
def _table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  " + "-+-".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(
            "  " + " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_report(rows: Sequence[dict], top: int = 8) -> str:
    """The printable summary of one trace."""
    summary = summarize(rows, top=top)
    out: list[str] = [
        f"trace: {len(rows)} records, "
        f"{summary['sim_span']:.6f}s simulated span"
    ]

    phases = summary["phases"]
    if phases:
        out.append("")
        out.append("phases (by total simulated time):")
        ordered = sorted(
            phases.items(), key=lambda kv: kv[1]["total"], reverse=True
        )
        out.append(
            _table(
                ["phase", "count", "sim total", "sim max", "wall ms"],
                [
                    [
                        name,
                        int(agg["count"]),
                        f"{agg['total']:.6f}",
                        f"{agg['max']:.6f}",
                        f"{agg['wall_ms']:.3f}" if agg["wall_ms"] else "-",
                    ]
                    for name, agg in ordered
                ],
            )
        )
        out.append("")
        out.append(f"top {len(summary['slowest'])} slowest spans (simulated):")
        out.append(
            _table(
                ["phase", "site", "sim seconds", "at"],
                [
                    [
                        row["name"],
                        row["site"] or "-",
                        f"{row['sim_end'] - row['sim_start']:.6f}",
                        f"{row['sim_start']:.6f}",
                    ]
                    for row in summary["slowest"]
                ],
            )
        )

    critical = _critical_path(rows)
    if critical is not None:
        decomposition = critical.to_dict()
        total = decomposition["total"] or 1.0
        out.append("")
        out.append(
            f"critical path: {decomposition['total']:.6f}s across "
            f"{len(decomposition['trades'])} trade(s)"
        )
        out.append(
            _table(
                ["phase", "seconds", "share"],
                [
                    [phase, f"{seconds:.6f}", f"{seconds / total:.1%}"]
                    for phase, seconds in decomposition["phases"].items()
                    if seconds > 0.0
                ],
            )
        )
        bottlenecks = [
            (trade["trade"], rnd["round"], rnd["bottleneck"])
            for trade in decomposition["trades"]
            for rnd in trade["rounds"]
            if rnd.get("bottleneck")
        ]
        if bottlenecks:
            out.append("  round bottlenecks:")
            for trade_no, round_no, b in bottlenecks:
                where = b.get("seller") or b.get("kind", "?")
                out.append(
                    f"    trade {trade_no} round {round_no}: "
                    f"{b.get('kind', '?')} via {where}"
                )
        out.append(
            "  (full decomposition: repro critical-path <trace>)"
        )

    messages = summary["messages"]
    if messages:
        out.append("")
        out.append("messages by type:")
        rows_ = [
            [kind, agg["count"], agg["bytes"]]
            for kind, agg in sorted(messages.items())
        ]
        rows_.append(
            [
                "total",
                sum(a["count"] for a in messages.values()),
                sum(a["bytes"] for a in messages.values()),
            ]
        )
        out.append(_table(["kind", "count", "bytes"], rows_))

    if summary["faults"]:
        out.append("")
        out.append("fault injections:")
        out.append(
            _table(
                ["fault", "count"],
                sorted(summary["faults"].items()),
            )
        )

    cache = summary["cache"]
    if cache:
        out.append("")
        out.append("offer cache by site:")
        rows_ = []
        for site, outcomes in sorted(cache.items()):
            hits = outcomes.get("hit", 0)
            misses = outcomes.get("miss", 0)
            lookups = hits + misses
            rows_.append(
                [
                    site or "-",
                    hits,
                    misses,
                    outcomes.get("interned", 0),
                    outcomes.get("evict", 0),
                    f"{hits / lookups:.1%}" if lookups else "-",
                ]
            )
        out.append(_table(
            ["site", "hits", "misses", "interned", "evicts", "hit rate"],
            rows_,
        ))

    if summary["farm"]:
        out.append("")
        out.append("offer-farm serial fallbacks by reason:")
        out.append(_table(["reason", "count"], sorted(summary["farm"].items())))

    if summary["partitions"]:
        out.append("")
        out.append("buyer DP level partitions (cost-based allocation):")
        out.append(_table(
            ["site", "level", "masks", "pairs", "chunks", "imbalance"],
            [
                [
                    p["site"], p["level"], p["masks"], p["pairs"],
                    p["chunks"],
                    f"{p['imbalance']:.2f}"
                    if p["imbalance"] is not None else "-",
                ]
                for p in summary["partitions"]
            ],
        ))

    live_sites = summary["live_sites"]
    if live_sites:
        live_qerror = summary["live_qerror"]

        def _fmt(value, spec=".4g"):
            return format(value, spec) if isinstance(value, (int, float)) else "-"

        def _worst_p90(site: str):
            cells = [
                c.get("p90")
                for c in live_qerror.get(site, [])
                if isinstance(c.get("p90"), (int, float))
            ]
            return max(cells) if cells else None

        out.append("")
        out.append("live per-site statistics (broker live-obs registry):")
        out.append(_table(
            ["site", "wins", "losses", "win rate", "mean settled",
             "p95 offer latency", "q-error p90"],
            [
                [
                    site,
                    stats.get("wins", 0),
                    stats.get("losses", 0),
                    f"{stats['win_rate']:.1%}"
                    if isinstance(stats.get("win_rate"), (int, float)) else "-",
                    _fmt(stats.get("settled_mean")),
                    _fmt(stats.get("latency_p95")),
                    _fmt(_worst_p90(site)),
                ]
                for site, stats in sorted(live_sites.items())
            ],
        ))

    if summary["pending_max"] is not None:
        out.append("")
        out.append(
            f"simulator queue: max {summary['pending_max']:.0f} pending "
            "events (cancelled timers excluded)"
        )
    return "\n".join(out)


# ----------------------------------------------------------------------
def load_trace_dir(path: str) -> list[tuple[str, list[dict]]]:
    """Every trace in directory *path*, as ``(filename, rows)`` pairs.

    Files are matched by :data:`TRACE_SUFFIXES` and loaded in name
    order; unreadable files are skipped (a directory of traces often
    holds a partial write from an interrupted run).
    """
    runs: list[tuple[str, list[dict]]] = []
    for name in sorted(os.listdir(path)):
        if not name.endswith(TRACE_SUFFIXES):
            continue
        full = os.path.join(path, name)
        if not os.path.isfile(full):
            continue
        try:
            rows = load_trace(full)
        except (OSError, ValueError, json.JSONDecodeError):
            continue
        if rows:
            runs.append((name, rows))
    return runs


def render_multi_report(
    runs: Sequence[tuple[str, list[dict]]], top: int = 8
) -> str:
    """A cross-run aggregate over several traces of the same workload.

    One row per run (records, simulated span, messages, faults), then
    per-phase statistics across runs: in how many runs the phase
    appears, and the mean/max of each run's total simulated time in it.
    """
    if not runs:
        return "(no traces loaded)"
    summaries = [(name, summarize(rows, top=top)) for name, rows in runs]

    out = [f"cross-run report: {len(runs)} trace(s)"]
    out.append("")
    out.append("runs:")
    out.append(
        _table(
            ["trace", "records", "sim span", "messages", "faults"],
            [
                [
                    name,
                    len(rows),
                    f"{summary['sim_span']:.6f}",
                    sum(a["count"] for a in summary["messages"].values()),
                    sum(summary["faults"].values()),
                ]
                for (name, rows), (_n, summary) in zip(runs, summaries)
            ],
        )
    )

    # Per-phase totals across runs: mean and max of each run's total.
    per_phase: dict[str, list[dict]] = {}
    for _name, summary in summaries:
        for phase, agg in summary["phases"].items():
            per_phase.setdefault(phase, []).append(agg)
    if per_phase:
        out.append("")
        out.append("phases across runs (per-run simulated totals):")
        ordered = sorted(
            per_phase.items(),
            key=lambda kv: sum(a["total"] for a in kv[1]),
            reverse=True,
        )
        out.append(
            _table(
                ["phase", "runs", "count", "mean total", "max total",
                 "max span"],
                [
                    [
                        phase,
                        len(aggs),
                        sum(int(a["count"]) for a in aggs),
                        f"{sum(a['total'] for a in aggs) / len(aggs):.6f}",
                        f"{max(a['total'] for a in aggs):.6f}",
                        f"{max(a['max'] for a in aggs):.6f}",
                    ]
                    for phase, aggs in ordered
                ],
            )
        )
    return "\n".join(out)
