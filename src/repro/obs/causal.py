"""Causal message DAG of one traced trading session.

When a tracer is attached, :meth:`repro.net.simulator.Network.send`
stamps every message with a monotone per-session Lamport id (``mid``)
and the id of the message or timeout whose handler issued the send
(``parent``).  Round deadlines mint their own causal ids too
(``round.timeout`` events), so re-issued RFBs descend from the timeout
that triggered them rather than from the original fanout.  This module
rebuilds the resulting causality graph from the trace:

    RFB fanout ──▶ delivery ──▶ seller compute ──▶ OFFER / NO_OFFER
         │                                             │
         └──(deadline fires)──▶ timeout ──▶ retry RFBs ┘ ...
    award step ──▶ AWARD / REJECT deliveries
    renegotiation ──▶ VOID notices

The DAG is **timestamp-free**: it is assembled from ``(kind, name,
args)`` only, sorted by causal id, with ``parallel``-category records
filtered out — the same contract as the deterministic JSONL exporter
and the negotiation ledger.  Under the broker's :class:`AsyncClock`
recorded timestamps are wall times, but the causal ids, per-delivery
transit delays (``lat``), booked compute seconds and armed deadlines
are all deterministic, so the DAG (and the critical path replayed from
it, :mod:`repro.obs.critpath`) is byte-identical across worker counts,
clock implementations, and repeated same-seed runs.

Build one from a live tracer or from a trace file::

    dag = CausalDag.from_records(tracer.records)
    dag = CausalDag.from_rows(load_trace("trace.jsonl"))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

from repro.obs.tracer import CAT_PARALLEL, NO_PARENT, TraceRecord

__all__ = ["CausalDag", "CAUSAL_SCHEMA_VERSION", "causal_events"]

#: Bump when the DAG's JSON shape changes.
CAUSAL_SCHEMA_VERSION = 1


def causal_events(
    records: Sequence[TraceRecord] | None = None,
    rows: Iterable[dict] | None = None,
) -> Iterator[tuple[str, str, str, dict]]:
    """Normalize a trace into ``(kind, name, site, args)`` tuples.

    Accepts live :class:`TraceRecord` rows or dict rows loaded by
    :func:`repro.obs.report.load_trace`; ``parallel``-category records
    (farm-worker internals, absorbed verbatim) are dropped so worker
    counts cannot perturb anything built on top.
    """
    if records is not None:
        for r in records:
            if r.cat != CAT_PARALLEL:
                yield r.kind, r.name, r.site, r.args or {}
    if rows is not None:
        for row in rows:
            if row.get("cat") != CAT_PARALLEL:
                yield (
                    row.get("kind", "event"),
                    row.get("name", ""),
                    row.get("site", ""),
                    row.get("args") or {},
                )


def _node(mid: int, parent: int, kind: str, src: str) -> dict[str, Any]:
    """A fresh causal node with every field the builders may fill."""
    return {
        "mid": mid,
        "parent": parent,
        "kind": kind,          # message kind, or "timeout"
        "src": src,            # sender (messages) / buyer (timeouts)
        "dst": None,           # recipient; None for timeout nodes
        "bytes": None,
        "queries": None,       # RFB payload size (queries)
        "items": None,         # reply payload size (offers)
        "deliveries": [],      # [{copy, lat}] — one per surviving copy
        "computes": [],        # [{site, work, offers}] booked by this mid
        "faults": [],          # [{event, reason?}] injector verdicts
        "timeout": None,       # {responded, expected, retry?} for timeouts
    }


@dataclass
class CausalDag:
    """The reconstructed causal graph of one (resilient) negotiation.

    ``nodes`` maps causal id to its node dict; ``children`` is the
    derived adjacency (parent id → sorted child ids).  Ids are the
    network's Lamport counter, so iteration in id order is iteration in
    cause-before-effect order.
    """

    nodes: dict[int, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence[TraceRecord]) -> "CausalDag":
        return cls._build(causal_events(records=records))

    @classmethod
    def from_rows(cls, rows: Iterable[dict]) -> "CausalDag":
        return cls._build(causal_events(rows=rows))

    @classmethod
    def _build(
        cls, events: Iterator[tuple[str, str, str, dict]]
    ) -> "CausalDag":
        dag = cls()
        nodes = dag.nodes

        def node(mid: int) -> dict:
            entry = nodes.get(mid)
            if entry is None:
                entry = nodes[mid] = _node(mid, NO_PARENT, "?", "")
            return entry

        for kind, name, site, args in events:
            if name == "seller.compute":
                # seller.compute intervals carry cause=<delivering mid>.
                cause = args.get("cause")
                if cause is None or cause == NO_PARENT:
                    continue
                node(cause)["computes"].append(
                    {
                        "site": site,
                        "work": args.get("work", 0.0),
                        "offers": args.get("offers"),
                    }
                )
                continue
            mid = args.get("mid")
            if mid is None:
                continue
            if name == "msg.send":
                entry = node(mid)
                entry.update(
                    parent=args.get("parent", NO_PARENT),
                    kind=args.get("kind", "?"),
                    src=site,
                    dst=args.get("to"),
                    bytes=args.get("bytes"),
                    queries=args.get("queries"),
                    items=args.get("items"),
                )
            elif name == "msg.deliver":
                node(mid)["deliveries"].append(
                    {"copy": args.get("copy", 0), "lat": args.get("lat", 0.0)}
                )
            elif name == "round.timeout":
                entry = node(mid)
                entry.update(kind="timeout", src=site)
                entry["timeout"] = {
                    "responded": args.get("responded"),
                    "expected": args.get("expected"),
                    "retry": None,
                }
            elif name == "round.retry":
                entry = node(mid)
                if entry["timeout"] is None:
                    entry.update(kind="timeout", src=site)
                    entry["timeout"] = {"responded": None, "expected": None}
                entry["timeout"]["retry"] = args.get("attempt")
            elif name.startswith("fault."):
                fault = {"event": name.split(".", 1)[1]}
                if args.get("reason") is not None:
                    fault["reason"] = args["reason"]
                node(mid)["faults"].append(fault)
        for entry in nodes.values():
            entry["deliveries"].sort(key=lambda d: d["copy"])
        return dag

    # ------------------------------------------------------------------
    @property
    def children(self) -> dict[int, list[int]]:
        """Derived adjacency: parent id → child ids in id order."""
        out: dict[int, list[int]] = {}
        for mid in sorted(self.nodes):
            parent = self.nodes[mid]["parent"]
            if parent != NO_PARENT:
                out.setdefault(parent, []).append(mid)
        return out

    def roots(self) -> list[int]:
        """Causal roots (no parent message/timeout), in id order."""
        return [
            mid
            for mid in sorted(self.nodes)
            if self.nodes[mid]["parent"] == NO_PARENT
        ]

    def replies(self, mid: int) -> list[dict]:
        """Message nodes causally descending from *mid*, in id order."""
        return [
            self.nodes[child]
            for child in self.children.get(mid, [])
            if self.nodes[child]["kind"] != "timeout"
        ]

    def dropped(self, mid: int) -> bool:
        """Whether every copy of *mid* was lost in transit."""
        entry = self.nodes.get(mid)
        return entry is not None and entry["kind"] != "timeout" and not entry[
            "deliveries"
        ]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data form; JSON of this is the byte-identity surface."""
        nodes = [self.nodes[mid] for mid in sorted(self.nodes)]
        messages = [n for n in nodes if n["kind"] != "timeout"]
        return {
            "schema_version": CAUSAL_SCHEMA_VERSION,
            "nodes": nodes,
            "summary": {
                "nodes": len(nodes),
                "messages": len(messages),
                "timeouts": len(nodes) - len(messages),
                "deliveries": sum(len(n["deliveries"]) for n in nodes),
                "dropped": sum(
                    1 for n in messages if not n["deliveries"]
                ),
                "faults": sum(len(n["faults"]) for n in nodes),
                "roots": len(self.roots()),
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def describe(self) -> str:
        s = self.to_dict()["summary"]
        return (
            f"causal dag: {s['messages']} messages, {s['timeouts']} "
            f"timeouts, {s['deliveries']} deliveries, {s['dropped']} "
            f"dropped, {s['faults']} fault verdict(s)"
        )
