"""Structured negotiation tracing: spans, events, gauges.

One :class:`Tracer` records a flat list of :class:`TraceRecord` rows —
spans (with a begin and an end), instant events, and gauge samples —
each carrying *both* clocks:

* **simulated time** (the discrete-event clock of the
  :class:`~repro.net.simulator.Network` the tracer is bound to), which
  is fully deterministic: two runs with the same seed produce the same
  simulated timestamps, sequence numbers, and span tree, regardless of
  worker count or host speed;
* **wall-clock time** (``time.perf_counter``), which profiles where the
  *real* CPU time goes and is of course machine-dependent.

Overhead contract
-----------------
Tracing is off by default.  Every instrumentation point in the hot
paths is guarded by ``if tracer.enabled:`` against the shared
:data:`NULL_TRACER` singleton, so a disabled tracer costs one attribute
load and one branch — nothing is allocated, no clock is read.  The
``benchmarks/bench_obs_overhead.py`` gate pins this below 5%.

Determinism contract
--------------------
Records in the ``parallel`` category (offer-farm and buyer-DP
diagnostics) are *nondeterministic by design* — they exist only when
workers are engaged and carry wall-clock payloads.  The deterministic
JSONL exporter drops them (and all wall fields) and re-sequences, which
is what makes traces from ``--workers 1`` and ``--workers 4`` runs
byte-identical.  Worker processes record into a fresh unbound tracer;
their records ship back with the offer batches and are re-stamped into
the parent's sequence at the exact simulation point the serial code
would have recorded them (see :meth:`Tracer.absorb`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER", "CAT_PARALLEL"]

#: Category of records excluded from deterministic exports.
CAT_PARALLEL = "parallel"

#: ``parent_id`` of root records.
NO_PARENT = -1


@dataclass(slots=True)
class TraceRecord:
    """One trace row.

    ``kind`` is ``"span"`` (``sim_start``..``sim_end`` interval),
    ``"event"`` (instant; start == end), or ``"gauge"`` (instant sample;
    the value lives in ``args["value"]``).  ``span_id`` is the record's
    own id (== its sequence number at creation); ``parent_id`` is the
    enclosing span's id or ``-1``.  Records are plain data and pickle
    cleanly across the fork-based process pool.
    """

    seq: int
    kind: str
    name: str
    cat: str
    site: str
    sim_start: float
    sim_end: float
    span_id: int
    parent_id: int
    args: dict[str, Any] | None
    wall_start: float
    wall_end: float

    @property
    def sim_duration(self) -> float:
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> float:
        return self.wall_end - self.wall_start


class _NullSpan:
    """The no-op context manager a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set(self, **_args) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanCtx:
    """Context manager closing one open span record."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: TraceRecord):
        self._tracer = tracer
        self.record = record

    def __enter__(self) -> "_SpanCtx":
        return self

    def set(self, **args) -> None:
        """Attach (or update) args on the span, e.g. outcomes at close."""
        if self.record.args is None:
            self.record.args = {}
        self.record.args.update(args)

    def __exit__(self, *_exc) -> bool:
        tracer = self._tracer
        record = self.record
        record.sim_end = tracer.sim_now()
        record.wall_end = time.perf_counter()
        stack = tracer._stack
        if stack and stack[-1] == record.span_id:
            stack.pop()
        return False


class Tracer:
    """Records spans/events/gauges; bindable to a simulated clock.

    Parameters
    ----------
    enabled:
        A disabled tracer never records and never reads a clock; all
        hot-path call sites additionally guard on :attr:`enabled`.
    sim:
        Optional simulated-clock source (any object with a ``now``
        attribute, e.g. :class:`~repro.net.simulator.Simulator`).
        Unbound tracers stamp simulated time ``0.0`` — worker processes
        run unbound and their records are re-stamped on absorb.
    """

    __slots__ = ("enabled", "records", "_seq", "_stack", "_sim", "cause")

    def __init__(self, enabled: bool = True, sim=None):
        self.enabled = enabled
        self.records: list[TraceRecord] = []
        self._seq = 0
        self._stack: list[int] = []
        self._sim = sim
        #: Causal id of the message (or timeout) whose handler is
        #: currently executing — the ``parent`` stamped onto any message
        #: sent from inside that handler.  Maintained by
        #: :class:`~repro.net.simulator.Network` around handler
        #: dispatch; ``NO_PARENT`` outside any delivery.
        self.cause = NO_PARENT

    # ------------------------------------------------------------------
    def bind_sim(self, sim) -> "Tracer":
        """Bind the simulated clock (idempotent; rebinding is fine)."""
        self._sim = sim
        return self

    def sim_now(self) -> float:
        sim = self._sim
        return sim.now if sim is not None else 0.0

    def reset(self) -> None:
        self.records.clear()
        self._seq = 0
        self._stack.clear()
        self.cause = NO_PARENT

    # ------------------------------------------------------------------
    def span(self, name: str, cat: str, site: str = "", **args):
        """Open a nested span; close it via ``with`` (or ``__exit__``)."""
        if not self.enabled:
            return _NULL_SPAN
        now = self.sim_now()
        wall = time.perf_counter()
        seq = self._seq
        self._seq = seq + 1
        record = TraceRecord(
            seq, "span", name, cat, site, now, now, seq,
            self._stack[-1] if self._stack else NO_PARENT,
            args or None, wall, wall,
        )
        self.records.append(record)
        self._stack.append(seq)
        return _SpanCtx(self, record)

    def interval(
        self,
        name: str,
        cat: str,
        site: str,
        sim_start: float,
        sim_end: float,
        **args,
    ) -> None:
        """A span with an *explicit* simulated interval.

        Used for work booked on a node's compute timeline (the interval
        is known the moment the work is scheduled, e.g. a seller's
        optimization effort), which never coincides with the caller's
        wall-clock interval.
        """
        if not self.enabled:
            return
        wall = time.perf_counter()
        seq = self._seq
        self._seq = seq + 1
        self.records.append(
            TraceRecord(
                seq, "span", name, cat, site, sim_start, sim_end, seq,
                self._stack[-1] if self._stack else NO_PARENT,
                args or None, wall, wall,
            )
        )

    def event(self, name: str, cat: str, site: str = "", **args) -> None:
        """Record an instant event."""
        if not self.enabled:
            return
        now = self.sim_now()
        wall = time.perf_counter()
        seq = self._seq
        self._seq = seq + 1
        self.records.append(
            TraceRecord(
                seq, "event", name, cat, site, now, now, seq,
                self._stack[-1] if self._stack else NO_PARENT,
                args or None, wall, wall,
            )
        )

    def gauge(self, name: str, value, cat: str = "metrics", site: str = "") -> None:
        """Record one gauge sample (value kept in ``args['value']``)."""
        if not self.enabled:
            return
        now = self.sim_now()
        wall = time.perf_counter()
        seq = self._seq
        self._seq = seq + 1
        self.records.append(
            TraceRecord(
                seq, "gauge", name, cat, site, now, now, seq,
                self._stack[-1] if self._stack else NO_PARENT,
                {"value": value}, wall, wall,
            )
        )

    # ------------------------------------------------------------------
    def absorb(self, shipped: list[TraceRecord]) -> None:
        """Replay worker-recorded rows at the current simulation point.

        The offer farm's workers trace into fresh unbound tracers; their
        rows come back with the offer batches and are re-stamped here —
        new sequence numbers from *this* tracer's counter, simulated
        times set to *now* (the exact instant the serial code would have
        recorded them: the clock does not advance inside a delivery
        handler), parents remapped into this tracer's open span.  Wall
        durations are preserved relative to the absorb instant so the
        real worker effort stays visible in wall-clock exports.
        """
        if not self.enabled or not shipped:
            return
        now = self.sim_now()
        wall = time.perf_counter()
        top = self._stack[-1] if self._stack else NO_PARENT
        idmap: dict[int, int] = {}
        for row in shipped:
            seq = self._seq
            self._seq = seq + 1
            idmap[row.span_id] = seq
            self.records.append(
                TraceRecord(
                    seq, row.kind, row.name, row.cat, row.site, now, now,
                    seq, idmap.get(row.parent_id, top),
                    dict(row.args) if row.args else None,
                    wall, wall + row.wall_duration,
                )
            )


#: Shared disabled tracer: the default value of every ``tracer``
#: attribute in the system, so hot paths can always branch on
#: ``tracer.enabled`` without a ``None`` check.
NULL_TRACER = Tracer(enabled=False)
