"""``explain(result)``: why did site X win commodity Q?

Turns a traced :class:`~repro.trading.trader.TradingResult` (one whose
``ledger`` is populated — run with a tracer attached) into a per-contract
audit: the winning site and settled price, the cost/valuation breakdown,
the runner-up and its margin, and a categorized reason for every offer
that did *not* end up in the plan.  Everything is computed from the
deterministic ledger, so the JSON rendering is byte-identical across
worker counts and repeated same-seed runs.

Rejection reasons, from strongest to weakest evidence:

* ``voided``        — contract struck, then voided (seller crashed);
* ``dominated``     — lost the buyer's intake ranking to a cheaper offer
                      for the same (seller, query, coverage) slot;
* ``lost_commodity``— ranked, but a competitor won the commodity;
* ``unused``        — survived ranking, but no winning plan bought it;
* ``undelivered``   — priced by the seller, never reached the buyer
                      (dropped reply, or the round closed on its
                      deadline first).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.ledger import NegotiationLedger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trading.trader import TradingResult

__all__ = ["explain", "Explanation", "CommodityExplanation"]


@dataclass
class CommodityExplanation:
    """One awarded commodity: its winner and the competition it beat."""

    query: str
    coverage: str
    exact: bool
    winner: str
    offer_id: int
    price: float
    total_time: float
    value: float | None
    cache: str | None
    round: int | None
    competitors: int
    competing_sites: int
    runner_up: str | None = None
    runner_up_offer: int | None = None
    runner_up_value: float | None = None
    margin: float | None = None          # runner_up_value - winner value
    margin_pct: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)

    def render(self) -> str:
        lines = [
            f"commodity {self.query} [{self.coverage}]"
            + (" (exact)" if self.exact else ""),
            f"  winner: {self.winner} offer#{self.offer_id} "
            f"price={self.price:.6f} time={self.total_time:.6f}"
            + (f" value={self.value:.6f}" if self.value is not None else "")
            + (f" cache={self.cache}" if self.cache else "")
            + (f" round={self.round}" if self.round is not None else ""),
        ]
        if self.runner_up is not None:
            margin = (
                f" — margin {self.margin:+.6f}"
                + (
                    f" ({self.margin_pct:+.1%})"
                    if self.margin_pct is not None
                    else ""
                )
            )
            lines.append(
                f"  runner-up: {self.runner_up} "
                f"offer#{self.runner_up_offer} "
                f"value={self.runner_up_value:.6f}{margin}"
            )
        else:
            lines.append("  runner-up: none (unchallenged)")
        lines.append(
            f"  competition: {self.competitors} competing offer(s) "
            f"from {self.competing_sites} site(s)"
        )
        return "\n".join(lines)


@dataclass
class Explanation:
    """The full audit of one negotiation's outcome."""

    query: str
    found: bool
    plan_cost: float | None
    total_payment: float | None
    iterations: int
    commodities: list[CommodityExplanation] = field(default_factory=list)
    rejected: list[dict] = field(default_factory=list)
    rejected_by_reason: dict[str, int] = field(default_factory=dict)
    voids: int = 0
    renegotiations: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "query": self.query,
            "found": self.found,
            "plan_cost": self.plan_cost,
            "total_payment": self.total_payment,
            "iterations": self.iterations,
            "commodities": [c.to_dict() for c in self.commodities],
            "rejected": self.rejected,
            "rejected_by_reason": self.rejected_by_reason,
            "voids": self.voids,
            "renegotiations": self.renegotiations,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def render(self) -> str:
        out = [f"why: {self.query}"]
        if not self.found:
            out.append("no distributed plan was negotiated")
            return "\n".join(out)
        out.append(
            f"plan: cost {self.plan_cost:.6f}s, "
            f"{len(self.commodities)} contract(s), "
            f"total payment {self.total_payment:.6f}, "
            f"{self.iterations} round(s)"
        )
        if self.voids or self.renegotiations:
            out.append(
                f"resilience: {self.voids} contract(s) voided, "
                f"{self.renegotiations} renegotiation event(s)"
            )
        for commodity in self.commodities:
            out.append("")
            out.append(commodity.render())
        if self.rejected_by_reason:
            out.append("")
            reasons = ", ".join(
                f"{count} {reason}"
                for reason, count in sorted(self.rejected_by_reason.items())
            )
            out.append(f"rejected offers: {len(self.rejected)} ({reasons})")
        return "\n".join(out)


# ----------------------------------------------------------------------
def explain(
    result: "TradingResult", subquery: str | None = None
) -> Explanation:
    """Audit *result*; requires ``result.ledger`` (run with a tracer).

    ``subquery`` restricts the commodity breakdown to awarded commodities
    whose offered-query key (or request key) contains the given string.
    """
    ledger = result.ledger
    if ledger is None:
        raise ValueError(
            "result has no ledger — attach a Tracer to the network "
            "before optimize() (the null tracer compiles the ledger out)"
        )
    explanation = Explanation(
        query=result.query.key(),
        found=result.found,
        plan_cost=result.plan_cost if result.found else None,
        total_payment=result.total_payment if result.found else None,
        iterations=result.iterations,
        voids=len(ledger.voids),
        renegotiations=len(ledger.renegotiations),
    )

    awarded_ids: set[int] = set()
    for contract in sorted(result.contracts, key=lambda c: c.offer.offer_id):
        offer = contract.offer
        awarded_ids.add(offer.offer_id)
        entry = ledger.offer(offer.offer_id) or {}
        commodity = _explain_commodity(ledger, contract, entry)
        if subquery is not None and not (
            subquery in commodity.query
            or (entry.get("request") and subquery in entry["request"])
        ):
            continue
        explanation.commodities.append(commodity)

    for offer_id in sorted(ledger.offers):
        if offer_id in awarded_ids:
            continue
        entry = ledger.offers[offer_id]
        reason, detail = _rejection_reason(ledger, entry, awarded_ids)
        explanation.rejected.append(
            {
                "offer": offer_id,
                "seller": entry["seller"],
                "query": entry["query"],
                "reason": reason,
                "detail": detail,
            }
        )
        explanation.rejected_by_reason[reason] = (
            explanation.rejected_by_reason.get(reason, 0) + 1
        )
    return explanation


def _explain_commodity(
    ledger: NegotiationLedger, contract, entry: dict
) -> CommodityExplanation:
    offer = contract.offer
    competitors = ledger.competitors(offer.offer_id)
    ranked = [c for c in competitors if c["value"] is not None]
    commodity = CommodityExplanation(
        query=entry.get("query") or offer.query.key(),
        coverage=entry.get("coverage") or "",
        exact=bool(entry.get("exact", offer.exact_projections)),
        winner=offer.seller,
        offer_id=offer.offer_id,
        price=contract.agreed.money,
        total_time=contract.agreed.total_time,
        value=entry.get("value"),
        cache=entry.get("cache"),
        round=entry.get("round"),
        competitors=len(competitors),
        competing_sites=len(
            {c["seller"] for c in competitors if c["seller"]}
        ),
    )
    if ranked and commodity.value is not None:
        runner = min(ranked, key=lambda c: (c["value"], c["offer"]))
        commodity.runner_up = runner["seller"]
        commodity.runner_up_offer = runner["offer"]
        commodity.runner_up_value = runner["value"]
        commodity.margin = runner["value"] - commodity.value
        if commodity.value:
            commodity.margin_pct = commodity.margin / commodity.value
    return commodity


def _rejection_reason(
    ledger: NegotiationLedger, entry: dict, awarded_ids: set[int]
) -> tuple[str, str | None]:
    if entry["voided"]:
        return "voided", None
    if entry["outcome"] == "dominated":
        over = entry["over"]
        return "dominated", f"lost intake ranking to offer#{over}"
    # A later offer for the same slot displaced this one.
    for edge in ledger.rankings:
        if edge["loser"] == entry["offer"]:
            return "dominated", f"displaced by offer#{edge['winner']}"
    if entry["received"]:
        for competitor in ledger.competitors(entry["offer"]):
            if competitor["offer"] in awarded_ids:
                return (
                    "lost_commodity",
                    f"commodity won by {competitor['seller']} "
                    f"(offer#{competitor['offer']})",
                )
        return "unused", "no winning plan purchased it"
    return "undelivered", "priced by the seller, never reached the buyer"
