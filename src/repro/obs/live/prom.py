"""Prometheus text-format exposition and a strict parser for it.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.
MetricsRegistry` plus ad-hoc metric families into the Prometheus
text exposition format (version 0.0.4): ``# HELP`` / ``# TYPE`` comment
lines, samples with *sorted* label sets, counters suffixed ``_total``,
and histograms expanded to cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``.  Output is fully deterministic — families and label
rows render in sorted order.

:func:`parse_prometheus_text` is the matching strict parser the tests
and CI use to validate the broker's ``GET /metrics/prom``: it rejects
malformed lines, samples with no TYPE, duplicate series, and histograms
whose buckets are not cumulative or disagree with ``_count``.  Round-
tripping ``render → parse`` recovers every sample value.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "PromParseError",
    "PromSnapshot",
    "parse_prometheus_text",
    "render_prometheus",
]

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_TYPES = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


class PromParseError(ValueError):
    """Raised when text does not conform to the exposition format."""


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _sanitize(name: str) -> str:
    name = _INVALID_CHARS.sub("_", name)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


class _Family:
    """One metric family accumulating sample lines before rendering."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = _sanitize(name)
        self.kind = kind
        self.help = help_text
        self.lines: list[str] = []

    def sample(
        self, suffix: str, labels: Mapping[str, object], value: float
    ) -> None:
        self.lines.append(
            f"{self.name}{suffix}{_format_labels(labels)} {_format_value(value)}"
        )

    def render(self) -> str:
        head = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        return "\n".join(head + self.lines)


class PromBuilder:
    """Accumulates metric families; ``render()`` emits sorted text."""

    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self._families: dict[str, _Family] = {}

    def _family(self, name: str, kind: str, help_text: str) -> _Family:
        full = _sanitize(f"{self.prefix}_{name}" if self.prefix else name)
        family = self._families.get(full)
        if family is None:
            family = self._families[full] = _Family(full, kind, help_text)
        return family

    def counter(
        self, name: str, help_text: str, value: float, **labels
    ) -> None:
        if not name.endswith("_total"):
            name += "_total"
        self._family(name, "counter", help_text).sample("", labels, value)

    def gauge(self, name: str, help_text: str, value: float, **labels) -> None:
        self._family(name, "gauge", help_text).sample("", labels, value)

    def histogram(
        self,
        name: str,
        help_text: str,
        boundaries: Sequence[float],
        counts: Sequence[int],
        total_sum: float,
        **labels,
    ) -> None:
        """*counts* are per-bucket (len(boundaries) + 1, last = +inf)."""
        family = self._family(name, "histogram", help_text)
        cumulative = 0
        for boundary, count in zip(boundaries, counts):
            cumulative += count
            family.sample(
                "_bucket", {**labels, "le": _format_value(boundary)}, cumulative
            )
        cumulative += counts[len(boundaries)] if len(counts) > len(boundaries) else 0
        family.sample("_bucket", {**labels, "le": "+Inf"}, cumulative)
        family.sample("_sum", labels, total_sum)
        family.sample("_count", labels, cumulative)

    def render(self) -> str:
        chunks = [
            self._families[name].render() for name in sorted(self._families)
        ]
        return "\n".join(chunks) + "\n" if chunks else ""


def render_prometheus(
    registry: MetricsRegistry | None = None,
    *,
    prefix: str = "repro",
    build: "Iterable[callable] | None" = None,
) -> str:
    """Render *registry* (and extra ``build`` callbacks) to text format.

    Each callback in *build* receives the :class:`PromBuilder` and adds
    its own families — how the broker contributes rollup, SLO, site, and
    q-error series without this module knowing about them.
    """
    builder = PromBuilder(prefix=prefix)
    if registry is not None:
        _registry_families(builder, registry)
    for contribute in build or ():
        contribute(builder)
    return builder.render()


def _registry_families(builder: PromBuilder, registry: MetricsRegistry) -> None:
    for name in sorted(registry._counters):
        for labels, value in sorted(registry._counters[name].items()):
            builder.counter(
                name, f"registry counter {name}", value, **dict(labels)
            )
    for name in sorted(registry._sums):
        for labels, value in sorted(registry._sums[name].items()):
            builder.counter(name, f"registry sum {name}", value, **dict(labels))
    for name in sorted(registry._gauges):
        for labels, (last, peak) in sorted(registry._gauges[name].items()):
            builder.gauge(name, f"registry gauge {name}", last, **dict(labels))
            builder.gauge(
                f"{name}_peak", f"peak of registry gauge {name}", peak,
                **dict(labels),
            )
    for name in sorted(registry._histograms):
        for labels, histogram in sorted(registry._histograms[name].items()):
            builder.histogram(
                name,
                f"registry histogram {name}",
                histogram.boundaries,
                histogram.counts,
                histogram.sum,
                **dict(labels),
            )


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
class PromSnapshot:
    """Parsed exposition: families plus a flat sample map."""

    def __init__(self) -> None:
        #: family name -> {"type": str, "help": str}
        self.families: dict[str, dict] = {}
        #: (sample name, sorted label tuple) -> float
        self.samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}

    def value(self, name: str, **labels) -> float | None:
        return self.samples.get(
            (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        )

    def series(self, name: str) -> dict[tuple[tuple[str, str], ...], float]:
        return {
            labels: value
            for (sample, labels), value in self.samples.items()
            if sample == name
        }


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PromParseError(f"line {line_no}: bad sample value {raw!r}")


def _unescape_label(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _parse_labels(raw: str | None, line_no: int) -> tuple[tuple[str, str], ...]:
    if not raw:
        return ()
    consumed = 0
    pairs: list[tuple[str, str]] = []
    for match in _LABEL_PAIR.finditer(raw):
        gap = raw[consumed : match.start()].strip().strip(",").strip()
        if gap:
            raise PromParseError(f"line {line_no}: malformed labels {raw!r}")
        pairs.append((match.group(1), _unescape_label(match.group(2))))
        consumed = match.end()
    tail = raw[consumed:].strip().strip(",").strip()
    if tail:
        raise PromParseError(f"line {line_no}: malformed labels {raw!r}")
    if not pairs:
        raise PromParseError(f"line {line_no}: empty label braces")
    return tuple(sorted(pairs))


def _base_family(name: str, families: Mapping[str, dict]) -> str | None:
    """The family a sample belongs to, honouring histogram suffixes."""
    if name in families:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base in families and families[base]["type"] in (
                "histogram",
                "summary",
            ):
                return base
    return None


def parse_prometheus_text(text: str) -> PromSnapshot:
    """Parse exposition text strictly; raises :class:`PromParseError`."""
    snapshot = PromSnapshot()
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("HELP", "TYPE"):
                if len(parts) < 3:
                    raise PromParseError(
                        f"line {line_no}: {parts[1]} without a metric name"
                    )
                name = parts[2]
                if not _NAME_OK.match(name):
                    raise PromParseError(
                        f"line {line_no}: invalid metric name {name!r}"
                    )
                family = snapshot.families.setdefault(
                    name, {"type": "untyped", "help": ""}
                )
                if parts[1] == "HELP":
                    family["help"] = parts[3] if len(parts) > 3 else ""
                else:
                    kind = parts[3].strip() if len(parts) > 3 else ""
                    if kind not in _TYPES:
                        raise PromParseError(
                            f"line {line_no}: unknown TYPE {kind!r}"
                        )
                    family["type"] = kind
            continue  # other comments are ignored
        match = _SAMPLE_LINE.match(line)
        if not match:
            raise PromParseError(f"line {line_no}: unparseable line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_no)
        value = _parse_value(match.group("value"), line_no)
        if _base_family(name, snapshot.families) is None:
            raise PromParseError(
                f"line {line_no}: sample {name!r} has no TYPE/HELP family"
            )
        key = (name, labels)
        if key in snapshot.samples:
            raise PromParseError(
                f"line {line_no}: duplicate series {name}{dict(labels)!r}"
            )
        snapshot.samples[key] = value
    _check_histograms(snapshot)
    return snapshot


def _check_histograms(snapshot: PromSnapshot) -> None:
    for family, meta in snapshot.families.items():
        if meta["type"] != "histogram":
            continue
        buckets: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]]
        buckets = {}
        for (name, labels), value in snapshot.samples.items():
            if name != f"{family}_bucket":
                continue
            le = dict(labels).get("le")
            if le is None:
                raise PromParseError(
                    f"{family}_bucket sample missing the le label"
                )
            rest = tuple(kv for kv in labels if kv[0] != "le")
            buckets.setdefault(rest, []).append((_parse_value(le, 0), value))
        for rest, series in buckets.items():
            series.sort(key=lambda item: item[0])
            counts = [count for _, count in series]
            if counts != sorted(counts):
                raise PromParseError(
                    f"{family} buckets not cumulative for labels {dict(rest)!r}"
                )
            if series[-1][0] != math.inf:
                raise PromParseError(f"{family} is missing its +Inf bucket")
            total = snapshot.samples.get((f"{family}_count", rest))
            if total is not None and total != series[-1][1]:
                raise PromParseError(
                    f"{family}: +Inf bucket ({series[-1][1]}) != _count ({total})"
                )
