"""A deterministic, mergeable streaming quantile sketch.

The live registries aggregate values (settled prices, valuations,
simulated offer latencies) from sessions that complete in a
nondeterministic interleaving — worker threads race, and the async
clock finishes sessions in wall-time order.  A byte-identical snapshot
contract therefore rules out any state whose value depends on insertion
order, which includes a plain float accumulator (float addition is not
associative).

The sketch keeps only order-independent state:

* integer counts per fixed log-spaced bucket (DDSketch-style: bucket
  ``i`` covers ``(MIN_VALUE * GAMMA**i, MIN_VALUE * GAMMA**(i+1)]``,
  giving a bounded relative error of ``GAMMA - 1``),
* the value total as an *integer* number of nano-units
  (``round(value * 1e9)``), so sums are exact integer arithmetic,
* integer-scaled min/max.

Quantiles are answered with the upper bound of the covering bucket —
a deterministic representative within the sketch's relative-error
guarantee.  ``merge`` adds bucket counts, so merging per-session or
per-shard sketches in any order yields the same bytes.
"""

from __future__ import annotations

import math

__all__ = ["QuantileSketch", "GAMMA", "MIN_VALUE"]

#: Bucket growth factor: relative accuracy of reported quantiles.
GAMMA = 1.05

#: Values at or below this collapse into bucket 0 (latencies and prices
#: in this system are well above a nanosecond/nano-money unit).
MIN_VALUE = 1e-9

#: Integer scale for exact value totals.
_SCALE = 1_000_000_000

_LOG_GAMMA = math.log(GAMMA)


class QuantileSketch:
    """Streaming quantiles over fixed log buckets; order-independent."""

    __slots__ = ("_buckets", "count", "_sum_units", "_min_units", "_max_units")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self.count = 0
        self._sum_units = 0
        self._min_units: int | None = None
        self._max_units: int | None = None

    # -- write ---------------------------------------------------------
    def add(self, value: float, count: int = 1) -> None:
        """Record *value* (negative values clamp to zero)."""
        if count <= 0:
            return
        value = max(float(value), 0.0)
        if value <= MIN_VALUE:
            index = 0
        else:
            index = 1 + int(math.floor(math.log(value / MIN_VALUE) / _LOG_GAMMA))
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += count
        units = round(value * _SCALE)
        self._sum_units += units * count
        if self._min_units is None or units < self._min_units:
            self._min_units = units
        if self._max_units is None or units > self._max_units:
            self._max_units = units

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other* in; merge order cannot change the result."""
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.count += other.count
        self._sum_units += other._sum_units
        if other._min_units is not None and (
            self._min_units is None or other._min_units < self._min_units
        ):
            self._min_units = other._min_units
        if other._max_units is not None and (
            self._max_units is None or other._max_units > self._max_units
        ):
            self._max_units = other._max_units

    # -- read ----------------------------------------------------------
    @property
    def sum(self) -> float:
        return self._sum_units / _SCALE

    @property
    def mean(self) -> float:
        return self._sum_units / _SCALE / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return (self._min_units or 0) / _SCALE

    @property
    def max(self) -> float:
        return (self._max_units or 0) / _SCALE

    @staticmethod
    def bucket_upper(index: int) -> float:
        """The inclusive upper bound of bucket *index*."""
        if index <= 0:
            return MIN_VALUE
        return MIN_VALUE * GAMMA ** index

    def quantile(self, q: float) -> float:
        """The q-quantile (q in [0, 1]) as a bucket upper bound."""
        if self.count == 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= target:
                return round(self.bucket_upper(index), 12)
        return round(self.bucket_upper(max(self._buckets)), 12)

    # -- snapshot / restore --------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data snapshot; JSON of this is the byte-identity surface."""
        return {
            "count": self.count,
            "sum": round(self._sum_units / _SCALE, 9),
            "min": round((self._min_units or 0) / _SCALE, 9),
            "max": round((self._max_units or 0) / _SCALE, 9),
            "buckets": {str(i): self._buckets[i] for i in sorted(self._buckets)},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        sketch = cls()
        sketch.count = int(payload.get("count", 0))
        sketch._sum_units = round(float(payload.get("sum", 0.0)) * _SCALE)
        if sketch.count:
            sketch._min_units = round(float(payload.get("min", 0.0)) * _SCALE)
            sketch._max_units = round(float(payload.get("max", 0.0)) * _SCALE)
        sketch._buckets = {
            int(i): int(c) for i, c in (payload.get("buckets") or {}).items()
        }
        return sketch
