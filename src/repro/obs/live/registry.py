"""Per-site live statistics, aggregated from completed sessions.

The :class:`SiteStatsRegistry` is the substrate both open ROADMAP items
stand on: adaptive top-k RFB fanout needs learned per-site win rates,
price distributions, and latency; mid-execution re-trading needs a live
view of who is answering and at what price.  It consumes exactly what a
finished broker session already carries:

* the **decision ledger** for offer pricing, offered latency
  (``total_time``: the seller's promised execute+ship time), intake,
  awards, and settled prices;
* the session's **trace records** for RFB accounting the ledger omits:
  handled/answered counts from ``seller.compute`` spans and fanout
  sizes from ``rfb.fanout`` span args.

Only record *args* are read, never sim/wall timestamps, and every
accumulator is an integer count or a :class:`~repro.obs.live.sketch.
QuantileSketch` — so a registry built from any interleaving of the same
sessions snapshots to identical bytes.  ``snapshot()``/
``from_snapshot()`` round-trip exactly.

One quantity is deliberately kept *out* of the snapshot: the
``seller.compute`` spans' ``work`` argument (actual per-RFB pricing
effort).  With the broker's *shared* cross-session offer cache, which
session pays the pricing cost — full DP on a miss, a fraction on a hit
— depends on completion interleaving, so ``work`` is not run-to-run
deterministic under concurrency.  It is still aggregated (the
:attr:`SiteStats.effort` sketch) and exposed on the operational
surfaces (``GET /sites`` extras, Prometheus gauges), just never in the
byte-identity snapshot.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Mapping

from repro.obs.ledger import NegotiationLedger
from repro.obs.live.sketch import QuantileSketch
from repro.obs.tracer import CAT_PARALLEL, TraceRecord

__all__ = ["SiteStats", "SiteStatsRegistry", "SITE_STATS_SCHEMA_VERSION"]

#: Bump when the snapshot shape changes.
SITE_STATS_SCHEMA_VERSION = 1


class SiteStats:
    """One seller site's live accumulators."""

    __slots__ = (
        "wins",
        "losses",
        "offers_priced",
        "offers_received",
        "rfbs_handled",
        "rfbs_answered",
        "settled",
        "valuation",
        "latency",
        "effort",
    )

    def __init__(self) -> None:
        self.wins = 0            # awarded offers
        self.losses = 0          # offers received by the buyer, not awarded
        self.offers_priced = 0   # offers the seller priced (post-dedupe)
        self.offers_received = 0  # survived the network back to the buyer
        self.rfbs_handled = 0    # RFBs delivered to this seller
        self.rfbs_answered = 0   # RFBs answered with at least one offer
        self.settled = QuantileSketch()    # settled (Vickrey) prices
        self.valuation = QuantileSketch()  # buyer valuations of its offers
        self.latency = QuantileSketch()    # offered total time (sim s)
        #: Actual per-RFB pricing effort (sim s) — cache-interleaving
        #: dependent, so operational-only: excluded from to_dict().
        self.effort = QuantileSketch()

    @property
    def win_rate(self) -> float:
        decided = self.wins + self.losses
        return self.wins / decided if decided else 0.0

    @property
    def response_rate(self) -> float:
        return self.rfbs_answered / self.rfbs_handled if self.rfbs_handled else 0.0

    def to_dict(self) -> dict:
        # Deliberately excludes `effort` — see the module docstring.
        return {
            "wins": self.wins,
            "losses": self.losses,
            "win_rate": round(self.win_rate, 6),
            "offers_priced": self.offers_priced,
            "offers_received": self.offers_received,
            "rfbs_handled": self.rfbs_handled,
            "rfbs_answered": self.rfbs_answered,
            "response_rate": round(self.response_rate, 6),
            "settled": self.settled.to_dict(),
            "valuation": self.valuation.to_dict(),
            "latency": self.latency.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SiteStats":
        stats = cls()
        stats.wins = int(payload.get("wins", 0))
        stats.losses = int(payload.get("losses", 0))
        stats.offers_priced = int(payload.get("offers_priced", 0))
        stats.offers_received = int(payload.get("offers_received", 0))
        stats.rfbs_handled = int(payload.get("rfbs_handled", 0))
        stats.rfbs_answered = int(payload.get("rfbs_answered", 0))
        stats.settled = QuantileSketch.from_dict(payload.get("settled") or {})
        stats.valuation = QuantileSketch.from_dict(payload.get("valuation") or {})
        stats.latency = QuantileSketch.from_dict(payload.get("latency") or {})
        return stats


class SiteStatsRegistry:
    """Thread-safe per-site aggregation over completed sessions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sites: dict[str, SiteStats] = {}
        self.sessions = 0
        self.rounds = 0
        self.rfb_fanout = 0     # total RFB messages broadcast (fanout sum)
        self.rfb_responded = 0  # sellers that answered, summed over rounds

    def _site(self, name: str) -> SiteStats:
        stats = self._sites.get(name)
        if stats is None:
            stats = self._sites[name] = SiteStats()
        return stats

    # -- ingest --------------------------------------------------------
    def observe_session(
        self,
        ledger: NegotiationLedger | None,
        records: Iterable[TraceRecord] | None = None,
    ) -> None:
        """Fold one completed session's ledger + trace into the registry.

        Untraced sessions (``trace=false``) contribute nothing — the
        ledger only exists when tracing was on, which is the broker's
        default.
        """
        if ledger is None:
            return
        with self._lock:
            self.sessions += 1
            self.rounds += len(ledger.rounds)
            for offer_id in sorted(ledger.offers):
                node = ledger.offers[offer_id]
                seller = node.get("seller")
                if not seller:
                    continue
                stats = self._site(seller)
                stats.offers_priced += 1
                total_time = node.get("total_time")
                if total_time is not None:
                    stats.latency.add(float(total_time))
                if node.get("received"):
                    stats.offers_received += 1
                    value = node.get("value")
                    if value is not None:
                        stats.valuation.add(float(value))
                if node.get("awarded"):
                    stats.wins += 1
                    price = node.get("price")
                    if price is None:
                        price = node.get("money")
                    if price is not None:
                        stats.settled.add(float(price))
                elif node.get("received"):
                    stats.losses += 1
            if records is not None:
                self._observe_records(records)

    def _observe_records(self, records: Iterable[TraceRecord]) -> None:
        """Latency/fanout accounting from trace record *args* only."""
        for record in records:
            if record.cat == CAT_PARALLEL or record.kind != "span":
                continue
            args = record.args or {}
            if record.name == "seller.compute" and record.site:
                stats = self._site(record.site)
                stats.rfbs_handled += 1
                if args.get("offers"):
                    stats.rfbs_answered += 1
                stats.effort.add(float(args.get("work", 0.0)))
            elif record.name == "rfb.fanout":
                self.rfb_fanout += int(args.get("sellers", 0))
            elif record.name == "protocol.solicit":
                self.rfb_responded += int(args.get("responded", 0))

    def merge(self, other: "SiteStatsRegistry") -> None:
        """Fold *other* in (e.g. per-shard registries); order-free."""
        with self._lock:
            self.sessions += other.sessions
            self.rounds += other.rounds
            self.rfb_fanout += other.rfb_fanout
            self.rfb_responded += other.rfb_responded
            for name, theirs in other._sites.items():
                mine = self._site(name)
                mine.wins += theirs.wins
                mine.losses += theirs.losses
                mine.offers_priced += theirs.offers_priced
                mine.offers_received += theirs.offers_received
                mine.rfbs_handled += theirs.rfbs_handled
                mine.rfbs_answered += theirs.rfbs_answered
                mine.settled.merge(theirs.settled)
                mine.valuation.merge(theirs.valuation)
                mine.latency.merge(theirs.latency)
                mine.effort.merge(theirs.effort)

    # -- read ----------------------------------------------------------
    def sites(self) -> list[str]:
        with self._lock:
            return sorted(self._sites)

    def get(self, site: str) -> SiteStats | None:
        with self._lock:
            return self._sites.get(site)

    def snapshot(self) -> dict:
        """Deterministic plain-data snapshot (sorted sites, sketch dicts)."""
        with self._lock:
            return {
                "schema_version": SITE_STATS_SCHEMA_VERSION,
                "sessions": self.sessions,
                "rounds": self.rounds,
                "rfb_fanout": self.rfb_fanout,
                "rfb_responded": self.rfb_responded,
                "response_ratio": round(
                    self.rfb_responded / self.rfb_fanout, 6
                )
                if self.rfb_fanout
                else 0.0,
                "sites": {
                    name: self._sites[name].to_dict()
                    for name in sorted(self._sites)
                },
            }

    def operational(self) -> dict:
        """Cache-interleaving-dependent extras (actual pricing effort),
        kept off the deterministic snapshot surface."""
        with self._lock:
            return {
                name: {
                    "effort_mean_s": round(self._sites[name].effort.mean, 9),
                    "effort_p95_s": self._sites[name].effort.quantile(0.95),
                }
                for name in sorted(self._sites)
            }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    @classmethod
    def from_snapshot(cls, payload: Mapping) -> "SiteStatsRegistry":
        """Restore a registry; ``restore(snapshot()).snapshot()`` is
        byte-identical to the original."""
        registry = cls()
        registry.sessions = int(payload.get("sessions", 0))
        registry.rounds = int(payload.get("rounds", 0))
        registry.rfb_fanout = int(payload.get("rfb_fanout", 0))
        registry.rfb_responded = int(payload.get("rfb_responded", 0))
        for name, stats in (payload.get("sites") or {}).items():
            registry._sites[name] = SiteStats.from_dict(stats)
        return registry
