"""Per-site live statistics, aggregated from completed sessions.

The :class:`SiteStatsRegistry` is the substrate both open ROADMAP items
stand on: adaptive top-k RFB fanout needs learned per-site win rates,
price distributions, and latency; mid-execution re-trading needs a live
view of who is answering and at what price.  It consumes exactly what a
finished broker session already carries:

* the **decision ledger** for offer pricing, offered latency
  (``total_time``: the seller's promised execute+ship time), intake,
  awards, and settled prices;
* the session's **trace records** for RFB accounting the ledger omits:
  handled/answered counts from ``seller.compute`` spans and fanout
  sizes from ``rfb.fanout`` span args.

Only record *args* are read, never sim/wall timestamps, and every
accumulator is an integer count or a :class:`~repro.obs.live.sketch.
QuantileSketch` — so a registry built from any interleaving of the same
sessions snapshots to identical bytes.  ``snapshot()``/
``from_snapshot()`` round-trip exactly.

Pricing-effort accounting is **nominal**: the per-offer ``effort``
field the ledger stamps at ``ledger.priced`` time (enumerated plans ×
seconds-per-plan, independent of cache state).  The actual
``seller.compute`` span ``work`` is *not* used — with the broker's
shared cross-session offer cache, which session pays the pricing cost
depends on completion interleaving, so ``work`` is not run-to-run
deterministic under concurrency.  Nominal effort is, which is what
lets the :attr:`SiteStats.effort` sketch live in the byte-identity
snapshot.

When sessions carry a critical-path decomposition
(:mod:`repro.obs.critpath`), the registry also aggregates per-phase
critical-path latency sketches and each seller's compute seconds *on*
the critical path.  Those aggregates stay on the *operational* surface
(:meth:`SiteStatsRegistry.operational` /
:meth:`SiteStatsRegistry.critical_summary`, and the Prometheus
exposition) rather than the byte-identity snapshot: a session's
critical path attributes the compute that *actually* ran, and under
shared cross-session pricing which session pays a shared subquery is
an interleaving accident — exactly the raciness that disqualified raw
``work`` from the effort sketch.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Mapping

from repro.obs.ledger import NegotiationLedger
from repro.obs.live.sketch import QuantileSketch
from repro.obs.tracer import CAT_PARALLEL, TraceRecord

__all__ = ["SiteStats", "SiteStatsRegistry", "SITE_STATS_SCHEMA_VERSION"]

#: Bump when the snapshot shape changes.
SITE_STATS_SCHEMA_VERSION = 2  # v2: nominal per-offer effort sketch


class SiteStats:
    """One seller site's live accumulators."""

    __slots__ = (
        "wins",
        "losses",
        "offers_priced",
        "offers_received",
        "rfbs_handled",
        "rfbs_answered",
        "settled",
        "valuation",
        "latency",
        "effort",
        "critical_units",
    )

    def __init__(self) -> None:
        self.wins = 0            # awarded offers
        self.losses = 0          # offers received by the buyer, not awarded
        self.offers_priced = 0   # offers the seller priced (post-dedupe)
        self.offers_received = 0  # survived the network back to the buyer
        self.rfbs_handled = 0    # RFBs delivered to this seller
        self.rfbs_answered = 0   # RFBs answered with at least one offer
        self.settled = QuantileSketch()    # settled (Vickrey) prices
        self.valuation = QuantileSketch()  # buyer valuations of its offers
        self.latency = QuantileSketch()    # offered total time (sim s)
        #: Nominal per-offer pricing effort (sim s): enumerated plans ×
        #: seconds-per-plan as stamped at ``ledger.priced`` time, so it
        #: is cache-independent and deterministic.
        self.effort = QuantileSketch()
        #: Seller compute seconds attributed to session critical paths,
        #: kept as integer nano-units (like the sketch sums) so the
        #: total is exact and independent of the order sessions finish.
        self.critical_units = 0

    @property
    def critical_seconds(self) -> float:
        return self.critical_units / 1e9

    @property
    def win_rate(self) -> float:
        decided = self.wins + self.losses
        return self.wins / decided if decided else 0.0

    @property
    def response_rate(self) -> float:
        return self.rfbs_answered / self.rfbs_handled if self.rfbs_handled else 0.0

    def to_dict(self) -> dict:
        return {
            "wins": self.wins,
            "losses": self.losses,
            "win_rate": round(self.win_rate, 6),
            "offers_priced": self.offers_priced,
            "offers_received": self.offers_received,
            "rfbs_handled": self.rfbs_handled,
            "rfbs_answered": self.rfbs_answered,
            "response_rate": round(self.response_rate, 6),
            "settled": self.settled.to_dict(),
            "valuation": self.valuation.to_dict(),
            "latency": self.latency.to_dict(),
            "effort": self.effort.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SiteStats":
        stats = cls()
        stats.wins = int(payload.get("wins", 0))
        stats.losses = int(payload.get("losses", 0))
        stats.offers_priced = int(payload.get("offers_priced", 0))
        stats.offers_received = int(payload.get("offers_received", 0))
        stats.rfbs_handled = int(payload.get("rfbs_handled", 0))
        stats.rfbs_answered = int(payload.get("rfbs_answered", 0))
        stats.settled = QuantileSketch.from_dict(payload.get("settled") or {})
        stats.valuation = QuantileSketch.from_dict(payload.get("valuation") or {})
        stats.latency = QuantileSketch.from_dict(payload.get("latency") or {})
        stats.effort = QuantileSketch.from_dict(payload.get("effort") or {})
        return stats


class SiteStatsRegistry:
    """Thread-safe per-site aggregation over completed sessions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sites: dict[str, SiteStats] = {}
        self.sessions = 0
        self.rounds = 0
        self.rfb_fanout = 0     # total RFB messages broadcast (fanout sum)
        self.rfb_responded = 0  # sellers that answered, summed over rounds
        self.critical_sessions = 0  # sessions with a critical-path breakdown
        #: Per-phase critical-path seconds, one observation per session.
        self.phase_latency: dict[str, QuantileSketch] = {}

    def _site(self, name: str) -> SiteStats:
        stats = self._sites.get(name)
        if stats is None:
            stats = self._sites[name] = SiteStats()
        return stats

    # -- ingest --------------------------------------------------------
    def observe_session(
        self,
        ledger: NegotiationLedger | None,
        records: Iterable[TraceRecord] | None = None,
        critical_path: Mapping | None = None,
    ) -> None:
        """Fold one completed session's ledger + trace into the registry.

        Untraced sessions (``trace=false``) contribute nothing — the
        ledger only exists when tracing was on, which is the broker's
        default.  *critical_path* is the session telemetry's
        decomposition dict (``RunTelemetry.critical_path``), when one
        was computed.
        """
        if ledger is None:
            return
        with self._lock:
            self.sessions += 1
            self.rounds += len(ledger.rounds)
            for offer_id in sorted(ledger.offers):
                node = ledger.offers[offer_id]
                seller = node.get("seller")
                if not seller:
                    continue
                stats = self._site(seller)
                stats.offers_priced += 1
                total_time = node.get("total_time")
                if total_time is not None:
                    stats.latency.add(float(total_time))
                effort = node.get("effort")
                if effort is not None:
                    stats.effort.add(float(effort))
                if node.get("received"):
                    stats.offers_received += 1
                    value = node.get("value")
                    if value is not None:
                        stats.valuation.add(float(value))
                if node.get("awarded"):
                    stats.wins += 1
                    price = node.get("price")
                    if price is None:
                        price = node.get("money")
                    if price is not None:
                        stats.settled.add(float(price))
                elif node.get("received"):
                    stats.losses += 1
            if records is not None:
                self._observe_records(records)
            if critical_path is not None:
                self._observe_critical(critical_path)

    def _observe_records(self, records: Iterable[TraceRecord]) -> None:
        """Latency/fanout accounting from trace record *args* only."""
        for record in records:
            if record.cat == CAT_PARALLEL or record.kind != "span":
                continue
            args = record.args or {}
            if record.name == "seller.compute" and record.site:
                stats = self._site(record.site)
                stats.rfbs_handled += 1
                if args.get("offers"):
                    stats.rfbs_answered += 1
            elif record.name == "rfb.fanout":
                self.rfb_fanout += int(args.get("sellers", 0))
            elif record.name == "protocol.solicit":
                self.rfb_responded += int(args.get("responded", 0))

    def _observe_critical(self, decomposition: Mapping) -> None:
        """Fold one session's critical-path decomposition in."""
        phases = decomposition.get("phases") or {}
        if not phases:
            return
        self.critical_sessions += 1
        for phase in sorted(phases):
            sketch = self.phase_latency.get(phase)
            if sketch is None:
                sketch = self.phase_latency[phase] = QuantileSketch()
            sketch.add(float(phases[phase]))
        for site, seconds in (decomposition.get("sellers") or {}).items():
            self._site(site).critical_units += round(float(seconds) * 1e9)

    def merge(self, other: "SiteStatsRegistry") -> None:
        """Fold *other* in (e.g. per-shard registries); order-free."""
        with self._lock:
            self.sessions += other.sessions
            self.rounds += other.rounds
            self.rfb_fanout += other.rfb_fanout
            self.rfb_responded += other.rfb_responded
            self.critical_sessions += other.critical_sessions
            for phase, theirs_sketch in other.phase_latency.items():
                mine_sketch = self.phase_latency.get(phase)
                if mine_sketch is None:
                    mine_sketch = self.phase_latency[phase] = QuantileSketch()
                mine_sketch.merge(theirs_sketch)
            for name, theirs in other._sites.items():
                mine = self._site(name)
                mine.wins += theirs.wins
                mine.losses += theirs.losses
                mine.offers_priced += theirs.offers_priced
                mine.offers_received += theirs.offers_received
                mine.rfbs_handled += theirs.rfbs_handled
                mine.rfbs_answered += theirs.rfbs_answered
                mine.settled.merge(theirs.settled)
                mine.valuation.merge(theirs.valuation)
                mine.latency.merge(theirs.latency)
                mine.effort.merge(theirs.effort)
                mine.critical_units += theirs.critical_units

    # -- read ----------------------------------------------------------
    def sites(self) -> list[str]:
        with self._lock:
            return sorted(self._sites)

    def get(self, site: str) -> SiteStats | None:
        with self._lock:
            return self._sites.get(site)

    def snapshot(self) -> dict:
        """Deterministic plain-data snapshot (sorted sites, sketch dicts)."""
        with self._lock:
            return {
                "schema_version": SITE_STATS_SCHEMA_VERSION,
                "sessions": self.sessions,
                "rounds": self.rounds,
                "rfb_fanout": self.rfb_fanout,
                "rfb_responded": self.rfb_responded,
                "response_ratio": round(
                    self.rfb_responded / self.rfb_fanout, 6
                )
                if self.rfb_fanout
                else 0.0,
                "sites": {
                    name: self._sites[name].to_dict()
                    for name in sorted(self._sites)
                },
            }

    def operational(self) -> dict:
        """Headline effort scalars for the ``GET /sites`` payload
        (precomputed from the nominal-effort sketches), plus each
        site's seller-compute seconds on session critical paths.

        Critical-path attribution is *actual*, not nominal: under
        cross-session shared pricing, which session pays a shared
        subquery's compute depends on thread interleaving, so these
        figures (like wall-clock latencies) stay off the byte-identity
        snapshot surface."""
        with self._lock:
            return {
                name: {
                    "effort_mean_s": round(self._sites[name].effort.mean, 9),
                    "effort_p95_s": self._sites[name].effort.quantile(0.95),
                    "critical_seconds": round(
                        self._sites[name].critical_units / 1e9, 9
                    ),
                }
                for name in sorted(self._sites)
            }

    def critical_summary(self) -> dict:
        """Operational critical-path aggregates: session count and the
        per-phase latency sketches (one observation per session)."""
        with self._lock:
            return {
                "sessions": self.critical_sessions,
                "phases": {
                    phase: self.phase_latency[phase].to_dict()
                    for phase in sorted(self.phase_latency)
                },
            }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    @classmethod
    def from_snapshot(cls, payload: Mapping) -> "SiteStatsRegistry":
        """Restore a registry; ``restore(snapshot()).snapshot()`` is
        byte-identical to the original."""
        registry = cls()
        registry.sessions = int(payload.get("sessions", 0))
        registry.rounds = int(payload.get("rounds", 0))
        registry.rfb_fanout = int(payload.get("rfb_fanout", 0))
        registry.rfb_responded = int(payload.get("rfb_responded", 0))
        for name, stats in (payload.get("sites") or {}).items():
            registry._sites[name] = SiteStats.from_dict(stats)
        return registry
