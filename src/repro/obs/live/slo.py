"""Per-run and per-epoch SLO tracking for the broker.

The broker's admission controller can shed or degrade sessions; the SLO
tracker turns those raw counts into budget signals an operator can
alert on: "is the shed ratio within budget, per run and over the last
epoch of N sessions?", alongside p50/p99 session latency.

Latency quantiles come from a :class:`~repro.obs.live.sketch.
QuantileSketch`, so per-run aggregates are order-independent.  Epoch
aggregates window over *completion order* — they are inherently an
operational (wall-ish) signal and are excluded from byte-identity
checks; the deterministic surface is the per-run totals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.live.sketch import QuantileSketch

__all__ = ["SLOConfig", "SLOTracker"]


@dataclass(frozen=True)
class SLOConfig:
    """SLO budgets: ratios in [0, 1], epoch size in sessions."""

    shed_budget: float = 0.05      # fraction of arrivals that may be shed
    degraded_budget: float = 0.10  # fraction of completions that may degrade
    epoch_sessions: int = 32       # sessions per SLO epoch window


class SLOTracker:
    """Counts terminal session outcomes against SLO budgets."""

    def __init__(self, config: SLOConfig | None = None) -> None:
        self.config = config or SLOConfig()
        self._lock = threading.Lock()
        self.completed = 0
        self.shed = 0
        self.degraded = 0
        self.failed = 0
        self.latency = QuantileSketch()
        # Current (partial) epoch accumulators.
        self._epoch_index = 0
        self._epoch_completed = 0
        self._epoch_shed = 0
        self._epoch_degraded = 0
        self._epoch_latency = QuantileSketch()
        self._last_epoch: dict | None = None

    # -- ingest --------------------------------------------------------
    def observe_shed(self) -> None:
        with self._lock:
            self.shed += 1
            self._epoch_shed += 1
            self._maybe_roll()

    def observe_completion(
        self, latency_s: float, *, degraded: bool = False, failed: bool = False
    ) -> None:
        with self._lock:
            self.completed += 1
            self._epoch_completed += 1
            if degraded:
                self.degraded += 1
                self._epoch_degraded += 1
            if failed:
                self.failed += 1
            self.latency.add(latency_s)
            self._epoch_latency.add(latency_s)
            self._maybe_roll()

    def _maybe_roll(self) -> None:
        total = self._epoch_completed + self._epoch_shed
        if total < self.config.epoch_sessions:
            return
        self._last_epoch = self._epoch_summary_locked()
        self._epoch_index += 1
        self._epoch_completed = 0
        self._epoch_shed = 0
        self._epoch_degraded = 0
        self._epoch_latency = QuantileSketch()

    # -- read ----------------------------------------------------------
    def _epoch_summary_locked(self) -> dict:
        total = self._epoch_completed + self._epoch_shed
        return {
            "epoch": self._epoch_index,
            "sessions": total,
            "completed": self._epoch_completed,
            "shed": self._epoch_shed,
            "degraded": self._epoch_degraded,
            "shed_ratio": round(self._epoch_shed / total, 6) if total else 0.0,
            "latency_p50_s": self._epoch_latency.quantile(0.5),
            "latency_p99_s": self._epoch_latency.quantile(0.99),
        }

    def summary(self) -> dict:
        """Run totals, current-epoch progress, and last closed epoch."""
        with self._lock:
            arrivals = self.completed + self.shed
            shed_ratio = self.shed / arrivals if arrivals else 0.0
            degraded_ratio = (
                self.degraded / self.completed if self.completed else 0.0
            )
            return {
                "config": {
                    "shed_budget": self.config.shed_budget,
                    "degraded_budget": self.config.degraded_budget,
                    "epoch_sessions": self.config.epoch_sessions,
                },
                "completed": self.completed,
                "shed": self.shed,
                "degraded": self.degraded,
                "failed": self.failed,
                "shed_ratio": round(shed_ratio, 6),
                "shed_within_budget": shed_ratio <= self.config.shed_budget,
                "degraded_ratio": round(degraded_ratio, 6),
                "degraded_within_budget": (
                    degraded_ratio <= self.config.degraded_budget
                ),
                "latency_p50_s": self.latency.quantile(0.5),
                "latency_p99_s": self.latency.quantile(0.99),
                "epoch": self._epoch_summary_locked(),
                "last_epoch": self._last_epoch,
            }
