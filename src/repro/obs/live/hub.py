"""The broker-facing coordinator for live observability.

A :class:`LiveObsHub` owns the live registries and is the *only* thing
:class:`~repro.broker.service.BrokerService` talks to — one
``observe_terminal(session)`` call per finished session fans out to:

* the :class:`~repro.obs.live.registry.SiteStatsRegistry` (ledger +
  trace records),
* the :class:`~repro.obs.live.slo.SLOTracker` (latency, shed/degraded
  budgets),
* the :class:`~repro.obs.live.qerror.QErrorObservatory` on
  deterministically-sampled sessions (the purchased plan is re-executed
  against lazily-materialized federation data), and
* the :class:`~repro.obs.live.events.EventRing` behind ``GET /events``.

The hub is entirely opt-in: when the broker runs without ``--live-obs``
no hub exists and no live code is on the session path.  Q-error
execution happens *after* the session's latency is stamped, so sampling
never inflates reported session latency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.live.events import DEFAULT_CAPACITY, EventRing
from repro.obs.live.qerror import QErrorObservatory
from repro.obs.live.registry import SiteStatsRegistry
from repro.obs.live.slo import SLOConfig, SLOTracker

__all__ = ["LiveObsConfig", "LiveObsHub"]


@dataclass(frozen=True)
class LiveObsConfig:
    """Knobs for the live observability layer (``repro serve --live-obs``)."""

    #: Run the q-error observatory on every Nth session (0 disables it).
    qerror_sample_every: int = 4
    #: Seed for materializing federation data for q-error execution —
    #: use the world seed so observed rows match what sellers would ship.
    data_seed: int = 7
    #: `/events` ring capacity.
    events_capacity: int = DEFAULT_CAPACITY
    #: SLO budgets.
    slo: SLOConfig = field(default_factory=SLOConfig)


def _numeric_session_id(session_id: str) -> int:
    digits = "".join(ch for ch in str(session_id) if ch.isdigit())
    return int(digits) if digits else 0


class LiveObsHub:
    """Aggregates completed-session signals into the live registries."""

    def __init__(self, world, config: LiveObsConfig | None = None):
        self.config = config or LiveObsConfig()
        self.world = world
        self.registry = SiteStatsRegistry()
        self.slo = SLOTracker(self.config.slo)
        self.events = EventRing(self.config.events_capacity)
        self.qerror = (
            QErrorObservatory(self.config.qerror_sample_every)
            if self.config.qerror_sample_every > 0
            else None
        )
        self.qerror_failures = 0
        self._data = None  # FederationData, materialized on first sample
        self._data_lock = threading.Lock()

    # -- ingest --------------------------------------------------------
    def observe_submitted(self, session) -> None:
        self.events.append(
            "session.submitted",
            session=session.session_id,
            tenant=session.spec.tenant,
        )

    def observe_terminal(self, session) -> None:
        """Fold one terminal session into every live registry."""
        state = session.state
        if state == "shed":
            self.slo.observe_shed()
            self.events.append(
                "session.shed", session=session.session_id, error=session.error
            )
            return
        latency = session.latency or 0.0
        self.slo.observe_completion(
            latency,
            degraded=(state == "degraded"),
            failed=(state == "failed"),
        )
        result = session.result
        ledger = result.ledger if result is not None else None
        records = getattr(session, "live_records", None)
        telemetry = result.telemetry if result is not None else None
        critical_path = (
            telemetry.critical_path if telemetry is not None else None
        )
        self.registry.observe_session(ledger, records, critical_path)
        session.live_records = None  # the hub is the records' last stop
        event = {
            "session": session.session_id,
            "state": state,
            "latency_ms": round(latency * 1e3, 3),
        }
        if result is not None and result.found:
            event["plan_cost"] = result.best.properties.total_time
            event["sampled"] = self._maybe_observe_qerror(session)
        self.events.append("session.terminal", **event)

    def _maybe_observe_qerror(self, session) -> bool:
        if self.qerror is None:
            return False
        if not self.qerror.should_sample(_numeric_session_id(session.session_id)):
            return False
        try:
            data = self._federation_data()
            self.qerror.observe_plan(
                session.result.best.plan, data, session.spec.query
            )
        except Exception:  # a bad sample must never kill the broker
            self.qerror_failures += 1
            return False
        return True

    def _federation_data(self):
        with self._data_lock:
            if self._data is None:
                from repro.execution.engine import FederationData

                self._data = FederationData.build(
                    self.world.catalog, seed=self.config.data_seed
                )
            return self._data

    # -- read ----------------------------------------------------------
    def snapshot(self) -> dict:
        """The deterministic live-obs state (sites + q-error)."""
        out = {"sites": self.registry.snapshot()}
        if self.qerror is not None:
            out["qerror"] = self.qerror.snapshot()
        return out

    def sites_payload(self, worst: int = 5) -> dict:
        """The ``GET /sites`` payload: snapshot plus ranked offenders."""
        payload = self.snapshot()
        payload["operational"] = self.registry.operational()
        if self.qerror is not None:
            payload["worst_estimators"] = self.qerror.worst_offenders(worst)
            payload["qerror_failures"] = self.qerror_failures
        return payload

    def prom_families(self, builder) -> None:
        """Contribute live-obs metric families to the Prometheus builder."""
        from repro.obs.live.qerror import QERROR_BUCKETS
        from repro.obs.live.sketch import QuantileSketch

        sites = self.registry.snapshot()
        builder.counter(
            "live_sessions_observed",
            "sessions folded into the live registries",
            sites["sessions"],
        )
        builder.counter(
            "live_rounds_observed",
            "trading rounds folded into the live registries",
            sites["rounds"],
        )
        builder.counter(
            "live_rfb_fanout",
            "RFB messages broadcast across observed sessions",
            sites["rfb_fanout"],
        )
        builder.counter(
            "live_rfb_responded",
            "RFB deliveries answered with offers across observed sessions",
            sites["rfb_responded"],
        )
        builder.gauge(
            "live_rfb_response_ratio",
            "responded / fanout across observed sessions",
            sites["response_ratio"],
        )
        counters = (
            ("wins", "offers this site won"),
            ("losses", "offers this site lost at ranking"),
            ("offers_priced", "offers this site priced"),
            ("offers_received", "offers from this site the buyer received"),
            ("rfbs_handled", "RFBs delivered to this site"),
            ("rfbs_answered", "RFBs this site answered with offers"),
        )
        for site, stats in sites["sites"].items():
            for key, help_text in counters:
                builder.counter(f"site_{key}", help_text, stats[key], site=site)
            builder.gauge(
                "site_win_rate", "offer win rate", stats["win_rate"], site=site
            )
            builder.gauge(
                "site_response_rate",
                "RFB response rate",
                stats["response_rate"],
                site=site,
            )
            settled = QuantileSketch.from_dict(stats["settled"])
            builder.gauge(
                "site_settled_price_mean",
                "mean settled (awarded) offer price",
                round(settled.mean, 9),
                site=site,
            )
            latency = QuantileSketch.from_dict(stats["latency"])
            builder.gauge(
                "site_offer_latency_p95_seconds",
                "p95 offered total time, execute+ship (simulated seconds)",
                latency.quantile(0.95),
                site=site,
            )
        for site, extras in self.registry.operational().items():
            builder.gauge(
                "site_pricing_effort_mean_seconds",
                "mean nominal per-offer pricing effort (cache-independent)",
                extras["effort_mean_s"],
                site=site,
            )
            builder.gauge(
                "site_critical_seconds",
                "seller compute seconds on session critical paths",
                extras["critical_seconds"],
                site=site,
            )
        critical = self.registry.critical_summary()
        builder.counter(
            "critpath_sessions_observed",
            "sessions folded in with a critical-path decomposition",
            critical["sessions"],
        )
        for phase, sketch_dict in critical["phases"].items():
            sketch = QuantileSketch.from_dict(sketch_dict)
            builder.gauge(
                "critpath_phase_seconds_mean",
                "mean per-session critical-path seconds per phase",
                round(sketch.mean, 9),
                phase=phase,
            )
            builder.gauge(
                "critpath_phase_seconds_p95",
                "p95 per-session critical-path seconds per phase",
                sketch.quantile(0.95),
                phase=phase,
            )
        slo = self.slo.summary()
        builder.gauge(
            "slo_shed_ratio", "shed sessions / arrivals", slo["shed_ratio"]
        )
        builder.gauge(
            "slo_shed_within_budget",
            "1 when the shed ratio is within budget",
            int(slo["shed_within_budget"]),
        )
        builder.gauge(
            "slo_degraded_ratio",
            "degraded completions / completions",
            slo["degraded_ratio"],
        )
        builder.gauge(
            "slo_degraded_within_budget",
            "1 when the degraded ratio is within budget",
            int(slo["degraded_within_budget"]),
        )
        for quantile in ("p50", "p99"):
            builder.gauge(
                "slo_latency_seconds",
                "session latency quantiles in seconds",
                slo[f"latency_{quantile}_s"],
                quantile=quantile,
            )
        builder.gauge(
            "slo_epoch", "index of the current SLO epoch", slo["epoch"]["epoch"]
        )
        if self.qerror is not None:
            snap = self.qerror.snapshot()
            builder.counter(
                "qerror_sampled_sessions",
                "sessions sampled by the q-error observatory",
                snap["sampled_sessions"],
            )
            builder.counter(
                "qerror_nodes_observed",
                "plan nodes with observed cardinalities",
                snap["nodes_observed"],
            )
            for key, cell in snap["cells"].items():
                site, _, size = key.rpartition("|")
                builder.histogram(
                    "qerror",
                    "observed-vs-estimated cardinality q-error per "
                    "(site, relation-set-size)",
                    QERROR_BUCKETS,
                    cell["counts"],
                    cell["sum"],
                    site=site,
                    relations=size,
                )
