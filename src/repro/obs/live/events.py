"""Bounded ring buffer of recent broker events, served at ``GET /events``.

Operators tailing a long-running broker need "what just happened"
without the broker holding whole-run traces in memory.  The ring keeps
the last *capacity* events, each stamped with a monotonically increasing
integer id; clients poll ``/events?since=<cursor>`` and get everything
newer plus the new cursor to resume from.  If the client falls behind by
more than the capacity, the response's ``dropped`` count says how many
events were evicted before it caught up — the cursor protocol never
blocks the broker.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["EventRing"]

DEFAULT_CAPACITY = 512
MAX_LIMIT = 1000


class EventRing:
    """Fixed-capacity event log with a monotonically increasing cursor."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=capacity)
        self._next_id = 1

    def append(self, kind: str, **fields) -> int:
        """Record an event; returns its cursor id."""
        with self._lock:
            event = {"id": self._next_id, "kind": kind}
            event.update(fields)
            self._events.append(event)
            self._next_id += 1
            return event["id"]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def cursor(self) -> int:
        """The id of the most recent event (0 when empty-forever)."""
        with self._lock:
            return self._next_id - 1

    def since(self, cursor: int = 0, limit: int = MAX_LIMIT) -> dict:
        """Events with id > *cursor*, oldest first, capped at *limit*.

        Returns ``{"events": [...], "cursor": <resume-from>,
        "dropped": <evicted-before-catchup>, "gap": <bool>}``.  ``gap``
        is the explicit "your cursor fell past the ring's tail" marker:
        true exactly when events between *cursor* and the oldest
        retained one were evicted, so the stream the client resumes is
        not contiguous with what it saw last.
        """
        limit = max(1, min(int(limit), MAX_LIMIT))
        with self._lock:
            oldest = self._events[0]["id"] if self._events else self._next_id
            dropped = max(0, oldest - max(int(cursor), 0) - 1) if cursor < oldest else 0
            selected = [e for e in self._events if e["id"] > cursor][:limit]
            resume = selected[-1]["id"] if selected else max(cursor, self._next_id - 1)
            return {
                "events": selected,
                "cursor": resume,
                "dropped": dropped,
                "gap": bool(dropped),
            }
