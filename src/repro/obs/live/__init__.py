"""Live serving observability: streaming per-site statistics for the broker.

PR 4/5 built *post-hoc* observability — traces, ledgers, and reports
over completed runs.  This package is the *live* counterpart the
long-running broker daemon needs: continuously-aggregated statistics
that answer "how are the sellers doing right now?" without holding
whole-run traces in memory.

* :class:`QuantileSketch` — a deterministic, mergeable streaming
  quantile sketch over fixed log-spaced buckets.  All state is integer
  bucket counts plus an integer-scaled sum, so aggregation is
  order-independent: registries built from sessions completing in any
  interleaving (thread counts, clock kinds) are byte-identical.
* :class:`SiteStatsRegistry` — per-site win/loss counts, settled-price
  and valuation sketches, offer-latency sketches, and RFB
  fanout/response accounting, consumed from decision ledgers and trace
  records as sessions complete.  Snapshot/restore round-trips exactly.
* :class:`QErrorObservatory` — runs purchased plans through the
  execution engine on sampled sessions and histograms
  observed-vs-estimated cardinality q-error per (site, relation-set
  size): the calibration signal mid-execution re-trading will consume.
* :func:`render_prometheus` / :func:`parse_prometheus_text` —
  Prometheus text-format exposition (``GET /metrics/prom``) and the
  strict parser the tests and CI validate it with.
* :class:`EventRing` — a bounded ring buffer of recent broker events
  behind ``GET /events?since=``.
* :class:`SLOTracker` — p50/p99 session latency plus shed/degraded
  budget tracking, per-run and per fixed-size session epoch.
* :class:`LiveObsHub` — the broker-facing coordinator tying the above
  together (see :class:`repro.broker.service.BrokerService`).

Everything here is stdlib-only and opt-in (``repro serve --live-obs``);
when disabled the broker's hot path is untouched.  See
``docs/OBSERVABILITY.md`` ("Live serving observability").
"""

from repro.obs.live.events import EventRing
from repro.obs.live.hub import LiveObsConfig, LiveObsHub
from repro.obs.live.prom import (
    PromParseError,
    parse_prometheus_text,
    render_prometheus,
)
from repro.obs.live.qerror import QERROR_BUCKETS, QErrorObservatory
from repro.obs.live.registry import SiteStatsRegistry
from repro.obs.live.sketch import QuantileSketch
from repro.obs.live.slo import SLOConfig, SLOTracker

__all__ = [
    "EventRing",
    "LiveObsConfig",
    "LiveObsHub",
    "PromParseError",
    "QERROR_BUCKETS",
    "QErrorObservatory",
    "QuantileSketch",
    "SLOConfig",
    "SLOTracker",
    "SiteStatsRegistry",
    "parse_prometheus_text",
    "render_prometheus",
]
