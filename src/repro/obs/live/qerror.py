"""Q-error observatory: observed-vs-estimated cardinality calibration.

Every plan node the buyer's DP builds carries the optimizer's estimated
output cardinality (``Plan.rows``).  The observatory re-runs purchased
plans through :class:`~repro.execution.engine.PlanExecutor` on *sampled*
sessions and, via the executor's observer hook, compares each node's
estimate against the actually-materialized row count.  The classic
metric is the **q-error**::

    q = max(est / obs, obs / est)        (both floored at 1 row)

``q == 1`` is a perfect estimate; ``q == 4`` means off by 4x in either
direction.  Errors are histogrammed per ``(site, relation-set-size)``
cell — size-1 cells calibrate base selectivities, size-k cells expose
the compounding join-selectivity error that grows with k.  The
worst-offender surfacing is exactly the signal the mid-execution
re-trading ROADMAP item needs: re-optimize when the running plan's cell
is known-miscalibrated.

Sampling is deterministic (numeric session id modulo the rate), so
same-seed runs sample the same sessions and snapshots are byte-identical
across clocks and worker counts.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Mapping

from repro.execution.engine import FederationData, PlanExecutor
from repro.execution.tables import ResultSet
from repro.optimizer.plans import Plan, Purchased, Transfer
from repro.sql.query import SPJQuery

__all__ = ["QERROR_BUCKETS", "QErrorObservatory", "qerror"]

#: Histogram bucket upper bounds (inclusive) for q-error values; one
#: extra +inf bucket is kept implicitly at the end.
QERROR_BUCKETS = (1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 25.0, 100.0)

#: Integer scale for exact q-error sums (see obs/live/sketch.py).
_SCALE = 1_000_000_000


def qerror(estimated: float, observed: float) -> float:
    """max(est/obs, obs/est), both floored at one row; always >= 1."""
    est = max(float(estimated), 1.0)
    obs = max(float(observed), 1.0)
    return max(est / obs, obs / est)


class _Cell:
    """One (site, relation-set-size) histogram cell."""

    __slots__ = ("counts", "count", "_sum_units", "_max_units")

    def __init__(self) -> None:
        self.counts = [0] * (len(QERROR_BUCKETS) + 1)  # last = +inf
        self.count = 0
        self._sum_units = 0
        self._max_units = _SCALE  # q-error is always >= 1

    def add(self, q: float) -> None:
        self.counts[bisect_left(QERROR_BUCKETS, q)] += 1
        self.count += 1
        units = round(q * _SCALE)
        self._sum_units += units
        if units > self._max_units:
            self._max_units = units

    def merge(self, other: "_Cell") -> None:
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self._sum_units += other._sum_units
        if other._max_units > self._max_units:
            self._max_units = other._max_units

    @property
    def sum(self) -> float:
        return self._sum_units / _SCALE

    @property
    def mean(self) -> float:
        return self._sum_units / _SCALE / self.count if self.count else 1.0

    @property
    def max(self) -> float:
        return self._max_units / _SCALE

    def quantile(self, quantile_rank: float) -> float:
        """Nearest-rank quantile as a bucket upper bound (max for +inf)."""
        if self.count == 0:
            return 1.0
        target = max(1, min(self.count, math.ceil(quantile_rank * self.count)))
        cumulative = 0
        for i, c in enumerate(self.counts):
            cumulative += c
            if cumulative >= target:
                if i < len(QERROR_BUCKETS):
                    return QERROR_BUCKETS[i]
                return self.max
        return self.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.sum, 9),
            "mean": round(self.mean, 6),
            "max": round(self.max, 6),
            "p50": round(self.quantile(0.5), 6),
            "p90": round(self.quantile(0.9), 6),
            "counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "_Cell":
        cell = cls()
        cell.count = int(payload.get("count", 0))
        cell._sum_units = round(float(payload.get("sum", 0.0)) * _SCALE)
        cell._max_units = max(_SCALE, round(float(payload.get("max", 1.0)) * _SCALE))
        counts = list(payload.get("counts") or [])
        for i in range(min(len(counts), len(cell.counts))):
            cell.counts[i] = int(counts[i])
        return cell


class QErrorObservatory:
    """Per-(site, relation-set-size) q-error histograms over sampled runs."""

    def __init__(self, sample_every: int = 4) -> None:
        self.sample_every = max(1, int(sample_every))
        self._lock = threading.Lock()
        self._cells: dict[tuple[str, int], _Cell] = {}
        self.sampled_sessions = 0
        self.nodes_observed = 0

    # -- sampling ------------------------------------------------------
    def should_sample(self, session_id: int | str) -> bool:
        """Deterministic: numeric session ids modulo the sampling rate."""
        try:
            numeric = int(session_id)
        except (TypeError, ValueError):
            numeric = sum(ord(c) for c in str(session_id))
        return numeric % self.sample_every == 0

    # -- ingest --------------------------------------------------------
    def observe_plan(
        self, plan: Plan, data: FederationData, query: SPJQuery
    ) -> ResultSet:
        """Execute *plan*, folding each node's q-error into its cell.

        Returns the plan's result so callers can reuse the (already paid
        for) execution.  Union/Transfer glue nodes inherit their child
        estimates and would double-count, so only nodes that carry a
        genuine optimizer estimate — purchased leaves and operators with
        at least one relation alias — are recorded.
        """
        observations: list[tuple[str, int, float]] = []

        def observer(node: Plan, observed_rows: int) -> None:
            if isinstance(node, Transfer):
                return  # inherits its child's estimate; would double-count
            aliases = node.aliases()
            if not aliases:
                return
            site = node.seller if isinstance(node, Purchased) else node.site
            observations.append(
                (site, len(aliases), qerror(node.rows, observed_rows))
            )

        result = PlanExecutor(data, query, observer=observer).run(plan)
        with self._lock:
            self.sampled_sessions += 1
            self.nodes_observed += len(observations)
            for site, size, q in observations:
                cell = self._cells.get((site, size))
                if cell is None:
                    cell = self._cells[(site, size)] = _Cell()
                cell.add(q)
        return result

    def merge(self, other: "QErrorObservatory") -> None:
        with self._lock:
            self.sampled_sessions += other.sampled_sessions
            self.nodes_observed += other.nodes_observed
            for key, theirs in other._cells.items():
                mine = self._cells.get(key)
                if mine is None:
                    self._cells[key] = mine = _Cell()
                mine.merge(theirs)

    # -- read ----------------------------------------------------------
    def worst_offenders(self, limit: int = 5) -> list[dict]:
        """Cells ranked by p90 q-error (ties: mean, then key) descending."""
        with self._lock:
            ranked = sorted(
                self._cells.items(),
                key=lambda kv: (-kv[1].quantile(0.9), -kv[1].mean, kv[0]),
            )
            return [
                {"site": site, "relations": size, **cell.to_dict()}
                for (site, size), cell in ranked[: max(1, limit)]
            ]

    def snapshot(self) -> dict:
        """Deterministic snapshot: cells keyed ``site|size``, sorted."""
        with self._lock:
            return {
                "sample_every": self.sample_every,
                "sampled_sessions": self.sampled_sessions,
                "nodes_observed": self.nodes_observed,
                "cells": {
                    f"{site}|{size}": self._cells[(site, size)].to_dict()
                    for site, size in sorted(self._cells)
                },
            }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True)

    @classmethod
    def from_snapshot(cls, payload: Mapping) -> "QErrorObservatory":
        observatory = cls(sample_every=int(payload.get("sample_every", 4)))
        observatory.sampled_sessions = int(payload.get("sampled_sessions", 0))
        observatory.nodes_observed = int(payload.get("nodes_observed", 0))
        for key, cell in (payload.get("cells") or {}).items():
            site, _, size = key.rpartition("|")
            observatory._cells[(site, int(size))] = _Cell.from_dict(cell)
        return observatory
