"""Observability: tracing, metrics, provenance ledger, trace reports.

Zero-dependency and off by default.  Enable by attaching a
:class:`Tracer` to the network fabric::

    from repro.obs import Tracer
    tracer = Tracer()
    network.attach_tracer(tracer)
    result = trader.optimize(query)   # result.telemetry + result.ledger
    write_chrome_trace(tracer.records, "trace.json")
    print(explain(result).render())   # why each site won its commodity

The trader auto-wires the tracer into every layer it drives (protocol,
sellers, offer caches, plan generator, offer farm), so one attach call
instruments the whole negotiation.  See ``docs/OBSERVABILITY.md`` for
the event schema, the span hierarchy, the decision-ledger model, and
the determinism/overhead contracts.
"""

from repro.obs.causal import CAUSAL_SCHEMA_VERSION, CausalDag, causal_events
from repro.obs.critpath import (
    CRITPATH_SCHEMA_VERSION,
    PHASES,
    CriticalPath,
)
from repro.obs.diff import TraceDiff, diff_json, diff_records, diff_rows
from repro.obs.explain import CommodityExplanation, Explanation, explain
from repro.obs.export import (
    chrome_trace_events,
    jsonl_lines,
    render_timeline,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.history import (
    DEFAULT_GATES,
    BenchHistory,
    Gate,
    check_drift,
    check_gates,
    render_check,
    run_envelope,
)
from repro.obs.ledger import CAT_DECISION, NegotiationLedger
from repro.obs.metrics import MetricsRegistry, RunTelemetry
from repro.obs.report import (
    load_trace,
    load_trace_dir,
    render_multi_report,
    render_report,
    summarize,
)
from repro.obs.tracer import CAT_PARALLEL, NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "CAT_DECISION",
    "CAT_PARALLEL",
    "CAUSAL_SCHEMA_VERSION",
    "CRITPATH_SCHEMA_VERSION",
    "BenchHistory",
    "CausalDag",
    "CommodityExplanation",
    "CriticalPath",
    "DEFAULT_GATES",
    "Explanation",
    "Gate",
    "PHASES",
    "MetricsRegistry",
    "NULL_TRACER",
    "NegotiationLedger",
    "RunTelemetry",
    "TraceDiff",
    "TraceRecord",
    "Tracer",
    "causal_events",
    "check_drift",
    "check_gates",
    "chrome_trace_events",
    "diff_json",
    "diff_records",
    "diff_rows",
    "explain",
    "jsonl_lines",
    "load_trace",
    "load_trace_dir",
    "render_check",
    "render_multi_report",
    "render_report",
    "render_timeline",
    "run_envelope",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]
