"""Observability: structured tracing, metrics, exporters, trace reports.

Zero-dependency and off by default.  Enable by attaching a
:class:`Tracer` to the network fabric::

    from repro.obs import Tracer
    tracer = Tracer()
    network.attach_tracer(tracer)
    result = trader.optimize(query)      # result.telemetry now populated
    write_chrome_trace(tracer.records, "trace.json")

The trader auto-wires the tracer into every layer it drives (protocol,
sellers, offer caches, plan generator, offer farm), so one attach call
instruments the whole negotiation.  See ``docs/OBSERVABILITY.md`` for
the event schema, the span hierarchy, and the determinism/overhead
contracts.
"""

from repro.obs.export import (
    chrome_trace_events,
    jsonl_lines,
    render_timeline,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, RunTelemetry
from repro.obs.report import load_trace, render_report, summarize
from repro.obs.tracer import CAT_PARALLEL, NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "CAT_PARALLEL",
    "MetricsRegistry",
    "NULL_TRACER",
    "RunTelemetry",
    "TraceRecord",
    "Tracer",
    "chrome_trace_events",
    "jsonl_lines",
    "load_trace",
    "render_report",
    "render_timeline",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
]
