"""Trace exporters: Chrome ``trace_event`` JSON, flat JSONL, ASCII timeline.

Three renderings of the same :class:`~repro.obs.tracer.TraceRecord`
list:

* :func:`write_chrome_trace` — a ``chrome://tracing`` / Perfetto
  loadable JSON file.  Timestamps are **simulated** microseconds (so
  the visual layout is deterministic); real wall-clock durations ride
  along in each event's ``args`` as ``wall_ms``.  Sites become named
  threads, so per-seller compute intervals line up as lanes.
* :func:`write_jsonl` — one JSON object per line.  In deterministic
  mode (the default) wall-clock fields are dropped, ``parallel``-
  category records (worker-pool diagnostics) are filtered out, and ids
  are re-sequenced — making traces from serial and parallel runs of the
  same negotiation byte-identical.
* :func:`render_timeline` — a terminal view: one lane per site showing
  simulated busy intervals, with negotiation-round boundaries marked.
"""

from __future__ import annotations

import gzip
import io
import json
from contextlib import contextmanager
from typing import Iterable, Sequence, TextIO

from repro.obs.tracer import CAT_PARALLEL, NO_PARENT, TraceRecord

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "jsonl_lines",
    "write_jsonl",
    "render_timeline",
]


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace_events(records: Sequence[TraceRecord]) -> list[dict]:
    """The ``traceEvents`` array for *records* (pid 1, one tid per site)."""
    sites = sorted({r.site for r in records if r.site})
    tids = {site: i + 1 for i, site in enumerate(sites)}
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "qt-negotiation (simulated time)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "(coordinator)"},
        },
    ]
    for site in sites:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tids[site],
                "args": {"name": site},
            }
        )
    for record in records:
        tid = tids.get(record.site, 0)
        args = dict(record.args or {})
        if record.site:
            args["site"] = record.site
        args["wall_ms"] = round(record.wall_duration * 1e3, 6)
        base = {
            "name": record.name,
            "cat": record.cat,
            "pid": 1,
            "tid": tid,
            "ts": record.sim_start * 1e6,
            "args": args,
        }
        if record.kind == "span":
            base["ph"] = "X"
            base["dur"] = max(0.0, record.sim_duration) * 1e6
        elif record.kind == "gauge":
            base["ph"] = "C"
            base["args"] = {"value": (record.args or {}).get("value", 0)}
        else:
            base["ph"] = "i"
            base["s"] = "t"
        events.append(base)
    return events


@contextmanager
def _open_text_write(path: str):
    """Open *path* for text writing; ``.gz`` paths are gzip-compressed.

    The gzip header is written with a zero mtime and no embedded
    filename, so compressed deterministic traces are byte-identical
    across runs, not merely equal after decompression.
    """
    path = str(path)
    if path.endswith(".gz"):
        with open(path, "wb") as raw:
            with gzip.GzipFile(
                fileobj=raw, mode="wb", mtime=0, filename=""
            ) as gz:
                with io.TextIOWrapper(gz, encoding="utf-8") as fh:
                    yield fh
    else:
        with open(path, "w") as fh:
            yield fh


def write_chrome_trace(records: Sequence[TraceRecord], path: str) -> None:
    payload = {
        "traceEvents": chrome_trace_events(records),
        "displayTimeUnit": "ms",
    }
    with _open_text_write(path) as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def jsonl_lines(
    records: Sequence[TraceRecord], deterministic_only: bool = True
) -> Iterable[str]:
    """Serialized lines for *records*.

    Deterministic mode (default) keeps only simulated-time fields and
    drops the ``parallel`` category, then re-sequences ids positionally
    — the ids, parents, and every remaining byte are then identical for
    serial and parallel runs of the same negotiation.
    """
    if deterministic_only:
        kept = [r for r in records if r.cat != CAT_PARALLEL]
        remap = {r.span_id: i for i, r in enumerate(kept)}
        for i, record in enumerate(kept):
            yield json.dumps(
                {
                    "seq": i,
                    "kind": record.kind,
                    "name": record.name,
                    "cat": record.cat,
                    "site": record.site,
                    "sim_start": record.sim_start,
                    "sim_end": record.sim_end,
                    "span_id": i,
                    "parent_id": remap.get(record.parent_id, NO_PARENT),
                    "args": record.args,
                },
                sort_keys=True,
            )
    else:
        for record in records:
            yield json.dumps(
                {
                    "seq": record.seq,
                    "kind": record.kind,
                    "name": record.name,
                    "cat": record.cat,
                    "site": record.site,
                    "sim_start": record.sim_start,
                    "sim_end": record.sim_end,
                    "span_id": record.span_id,
                    "parent_id": record.parent_id,
                    "args": record.args,
                    "wall_start": record.wall_start,
                    "wall_end": record.wall_end,
                },
                sort_keys=True,
            )


def write_jsonl(
    records: Sequence[TraceRecord],
    path_or_file: str | TextIO,
    deterministic_only: bool = True,
) -> None:
    if hasattr(path_or_file, "write"):
        for line in jsonl_lines(records, deterministic_only):
            path_or_file.write(line + "\n")
        return
    with _open_text_write(path_or_file) as fh:
        for line in jsonl_lines(records, deterministic_only):
            fh.write(line + "\n")


# ----------------------------------------------------------------------
# ASCII timeline
# ----------------------------------------------------------------------
def render_timeline(records: Sequence[TraceRecord], width: int = 64) -> str:
    """A terminal negotiation timeline over simulated time.

    One lane per site (plus a ``(coordinator)`` lane for unattributed
    spans), each showing where simulated busy intervals fall; a scale
    line marks negotiation-round starts with ``|``.
    """
    spans = [r for r in records if r.kind == "span"]
    if not spans:
        return "(empty trace: no spans recorded)"
    t0 = min(r.sim_start for r in spans)
    t1 = max(r.sim_end for r in spans)
    total = max(t1 - t0, 1e-12)

    def column(t: float) -> int:
        return min(width - 1, int((t - t0) / total * width))

    lanes: dict[str, list[str]] = {}
    for record in spans:
        lane = lanes.setdefault(record.site or "(coordinator)", [" "] * width)
        lo = column(record.sim_start)
        hi = max(lo, column(record.sim_end))
        for i in range(lo, hi + 1):
            lane[i] = "#" if lane[i] == " " else "%"

    scale = ["-"] * width
    rounds = [r for r in spans if r.name == "trade.round"]
    for record in rounds:
        scale[column(record.sim_start)] = "|"

    label_width = max(len(name) for name in lanes) if lanes else 0
    label_width = max(label_width, len("(coordinator)"))
    lines = [
        f"negotiation timeline — {total:.6f}s simulated "
        f"({len(rounds)} round(s), {len(spans)} spans)",
        f"{'':>{label_width}} +{''.join(scale)}+",
    ]
    ordered = sorted(name for name in lanes if name != "(coordinator)")
    if "(coordinator)" in lanes:
        ordered.insert(0, "(coordinator)")
    for name in ordered:
        lines.append(f"{name:>{label_width}} |{''.join(lanes[name])}|")
    lines.append(
        f"{'':>{label_width}} (#: one span, %: overlapping; |: round start)"
    )
    return "\n".join(lines)
