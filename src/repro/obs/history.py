"""Bench history: an append-only JSONL store + regression gates.

Every ``benchmarks/bench_*.py`` writer appends one row per run —
stamped with a common envelope (``schema_version``, ``git_sha``,
``generated_at``, host ``cpu_count``) plus the benchmark's headline
metrics — to ``benchmarks/results/bench_history.jsonl``.  The same
envelope stamps the ``BENCH_*.json`` files themselves, so any artifact
can be traced back to the commit and host that produced it.

``repro bench-check`` loads the store, takes the latest row per
benchmark, and applies the static regression gates below (the same
thresholds the writers enforce inline), optionally adding a relative
drift check against the previous row from a same-CPU-count host.  CI
runs it after the bench steps and fails the job on any violation.
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "DEFAULT_HISTORY_PATH",
    "run_envelope",
    "BenchHistory",
    "Gate",
    "DEFAULT_GATES",
    "check_gates",
    "check_drift",
    "render_check",
]

#: Bump when the envelope/row shape changes.
HISTORY_SCHEMA_VERSION = 1

#: Store location, relative to the repository root.
DEFAULT_HISTORY_PATH = "benchmarks/results/bench_history.jsonl"


def _git_sha() -> str | None:
    """The short HEAD sha, or ``None`` outside a git checkout.

    Never raises: a missing ``git`` binary, a non-repo working
    directory, or a hung subprocess all degrade to the ``GITHUB_SHA``
    environment fallback and then to ``None`` — bench artifacts stay
    writable from exported tarballs.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA", "")[:12] or None


def run_envelope() -> dict[str, Any]:
    """The common provenance stamp for bench artifacts and history rows."""
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "git_sha": _git_sha(),
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "cpu_count": os.cpu_count() or 1,
    }


class BenchHistory:
    """The append-only JSONL store of benchmark headline metrics."""

    def __init__(self, path: str | Path = DEFAULT_HISTORY_PATH):
        self.path = Path(path)

    def append(
        self,
        bench: str,
        metrics: dict[str, Any],
        envelope: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Append one run's row; returns the row written."""
        row = dict(envelope or run_envelope())
        row["bench"] = bench
        row["metrics"] = metrics
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
        return row

    def load(self) -> list[dict[str, Any]]:
        """All rows, oldest first (missing store = empty history)."""
        if not self.path.exists():
            return []
        rows = []
        with open(self.path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # a torn append must not poison the store
        return rows

    def latest(self) -> dict[str, dict[str, Any]]:
        """The most recent row per benchmark name."""
        latest: dict[str, dict[str, Any]] = {}
        for row in self.load():
            latest[row.get("bench", "?")] = row
        return latest

    def previous(
        self, bench: str, cpu_count: int | None = None
    ) -> dict[str, Any] | None:
        """The second-most-recent row for *bench* (same-CPU host when
        ``cpu_count`` is given) — the drift-check baseline."""
        rows = [r for r in self.load() if r.get("bench") == bench]
        if cpu_count is not None:
            rows = [r for r in rows if r.get("cpu_count") == cpu_count]
        return rows[-2] if len(rows) >= 2 else None


# ----------------------------------------------------------------------
_OPS: dict[str, Callable[[float, float], bool]] = {
    "lt": lambda v, b: v < b,
    "le": lambda v, b: v <= b,
    "gt": lambda v, b: v > b,
    "ge": lambda v, b: v >= b,
    "eq": lambda v, b: v == b,
}


@dataclass(frozen=True)
class Gate:
    """One static threshold on a benchmark's headline metric.

    ``when`` names a boolean metric that must be truthy for the gate to
    apply (e.g. the parallel speedup gate only binds on >=4-CPU hosts).
    """

    bench: str
    metric: str
    op: str
    bound: float
    when: str | None = None

    def describe(self) -> str:
        sign = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "=="}
        return f"{self.metric} {sign[self.op]} {self.bound:g}"


#: The same thresholds the bench writers enforce inline.
DEFAULT_GATES = (
    Gate("enumeration", "eight_join_speedup", "ge", 3.0),
    Gate("obs_overhead", "worst_null_overhead", "lt", 0.05),
    Gate("obs_overhead", "causal_overhead", "lt", 0.05),
    Gate("obs_overhead", "live_overhead", "lt", 0.10),
    Gate("parallel", "eight_join_speedup", "ge", 2.0,
         when="speedup_gate_enforced"),
    Gate("parallel", "twelve_join_buyer_speedup", "ge", 3.0,
         when="buyer_gate_enforced"),
    Gate("faults", "ef1_cost_stable", "eq", 1),
    Gate("serving", "all_sessions_completed", "eq", 1),
    Gate("mqo", "hit_rate_ratio", "ge", 5.0),
    Gate("mqo", "aggregate_cost_improved", "eq", 1),
)


def check_gates(
    latest: dict[str, dict[str, Any]],
    gates=DEFAULT_GATES,
) -> list[dict[str, Any]]:
    """Evaluate *gates* against the latest row per bench.

    Returns one verdict dict per gate: ``status`` is ``"ok"``,
    ``"FAIL"``, ``"skipped"`` (``when`` guard false), or ``"missing"``
    (no row / metric recorded yet — not a failure: a partial CI matrix
    only appends the benches it ran).
    """
    verdicts = []
    for gate in gates:
        row = latest.get(gate.bench)
        verdict = {
            "bench": gate.bench,
            "gate": gate.describe(),
            "value": None,
            "status": "missing",
        }
        if row is not None:
            metrics = row.get("metrics", {})
            value = metrics.get(gate.metric)
            verdict["value"] = value
            if gate.when is not None and not metrics.get(gate.when):
                verdict["status"] = "skipped"
            elif value is None:
                verdict["status"] = "missing"
            elif _OPS[gate.op](value, gate.bound):
                verdict["status"] = "ok"
            else:
                verdict["status"] = "FAIL"
        verdicts.append(verdict)
    return verdicts


def check_drift(
    history: BenchHistory,
    latest: dict[str, dict[str, Any]],
    regress_pct: float,
    metrics=(("enumeration", "eight_join_speedup"),
             ("parallel", "eight_join_speedup"),
             ("parallel", "twelve_join_buyer_speedup")),
) -> list[dict[str, Any]]:
    """Relative regression vs the previous same-CPU-host row.

    Higher-is-better metrics only: a drop of more than *regress_pct*
    (fractional, e.g. ``0.5`` = half) against the previous recorded
    value from a host with the same CPU count fails.  No comparable
    baseline -> skipped.
    """
    verdicts = []
    for bench, metric in metrics:
        row = latest.get(bench)
        verdict = {
            "bench": bench,
            "gate": f"{metric} drift <= {regress_pct:.0%}",
            "value": None,
            "status": "skipped",
        }
        if row is not None:
            value = row.get("metrics", {}).get(metric)
            baseline_row = history.previous(bench, row.get("cpu_count"))
            baseline = (
                baseline_row.get("metrics", {}).get(metric)
                if baseline_row is not None
                else None
            )
            if value is not None and baseline:
                drop = 1.0 - value / baseline
                verdict["value"] = round(drop, 4)
                verdict["status"] = "ok" if drop <= regress_pct else "FAIL"
        verdicts.append(verdict)
    return verdicts


def render_check(
    latest: dict[str, dict[str, Any]], verdicts: list[dict[str, Any]]
) -> str:
    """A terminal table of the latest rows and every gate verdict."""
    out = ["bench history check:"]
    for bench, row in sorted(latest.items()):
        out.append(
            f"  {bench}: sha={row.get('git_sha', '?')} "
            f"at={row.get('generated_at', '?')} "
            f"cpus={row.get('cpu_count', '?')}"
        )
    out.append("")
    width = max((len(v["bench"]) for v in verdicts), default=5)
    for verdict in verdicts:
        value = verdict["value"]
        shown = f"{value:.4g}" if isinstance(value, (int, float)) else "-"
        out.append(
            f"  {verdict['bench']:<{width}}  {verdict['gate']:<32} "
            f"value={shown:<10} {verdict['status']}"
        )
    return "\n".join(out)
