"""Critical-path analysis of a traced trading session.

Answers *where the simulated time went*: which seller, link, or armed
deadline bounded each negotiation round, and how the session's
end-to-end latency decomposes into named phases —

    ``rfb_transit``      RFB transit over the bottleneck link
    ``seller_compute``   seller-side pricing/optimization (queue + work)
    ``offer_transit``    reply transit back to the buyer
    ``deadline_slack``   waiting on a round deadline (stragglers,
                         drops) and retry-backoff waits
    ``buyer_dp``         buyer-side plan-generation DP
    ``award``            winner/loser notification transit
    ``renegotiation``    VOID notices and plan reassembly after crashes

The analysis is a **deterministic forward replay** of the causal DAG
(:mod:`repro.obs.causal`): it reconstructs the session timeline from
deterministic quantities only — per-delivery transit delays (``lat``),
booked compute seconds (``work``), and armed round deadlines — never
from recorded timestamps.  Under the simulator the replay reproduces
the simulated clock exactly (tests assert the reconstructed total
equals the traced ``trade.optimize`` duration); under the broker's
wall-clock :class:`~repro.net.clock.AsyncClock` the recorded times are
non-deterministic wall times, but the replay still yields the
*simulated-cost-model* critical path — byte-identical to the one the
simulator produces for the same seed, which is what makes it a stable
serving-observability surface.

Phase attribution follows the *binding chain*: within each round, the
chain of causally linked events that determined when the round closed
(the last counted reply, or the deadline timer).  The per-round phase
latencies therefore tile the round's duration, and rounds plus award
and renegotiation segments tile the session — the reconciliation
property the tests pin down.
"""

from __future__ import annotations

import heapq
import json
import math
from typing import Any, Iterable, Sequence

from repro.obs.causal import CausalDag, causal_events
from repro.obs.tracer import NO_PARENT, TraceRecord

__all__ = ["CriticalPath", "CRITPATH_SCHEMA_VERSION", "PHASES"]

#: Bump when the critical-path JSON shape changes.
CRITPATH_SCHEMA_VERSION = 1

#: Every phase the replay can attribute simulated time to, in render
#: order.  The output dict always carries all of them (zero-filled), so
#: its shape never depends on which phases a particular run exercised.
PHASES = (
    "rfb_transit",
    "seller_compute",
    "offer_transit",
    "deadline_slack",
    "buyer_dp",
    "award",
    "renegotiation",
)

#: Reply kinds the buyer counts toward a round's close (the buyer
#: handler ignores everything else without marking the seller as
#: having responded).
_REPLY_KINDS = frozenset(("offer", "no_offer"))


class _Replay:
    """Mutable replay state threaded through one session reconstruction."""

    def __init__(self, dag: CausalDag) -> None:
        self.dag = dag
        self.clock = 0.0
        self.busy: dict[str, float] = {}
        self.phases: dict[str, float] = {phase: 0.0 for phase in PHASES}
        self.segments: list[dict] = []
        self.sellers: dict[str, float] = {}
        self.trade_index = 0
        self.round_number: int | None = None
        # Consumption pointers over causally rooted message nodes.
        nodes = dag.nodes
        self.rfbs = [
            nodes[mid]
            for mid in sorted(nodes)
            if nodes[mid]["kind"] == "rfb"
        ]
        self.notices = [
            nodes[mid]
            for mid in sorted(nodes)
            if nodes[mid]["kind"] in ("award", "reject", "void")
            and nodes[mid]["parent"] == NO_PARENT
        ]
        self._rfb_cursor = 0
        self._notice_cursor = 0
        self._compute_cursor: dict[int, int] = {}
        self._reply_cursor: dict[int, int] = {}

    # -- consumption ---------------------------------------------------
    def take_rfbs(self, count: int) -> list[dict]:
        chunk = self.rfbs[self._rfb_cursor : self._rfb_cursor + count]
        self._rfb_cursor += len(chunk)
        return chunk

    def next_rfb_mid(self) -> int | None:
        """The id of the next unconsumed RFB root, if any — the
        structural boundary between one trade's notices and the next
        sub-trade's traffic."""
        if self._rfb_cursor < len(self.rfbs):
            return self.rfbs[self._rfb_cursor]["mid"]
        return None

    def take_notices(
        self, kinds: tuple[str, ...], before: int | None = None
    ) -> list[dict]:
        taken = []
        while self._notice_cursor < len(self.notices):
            node = self.notices[self._notice_cursor]
            if node["kind"] not in kinds:
                break
            if before is not None and node["mid"] >= before:
                break  # belongs to a later (sub-)trade's award step
            taken.append(node)
            self._notice_cursor += 1
        return taken

    def next_compute(self, mid: int, site: str) -> dict | None:
        """The next booked compute for delivery *mid* (copy order)."""
        computes = self.dag.nodes[mid]["computes"]
        index = self._compute_cursor.get(mid, 0)
        while index < len(computes) and computes[index]["site"] != site:
            index += 1  # defensive: computes are keyed to the recipient
        if index >= len(computes):
            return None
        self._compute_cursor[mid] = index + 1
        return computes[index]

    def next_reply(self, mid: int) -> dict | None:
        """The next reply message sent from delivery *mid* (id order)."""
        replies = self.dag.replies(mid)
        index = self._reply_cursor.get(mid, 0)
        if index >= len(replies):
            return None
        self._reply_cursor[mid] = index + 1
        return replies[index]

    # -- attribution ---------------------------------------------------
    def attribute(
        self,
        phase: str,
        seconds: float,
        site: str | None = None,
        link: str | None = None,
        mid: int | None = None,
    ) -> None:
        if seconds <= 0.0:
            return
        self.phases[phase] += seconds
        self.segments.append(
            {
                "phase": phase,
                "seconds": seconds,
                "trade": self.trade_index,
                "round": self.round_number,
                "site": site,
                "link": link,
                "mid": mid,
            }
        )
        if phase == "seller_compute" and site is not None:
            self.sellers[site] = self.sellers.get(site, 0.0) + seconds


def _skeleton(events: Iterable[tuple[str, str, str, dict]]) -> list[tuple]:
    """Driver-thread session structure, in record order.

    Only rows emitted sequentially by the buyer's driver thread are
    consulted (span rows — appended at *open* time — and buyer.compute
    intervals); rows emitted from message handlers, whose record
    interleaving may differ under wall-clock serving, are reached
    through the causal DAG instead.  Returns a timeline of
    ``("trade", trade)`` / ``("reassembly", {site, work})`` entries.
    """
    timeline: list[tuple] = []
    current_trade: dict | None = None
    current_round: dict | None = None
    for kind, name, site, args in events:
        if kind != "span":
            continue
        if name == "trade.optimize":
            current_trade = {
                "query": args.get("query"),
                "rounds": [],
                "award": False,
            }
            current_round = None
            timeline.append(("trade", current_trade))
        elif name == "trade.round":
            if current_trade is None:
                continue
            current_round = {
                "round": args.get("round"),
                "fanouts": [],
                "dp": [],
            }
            current_trade["rounds"].append(current_round)
        elif name == "rfb.fanout":
            if current_round is not None:
                current_round["fanouts"].append(
                    {
                        "attempt": args.get("attempt", 0),
                        "sellers": args.get("sellers", 0),
                        "deadline": args.get("deadline"),
                    }
                )
        elif name == "buyer.compute":
            entry = {
                "site": site,
                "work": args.get("work", 0.0),
                "enumerated": args.get("enumerated"),
            }
            if args.get("reassembly"):
                timeline.append(("reassembly", entry))
            elif current_round is not None:
                current_round["dp"].append(entry)
        elif name == "trade.award":
            if current_trade is not None:
                current_trade["award"] = True
    return timeline


def _solicits(fanouts: Sequence[dict]) -> list[list[dict]]:
    """Group a round's fanout waves into solicits.

    A wave with ``attempt == 0`` opens a new solicit (bargaining runs
    several bidding solicits per trading round); higher attempts are
    retry re-issues of the current one.
    """
    groups: list[list[dict]] = []
    for wave in fanouts:
        if wave["attempt"] == 0 or not groups:
            groups.append([wave])
        else:
            groups[-1].append(wave)
    return groups


def _replay_solicit(state: _Replay, waves: list[dict]) -> dict:
    """Deterministic mini-simulation of one solicit (all retry waves).

    Mirrors :class:`~repro.trading.protocols.BiddingProtocol` exactly:
    the deadline timer is armed before the fanout (so it wins seq
    ties), replies count once per seller, the round closes early when
    every contacted seller answered, fires its deadline otherwise, and
    late deliveries still drain — extending the quiesce time — after
    the close.  Returns the solicit's bottleneck description.
    """
    start = state.clock
    heap: list[tuple] = []
    seq = 0
    expected: set[str] = set()
    responded: set[str] = set()
    closed = False
    timeouts = 0
    issued = 0
    active_timer: list | None = None  # [cancelled?]
    last_counted: dict | None = None  # binding reply chain
    last_event: dict | None = None    # the quiesce event
    quiesce = start

    def push(when: float, typ: str, data) -> None:
        nonlocal seq
        heapq.heappush(heap, (when, seq, typ, data))
        seq += 1

    def issue(depart: float) -> None:
        nonlocal issued, active_timer
        wave = waves[issued]
        issued += 1
        # The protocol arms the deadline timer *before* sending, so on
        # an exact time tie the timer fires first (lower seq).
        if wave["deadline"] is not None:
            active_timer = [False]
            push(depart + wave["deadline"], "timer", active_timer)
        for rfb in state.take_rfbs(wave["sellers"]):
            if rfb["dst"]:
                expected.add(rfb["dst"])
            for delivery in rfb["deliveries"]:
                push(depart + delivery["lat"], "rfb", (rfb, depart))

    issue(start)
    while heap:
        when, _seq, typ, data = heapq.heappop(heap)
        if typ == "timer":
            if data[0]:
                continue  # cancelled timers never advance the clock
            quiesce = max(quiesce, when)
            timeouts += 1
            if not responded and issued < len(waves):
                # All sellers silent: the traced retry re-issue.
                issue(when)
                last_event = {"typ": "timer", "when": when}
                continue
            closed = True
            active_timer = None
            last_event = {"typ": "timer", "when": when}
        elif typ == "rfb":
            quiesce = max(quiesce, when)
            rfb, depart = data
            site = rfb["dst"] or ""
            compute = state.next_compute(rfb["mid"], site)
            if compute is not None:
                begin = max(when, state.busy.get(site, 0.0))
                done = begin + compute["work"]
                state.busy[site] = done
            else:
                done = when
            last_event = {
                "typ": "rfb", "when": when, "rfb": rfb, "depart": depart,
            }
            reply = state.next_reply(rfb["mid"])
            if reply is not None:
                for delivery in reply["deliveries"]:
                    push(
                        done + delivery["lat"],
                        "reply",
                        {
                            "rfb": rfb,
                            "reply": reply,
                            "depart": depart,
                            "arrival": when,
                            "done": done,
                            "reply_depart": done,
                        },
                    )
        else:  # reply delivery at the buyer
            quiesce = max(quiesce, when)
            chain = dict(data)
            chain["when"] = when
            last_event = {"typ": "reply", "when": when, "chain": chain}
            if closed:
                continue  # round already closed; late copy drains only
            if chain["reply"]["kind"] not in _REPLY_KINDS:
                continue
            responded.add(chain["rfb"]["dst"] or "")
            last_counted = chain
            if active_timer is not None and responded >= expected:
                closed = True
                active_timer[0] = True  # cancel: everyone answered
                active_timer = None

    # -- attribute the binding chain -----------------------------------
    state.clock = quiesce
    bottleneck: dict[str, Any] = {
        "kind": "idle", "seller": None, "link": None,
        "rfb_mid": None, "reply_mid": None,
        "compute": None, "slack": None,
        "waves": issued, "timeouts": timeouts,
        "responded": len(responded), "expected": len(expected),
    }
    if last_event is None:
        return bottleneck

    def attribute_chain(chain: dict) -> None:
        rfb, reply = chain["rfb"], chain["reply"]
        seller = rfb["dst"] or ""
        state.attribute(
            "deadline_slack", chain["depart"] - start,
            site=rfb["src"],
        )
        state.attribute(
            "rfb_transit", chain["arrival"] - chain["depart"],
            link=f"{rfb['src']}->{seller}", mid=rfb["mid"],
        )
        state.attribute(
            "seller_compute", chain["done"] - chain["arrival"],
            site=seller, mid=rfb["mid"],
        )
        state.attribute(
            "offer_transit", chain["when"] - chain["reply_depart"],
            link=f"{seller}->{rfb['src']}", mid=reply["mid"],
        )
        bottleneck.update(
            kind="response", seller=seller,
            link=f"{rfb['src']}->{seller}",
            rfb_mid=rfb["mid"], reply_mid=reply["mid"],
            compute=chain["done"] - chain["arrival"],
        )

    if last_event["typ"] == "reply":
        attribute_chain(last_event["chain"])
    elif last_event["typ"] == "rfb":
        # The last thing that happened was an RFB landing whose reply
        # never made it back (dropped) — transit bounds the solicit.
        rfb = last_event["rfb"]
        state.attribute(
            "deadline_slack", last_event["depart"] - start,
            site=rfb["src"],
        )
        state.attribute(
            "rfb_transit", last_event["when"] - last_event["depart"],
            link=f"{rfb['src']}->{rfb['dst']}", mid=rfb["mid"],
        )
        bottleneck.update(
            kind="response", seller=rfb["dst"],
            link=f"{rfb['src']}->{rfb['dst']}", rfb_mid=rfb["mid"],
        )
    else:  # deadline fire bounded the solicit
        fire = last_event["when"]
        if last_counted is not None:
            attribute_chain(last_counted)
            slack = fire - last_counted["when"]
        else:
            slack = fire - start
        state.attribute("deadline_slack", slack)
        bottleneck.update(kind="deadline", slack=slack)
        if last_counted is None:
            bottleneck["kind"] = "silent"
    return bottleneck


class CriticalPath:
    """Reconstructed critical path of one traced session."""

    def __init__(
        self,
        buyer: str | None,
        total: float,
        phases: dict[str, float],
        trades: list[dict],
        segments: list[dict],
        sellers: dict[str, float],
    ) -> None:
        self.buyer = buyer
        self.total = total
        self.phases = phases
        self.trades = trades
        self.segments = segments
        self.sellers = sellers

    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls, records: Sequence[TraceRecord]
    ) -> "CriticalPath | None":
        return cls._build(
            CausalDag.from_records(records),
            _skeleton(causal_events(records=records)),
        )

    @classmethod
    def from_rows(cls, rows: Sequence[dict]) -> "CriticalPath | None":
        rows = list(rows)
        return cls._build(
            CausalDag.from_rows(rows),
            _skeleton(causal_events(rows=rows)),
        )

    # ------------------------------------------------------------------
    @classmethod
    def _build(
        cls, dag: CausalDag, timeline: list[tuple]
    ) -> "CriticalPath | None":
        if not any(entry[0] == "trade" for entry in timeline):
            return None  # not a trading trace (baseline optimizers etc.)
        state = _Replay(dag)
        buyer = None
        trades_out: list[dict] = []

        def replay_notices(kinds: tuple[str, ...], phase: str) -> None:
            notices = state.take_notices(kinds, before=state.next_rfb_mid())
            if not notices:
                return
            depart = state.clock
            top: tuple[float, int] | None = None
            binding: dict | None = None
            for node in notices:
                for delivery in node["deliveries"]:
                    arrival = depart + delivery["lat"]
                    key = (arrival, node["mid"])
                    if top is None or key > top:
                        top = key
                        binding = node
            if top is None:
                return  # every notice dropped: no clock advance
            state.clock = top[0]
            state.attribute(
                phase,
                state.clock - depart,
                link=(
                    f"{binding['src']}->{binding['dst']}"
                    if binding is not None
                    else None
                ),
                mid=binding["mid"] if binding is not None else None,
            )

        for entry_kind, entry in timeline:
            # VOID notices precede the renegotiation's sub-trades.
            replay_notices(("void",), "renegotiation")
            if entry_kind == "reassembly":
                state.round_number = None
                site = entry["site"] or ""
                begin = max(state.clock, state.busy.get(site, 0.0))
                done = begin + entry["work"]
                state.busy[site] = done
                seconds = done - state.clock
                state.clock = done
                state.attribute("renegotiation", seconds, site=site)
                continue
            state.trade_index += 1
            trade_start = state.clock
            rounds_out: list[dict] = []
            for round_spec in entry["rounds"]:
                state.round_number = round_spec["round"]
                round_start = state.clock
                phases_before = dict(state.phases)
                bottleneck: dict | None = None
                waves = timeouts = 0
                for solicit in _solicits(round_spec["fanouts"]):
                    if buyer is None and state.rfbs:
                        buyer = state.rfbs[0]["src"]
                    bottleneck = _replay_solicit(state, solicit)
                    waves += bottleneck.pop("waves")
                    timeouts += bottleneck.pop("timeouts")
                for dp in round_spec["dp"]:
                    site = dp["site"] or ""
                    begin = max(state.clock, state.busy.get(site, 0.0))
                    done = begin + dp["work"]
                    state.busy[site] = done
                    seconds = done - state.clock
                    state.clock = done
                    state.attribute("buyer_dp", seconds, site=site)
                rounds_out.append(
                    {
                        "round": round_spec["round"],
                        "start": round_start,
                        "total": state.clock - round_start,
                        "phases": {
                            phase: state.phases[phase]
                            - phases_before.get(phase, 0.0)
                            for phase in PHASES
                        },
                        "waves": waves,
                        "timeouts": timeouts,
                        "bottleneck": bottleneck,
                    }
                )
            state.round_number = None
            award_start = state.clock
            if entry["award"]:
                replay_notices(("award", "reject"), "award")
            trades_out.append(
                {
                    "trade": state.trade_index,
                    "query": entry["query"],
                    "start": trade_start,
                    "total": state.clock - trade_start,
                    "rounds": rounds_out,
                    "award": state.clock - award_start,
                }
            )
        replay_notices(("void",), "renegotiation")

        segments = sorted(
            state.segments,
            key=lambda s: (
                -s["seconds"],
                s["trade"],
                s["round"] if s["round"] is not None else -1,
                PHASES.index(s["phase"]),
                s["mid"] if s["mid"] is not None else -1,
            ),
        )
        sellers = {
            site: state.sellers[site] for site in sorted(state.sellers)
        }
        return cls(
            buyer=buyer,
            total=state.clock,
            phases=dict(state.phases),
            trades=trades_out,
            segments=segments,
            sellers=sellers,
        )

    # ------------------------------------------------------------------
    def reconciles(self, rel_tol: float = 1e-9) -> bool:
        """Whether phases tile rounds and rounds tile the session."""
        attributed = sum(self.phases.values())
        if not math.isclose(
            attributed, self.total, rel_tol=rel_tol, abs_tol=1e-12
        ):
            return False
        for trade in self.trades:
            for round_out in trade["rounds"]:
                if not math.isclose(
                    sum(round_out["phases"].values()),
                    round_out["total"],
                    rel_tol=rel_tol,
                    abs_tol=1e-12,
                ):
                    return False
        return True

    # ------------------------------------------------------------------
    def to_dict(self, top: int | None = None) -> dict[str, Any]:
        """Plain-data form; JSON of this is the byte-identity surface."""
        segments = self.segments if top is None else self.segments[:top]
        return {
            "schema_version": CRITPATH_SCHEMA_VERSION,
            "buyer": self.buyer,
            "total": self.total,
            "phases": {phase: self.phases[phase] for phase in PHASES},
            "trades": self.trades,
            "segments": segments,
            "sellers": self.sellers,
            "summary": {
                "trades": len(self.trades),
                "rounds": sum(len(t["rounds"]) for t in self.trades),
                "segments": len(self.segments),
                "timeouts": sum(
                    r["timeouts"] for t in self.trades for r in t["rounds"]
                ),
            },
        }

    def to_json(self, top: int | None = None) -> str:
        return json.dumps(self.to_dict(top=top), sort_keys=True)

    # ------------------------------------------------------------------
    def render(self, top: int = 8) -> str:
        lines = [
            f"critical path: {self.total:.6f}s simulated across "
            f"{len(self.trades)} trade(s), "
            f"{sum(len(t['rounds']) for t in self.trades)} round(s)",
            "",
            "phase totals (critical-path attribution):",
        ]
        for phase in PHASES:
            seconds = self.phases[phase]
            share = seconds / self.total * 100.0 if self.total else 0.0
            lines.append(f"  {phase:<16} {seconds:>12.6f}s  {share:5.1f}%")
        lines.append("")
        lines.append("round bottlenecks:")
        for trade in self.trades:
            for round_out in trade["rounds"]:
                b = round_out["bottleneck"] or {}
                if b.get("kind") == "response":
                    detail = (
                        f"seller {b.get('seller')} "
                        f"(rfb mid {b.get('rfb_mid')}"
                        + (
                            f" -> reply mid {b.get('reply_mid')}"
                            if b.get("reply_mid") is not None
                            else ", reply lost"
                        )
                        + ")"
                    )
                    if b.get("compute") is not None:
                        detail += f", compute {b['compute']:.6f}s"
                elif b.get("kind") == "deadline":
                    detail = (
                        f"deadline ({b.get('responded')}/"
                        f"{b.get('expected')} responded, "
                        f"slack {b.get('slack', 0.0):.6f}s)"
                    )
                elif b.get("kind") == "silent":
                    detail = (
                        f"all sellers silent "
                        f"({round_out['timeouts']} timeout(s))"
                    )
                else:
                    detail = "idle"
                lines.append(
                    f"  trade {trade['trade']} round "
                    f"{round_out['round']}: "
                    f"{round_out['total']:.6f}s — {detail}"
                )
            if trade["award"]:
                lines.append(
                    f"  trade {trade['trade']} award: "
                    f"{trade['award']:.6f}s"
                )
        lines.append("")
        lines.append(f"top {min(top, len(self.segments))} segments:")
        for rank, segment in enumerate(self.segments[:top], start=1):
            where = segment["site"] or segment["link"] or "-"
            mid = (
                f" (mid {segment['mid']})"
                if segment["mid"] is not None
                else ""
            )
            round_label = (
                f" round {segment['round']}"
                if segment["round"] is not None
                else ""
            )
            lines.append(
                f"  {rank:>2}. {segment['phase']:<16} "
                f"{segment['seconds']:>12.6f}s  {where}"
                f"  trade {segment['trade']}{round_label}{mid}"
            )
        if self.sellers:
            lines.append("")
            lines.append("sellers on the critical path (compute seconds):")
            ranked = sorted(
                self.sellers.items(), key=lambda kv: (-kv[1], kv[0])
            )
            for site, seconds in ranked:
                lines.append(f"  {site:<20} {seconds:>12.6f}s")
        return "\n".join(lines)
