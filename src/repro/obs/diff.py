"""Structural trace diffing: pinpoint *where* two runs diverge.

The byte-equivalence suites (serial vs parallel, plain vs null-fault)
compare whole outputs; when they fail, the interesting question is the
*first* record where the deterministic streams part ways — everything
after it is usually an avalanche.  :func:`diff_rows` canonicalizes each
trace row to its deterministic fields, walks the two streams in
lock-step, and reports the first divergent index with surrounding
context and a per-field delta; :func:`diff_json` does the same for
nested structures (ledgers, reports).

Used by ``repro diff-trace A B`` (exit 0 when identical, 1 when
divergent) and wired into ``benchmarks/test_ep_equivalence.py`` /
``test_ef_equivalence.py`` so a failing equivalence assert names the
divergence site instead of dumping two blobs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.export import jsonl_lines
from repro.obs.tracer import TraceRecord

__all__ = ["TraceDiff", "diff_rows", "diff_records", "diff_json"]

#: Row fields that must match between deterministic runs (wall-clock
#: fields and exporter-assigned ids are excluded on purpose).
DETERMINISTIC_FIELDS = (
    "kind", "name", "cat", "site", "sim_start", "sim_end", "args",
)


def _canonical(row: dict) -> str:
    return json.dumps(
        {f: row.get(f) for f in DETERMINISTIC_FIELDS}, sort_keys=True
    )


@dataclass
class TraceDiff:
    """The outcome of one lock-step trace comparison."""

    identical: bool
    len_a: int
    len_b: int
    index: int | None = None          # first divergent record
    a: str | None = None              # canonical a[index] (None = ended)
    b: str | None = None
    fields: list[dict] = field(default_factory=list)
    context: list[tuple[int, str]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "identical": self.identical,
            "len_a": self.len_a,
            "len_b": self.len_b,
            "index": self.index,
            "a": self.a,
            "b": self.b,
            "fields": self.fields,
            "context": [list(pair) for pair in self.context],
        }

    def render(self) -> str:
        if self.identical:
            return f"traces identical ({self.len_a} deterministic records)"
        out = [
            f"traces diverge at record {self.index} "
            f"(a: {self.len_a} records, b: {self.len_b} records)"
        ]
        if self.context:
            out.append("  shared prefix ends with:")
            for i, line in self.context:
                out.append(f"    [{i}] {line}")
        out.append(f"  a[{self.index}]: {self.a or '(end of trace)'}")
        out.append(f"  b[{self.index}]: {self.b or '(end of trace)'}")
        for delta in self.fields:
            out.append(
                f"  field {delta['path']}: {delta['a']!r} != {delta['b']!r}"
            )
        return "\n".join(out)


# ----------------------------------------------------------------------
def diff_rows(
    rows_a: Sequence[dict], rows_b: Sequence[dict], context: int = 3
) -> TraceDiff:
    """First divergence between two loaded traces (see ``load_trace``)."""
    canon_a = [_canonical(row) for row in rows_a]
    canon_b = [_canonical(row) for row in rows_b]
    limit = min(len(canon_a), len(canon_b))
    index = next(
        (i for i in range(limit) if canon_a[i] != canon_b[i]), None
    )
    if index is None:
        if len(canon_a) == len(canon_b):
            return TraceDiff(True, len(canon_a), len(canon_b))
        index = limit  # one trace is a strict prefix of the other
    diff = TraceDiff(
        identical=False,
        len_a=len(canon_a),
        len_b=len(canon_b),
        index=index,
        a=canon_a[index] if index < len(canon_a) else None,
        b=canon_b[index] if index < len(canon_b) else None,
        context=[
            (i, canon_a[i]) for i in range(max(0, index - context), index)
        ],
    )
    if index < limit:
        path = diff_json(
            json.loads(canon_a[index]), json.loads(canon_b[index])
        )
        if path is not None:
            diff.fields.append(
                {"path": path[0], "a": path[1], "b": path[2]}
            )
    return diff


def diff_records(
    records_a: Sequence[TraceRecord],
    records_b: Sequence[TraceRecord],
    context: int = 3,
) -> TraceDiff:
    """Diff two live record lists through the deterministic exporter."""
    rows_a = [json.loads(line) for line in jsonl_lines(records_a)]
    rows_b = [json.loads(line) for line in jsonl_lines(records_b)]
    return diff_rows(rows_a, rows_b, context=context)


# ----------------------------------------------------------------------
def diff_json(
    a: Any, b: Any, path: str = "$"
) -> tuple[str, Any, Any] | None:
    """First divergent path between two nested JSON-ish values.

    Returns ``(path, a_value, b_value)`` or ``None`` when equal.  Dicts
    are compared by sorted key, lists positionally — mirroring the
    deterministic serialization order.
    """
    if type(a) is not type(b) and not (
        isinstance(a, (int, float)) and isinstance(b, (int, float))
    ):
        return path, a, b
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return f"{path}.{key}", None, b[key]
            if key not in b:
                return f"{path}.{key}", a[key], None
            found = diff_json(a[key], b[key], f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(a, (list, tuple)):
        for i in range(min(len(a), len(b))):
            found = diff_json(a[i], b[i], f"{path}[{i}]")
            if found is not None:
                return found
        if len(a) != len(b):
            i = min(len(a), len(b))
            return (
                f"{path}[{i}]",
                a[i] if i < len(a) else None,
                b[i] if i < len(b) else None,
            )
        return None
    if a != b:
        return path, a, b
    return None
