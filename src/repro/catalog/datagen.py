"""Synthetic federation generator.

Builds the kind of world the paper simulates: *n* autonomous nodes, a set
of relations horizontally partitioned into fragments, each fragment
replicated on a configurable number of nodes.  The generator is fully
deterministic given a seed, so every experiment in the benchmark harness
is reproducible.

The generated schema is join-friendly: every relation ``R<i>`` carries

* ``id``   — primary key (0 .. rows-1),
* ``ref0`` / ``ref1`` — foreign keys into the ``id`` domain of other
  relations, enabling chain and star join queries,
* ``part`` — the partitioning attribute (0 .. fragments-1),
* ``cat``  — a low-cardinality category attribute for selections,
* ``val``  — a float payload for aggregates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence

from repro.catalog.catalog import Catalog, NodeId
from repro.sql.schema import PartitionScheme, Relation

__all__ = ["FederationConfig", "RelationSpec", "build_federation"]

CATEGORY_CARDINALITY = 10


@dataclass(frozen=True)
class RelationSpec:
    """Shape of one generated relation."""

    name: str
    rows: int = 10_000
    fragments: int = 4
    partition_style: str = "list"  # "list" (on part) or "range" (on id)

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError("rows must be positive")
        if self.fragments <= 0:
            raise ValueError("fragments must be positive")
        if self.partition_style not in ("list", "range"):
            raise ValueError("partition_style must be 'list' or 'range'")


@dataclass(frozen=True)
class FederationConfig:
    """Parameters of a synthetic federation."""

    nodes: int = 10
    relations: tuple[RelationSpec, ...] = ()
    replicas: int = 1
    seed: int = 0
    include_client: bool = True

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ValueError("nodes must be positive")
        if self.replicas <= 0:
            raise ValueError("replicas must be positive")
        if self.replicas > self.nodes:
            raise ValueError("cannot replicate on more nodes than exist")

    @staticmethod
    def uniform(
        nodes: int,
        n_relations: int,
        rows: int = 10_000,
        fragments: int = 4,
        replicas: int = 1,
        seed: int = 0,
        partition_style: str = "list",
    ) -> "FederationConfig":
        """A federation of identical relations ``R0 .. R<n-1>``."""
        specs = tuple(
            RelationSpec(
                name=f"R{i}",
                rows=rows,
                fragments=fragments,
                partition_style=partition_style,
            )
            for i in range(n_relations)
        )
        return FederationConfig(
            nodes=nodes, relations=specs, replicas=replicas, seed=seed
        )


def _relation_schema(name: str) -> Relation:
    return Relation.of(
        name,
        "id",
        "ref0",
        "ref1",
        "part",
        "cat",
        ("val", "float"),
    )


def _partition_scheme(spec: RelationSpec) -> PartitionScheme:
    per_fragment = spec.rows // spec.fragments
    counts = [per_fragment] * spec.fragments
    counts[-1] += spec.rows - per_fragment * spec.fragments
    if spec.fragments == 1:
        scheme = PartitionScheme.single(spec.name, spec.rows)
        return scheme
    if spec.partition_style == "list":
        groups = [[i] for i in range(spec.fragments)]
        return PartitionScheme.by_list(spec.name, "part", groups, counts)
    boundaries = [
        per_fragment * i for i in range(1, spec.fragments)
    ]
    return PartitionScheme.by_range(spec.name, "id", boundaries, counts)


def build_federation(config: FederationConfig) -> tuple[Catalog, list[NodeId]]:
    """Build the catalog and the node list for *config*.

    Fragments are dealt across nodes round-robin (so load is even) with
    ``config.replicas`` replicas each placed on distinct nodes chosen
    pseudo-randomly.  When ``include_client`` is set, an extra node
    ``client`` that stores no data is appended — it plays the paper's
    Athens role (a pure buyer).
    """
    if not config.relations:
        raise ValueError("federation needs at least one relation")
    rng = random.Random(config.seed)
    catalog = Catalog()
    nodes: list[NodeId] = [f"node{i}" for i in range(config.nodes)]
    for node in nodes:
        catalog.add_node(node)

    cursor = 0
    for spec in config.relations:
        catalog.add_relation(_relation_schema(spec.name), _partition_scheme(spec))
        for fragment_id in range(len(catalog.scheme(spec.name).fragments)):
            primary = nodes[cursor % len(nodes)]
            cursor += 1
            replicas = {primary}
            while len(replicas) < config.replicas:
                replicas.add(rng.choice(nodes))
            catalog.place(spec.name, fragment_id, replicas)

    if config.include_client:
        catalog.add_node("client")
        nodes.append("client")
    catalog.validate()
    return catalog, nodes
