"""Catalogs: who stores which horizontal fragment, and table statistics.

The *global* catalog is the simulator's ground truth about data placement
(fragments, replicas, materialized views per node).  In the QT world no
single node is assumed to know it — buyers discover placement implicitly
through bidding — but the traditional baselines (distributed DP / IDP)
are given the full catalog, exactly as classical optimizers require.
"""

from repro.catalog.catalog import Catalog, LocalCatalog
from repro.catalog.datagen import (
    FederationConfig,
    build_federation,
)

__all__ = [
    "Catalog",
    "LocalCatalog",
    "FederationConfig",
    "build_federation",
]
