"""Global and per-node catalogs for a federation of autonomous DBMSs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.sql.schema import Fragment, PartitionScheme, Relation
from repro.sql.views import MaterializedView

__all__ = ["Catalog", "LocalCatalog"]

NodeId = str


@dataclass(frozen=True)
class LocalCatalog:
    """What one node knows about its *own* data.

    This is the only catalog a QT seller consults: the shared schemas and
    partitioning scheme definitions (the federation's data dictionary),
    the fragments physically present at the node, and its local
    materialized views.
    """

    node: NodeId
    schemas: Mapping[str, Relation]
    schemes: Mapping[str, PartitionScheme]
    held: Mapping[str, frozenset[int]]
    views: tuple[MaterializedView, ...] = ()

    def holds(self, relation: str, fragment_id: int | None = None) -> bool:
        fragments = self.held.get(relation, frozenset())
        if fragment_id is None:
            return bool(fragments)
        return fragment_id in fragments

    def held_fragments(self, relation: str) -> tuple[Fragment, ...]:
        scheme = self.schemes[relation]
        return tuple(
            scheme.fragment(fid)
            for fid in sorted(self.held.get(relation, frozenset()))
        )

    def local_rows(self, relation: str) -> int:
        return sum(f.row_count for f in self.held_fragments(relation))


class Catalog:
    """The federation's ground-truth catalog.

    Tracks schemas, partitioning schemes, fragment placement (with
    replication), and per-node materialized views.  Provides
    :meth:`local` projections for sellers and full visibility for the
    traditional-optimizer baselines.
    """

    def __init__(self) -> None:
        self._schemas: dict[str, Relation] = {}
        self._schemes: dict[str, PartitionScheme] = {}
        # (relation, fragment_id) -> set of nodes holding a replica
        self._placement: dict[tuple[str, int], set[NodeId]] = {}
        self._views: dict[NodeId, list[MaterializedView]] = {}
        self._nodes: set[NodeId] = set()

    # -- construction ----------------------------------------------------
    def add_relation(
        self, relation: Relation, scheme: PartitionScheme | None = None
    ) -> None:
        """Register a relation; defaults to an unpartitioned scheme."""
        if relation.name in self._schemas:
            raise ValueError(f"relation {relation.name!r} already registered")
        if scheme is None:
            scheme = PartitionScheme.single(relation.name)
        if scheme.relation != relation.name:
            raise ValueError("scheme/relation name mismatch")
        if scheme.attribute is not None and not relation.has_attribute(
            scheme.attribute
        ):
            raise ValueError(
                f"partitioning attribute {scheme.attribute!r} "
                f"not in {relation.name}"
            )
        self._schemas[relation.name] = relation
        self._schemes[relation.name] = scheme
        for fragment in scheme.fragments:
            self._placement.setdefault(fragment.key, set())

    def add_node(self, node: NodeId) -> None:
        self._nodes.add(node)

    def place(
        self, relation: str, fragment_id: int, nodes: NodeId | Iterable[NodeId]
    ) -> None:
        """Record that *nodes* hold a replica of the given fragment."""
        key = (relation, fragment_id)
        if key not in self._placement:
            raise KeyError(f"unknown fragment {key}")
        if isinstance(nodes, str):
            nodes = (nodes,)
        for node in nodes:
            self._nodes.add(node)
            self._placement[key].add(node)

    def add_view(self, node: NodeId, view: MaterializedView) -> None:
        self._nodes.add(node)
        self._views.setdefault(node, []).append(view)

    # -- validation --------------------------------------------------------
    def validate(self) -> None:
        """Check that every fragment is placed on at least one node."""
        missing = [key for key, nodes in self._placement.items() if not nodes]
        if missing:
            raise ValueError(f"unplaced fragments: {missing}")

    # -- read access ---------------------------------------------------------
    @property
    def schemas(self) -> Mapping[str, Relation]:
        return dict(self._schemas)

    @property
    def schemes(self) -> Mapping[str, PartitionScheme]:
        return dict(self._schemes)

    @property
    def nodes(self) -> frozenset[NodeId]:
        return frozenset(self._nodes)

    def relation(self, name: str) -> Relation:
        return self._schemas[name]

    def scheme(self, name: str) -> PartitionScheme:
        return self._schemes[name]

    def relation_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._schemas))

    def holders(self, relation: str, fragment_id: int) -> frozenset[NodeId]:
        return frozenset(self._placement[(relation, fragment_id)])

    def placements(self) -> Iterator[tuple[str, int, frozenset[NodeId]]]:
        for (relation, fragment_id), nodes in sorted(self._placement.items()):
            yield relation, fragment_id, frozenset(nodes)

    def views_at(self, node: NodeId) -> tuple[MaterializedView, ...]:
        return tuple(self._views.get(node, ()))

    def held_by(self, node: NodeId) -> dict[str, frozenset[int]]:
        held: dict[str, set[int]] = {}
        for (relation, fragment_id), nodes in self._placement.items():
            if node in nodes:
                held.setdefault(relation, set()).add(fragment_id)
        return {rel: frozenset(fids) for rel, fids in held.items()}

    def local(self, node: NodeId) -> LocalCatalog:
        """Project the ground truth onto what *node* itself stores."""
        return LocalCatalog(
            node=node,
            schemas=self.schemas,
            schemes=self.schemes,
            held=self.held_by(node),
            views=self.views_at(node),
        )

    def replication_factor(self, relation: str) -> float:
        """Average number of replicas per fragment of *relation*."""
        keys = [k for k in self._placement if k[0] == relation]
        if not keys:
            return 0.0
        return sum(len(self._placement[k]) for k in keys) / len(keys)

    def total_rows(self, relation: str) -> int:
        return self._schemes[relation].total_rows
