"""Shared process-pool plumbing for the parallel trading engine.

One :class:`~concurrent.futures.ProcessPoolExecutor` per worker count,
created lazily and reused for the life of the process: the offer farm,
the partitioned buyer DP, and the sweep runner all fan out many small
task batches, so paying pool start-up once instead of per negotiation
round is what makes parallelism worth its IPC tax.

The ``fork`` start method is preferred (cheap worker start, inherited
module state); platforms without it fall back to the default context.
Workers must nevertheless treat inherited globals as stale — e.g. the
offer-id counter is explicitly reseeded per task (see
``repro.parallel.offer_farm``).

All pools are shut down at interpreter exit.  Callers should treat any
exception from :func:`get_pool` or a submitted future as "parallelism
unavailable" and fall back to their serial path — the equivalence
contract makes the fallback free of behavioral change.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

__all__ = ["available_cpus", "get_pool", "shutdown_pools"]

_POOLS: dict[int, ProcessPoolExecutor] = {}


def available_cpus() -> int:
    """Usable CPU count (1 when undetectable)."""
    return os.cpu_count() or 1


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor for *workers* processes (created on demand)."""
    if workers < 1:
        raise ValueError("workers must be positive")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=_context())
        _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Shut down every pool created so far (idempotent)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)
