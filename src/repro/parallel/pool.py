"""Shared process-pool plumbing for the parallel trading engine.

One :class:`~concurrent.futures.ProcessPoolExecutor` per worker count,
created lazily and reused for the life of the process: the offer farm,
the lattice buyer DP, and the sweep runner all fan out many small task
batches, so paying pool start-up once instead of per negotiation round
is what makes parallelism worth its IPC tax.

The ``fork`` start method is preferred (cheap worker start, inherited
module state); platforms without it fall back to the default context.
Workers must nevertheless treat inherited globals as stale — e.g. the
offer-id counter is explicitly reseeded per task (see
``repro.parallel.offer_farm``).

Lifecycle hygiene: every pool is shut down at interpreter exit
(:func:`shutdown_pools` is idempotent and registered with ``atexit``
exactly once); a broken pool — a worker killed mid-task poisons a
``ProcessPoolExecutor`` permanently — is detected and replaced on the
next :func:`get_pool` call instead of failing every future forever.
Benchmarks call :func:`warm_pool` so worker spawn cost (the executor
forks lazily, on first submit) never lands inside a timed region.

Callers should treat any exception from :func:`get_pool` or a submitted
future as "parallelism unavailable" and fall back to their serial path —
the equivalence contract makes the fallback free of behavioral change.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor

__all__ = [
    "available_cpus",
    "get_pool",
    "warm_pool",
    "run_chunks",
    "shutdown_pools",
]

_POOLS: dict[int, ProcessPoolExecutor] = {}
_WARMED: set[int] = set()


def available_cpus() -> int:
    """Usable CPU count (1 when undetectable)."""
    return os.cpu_count() or 1


def _context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor for *workers* processes (created on demand).

    A previously created pool that has broken (worker death poisons the
    executor) is discarded and replaced, so one crashed task does not
    permanently disable parallelism for the rest of the process.
    """
    if workers < 1:
        raise ValueError("workers must be positive")
    pool = _POOLS.get(workers)
    if pool is not None and getattr(pool, "_broken", False):
        pool.shutdown(wait=False, cancel_futures=True)
        _POOLS.pop(workers, None)
        _WARMED.discard(workers)
        pool = None
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers, mp_context=_context())
        _POOLS[workers] = pool
    return pool


def _warm_task(seconds: float) -> int:
    """Hold a worker briefly so every process actually spawns."""
    time.sleep(seconds)
    return os.getpid()


def warm_pool(workers: int, hold: float = 0.02) -> ProcessPoolExecutor:
    """The shared pool with all *workers* processes started and idle.

    ``ProcessPoolExecutor`` forks workers lazily on submit, so a bare
    :func:`get_pool` leaves spawn cost inside the first caller's timed
    region — which made small-join benchmark numbers understate speedup.
    Each warm task holds its worker for *hold* seconds so one fast
    process cannot service the whole warm-up batch.
    """
    pool = get_pool(workers)
    if workers not in _WARMED:
        futures = [pool.submit(_warm_task, hold) for _ in range(workers)]
        for future in futures:
            future.result()
        _WARMED.add(workers)
    return pool


def run_chunks(workers: int, fn, chunk_args: list[tuple]) -> list:
    """Submit ``fn(*args)`` per chunk; results in submission order.

    The level-batch task protocol shared by the lattice schedulers: one
    pool task per cost-balanced chunk, so per-chunk shared state (the
    ``PlanBuilder``, the lower DP levels) pickles once per chunk rather
    than once per mask.  Exceptions propagate to the caller, whose
    serial fallback is the equivalence-preserving escape hatch.
    """
    pool = get_pool(workers)
    futures = [pool.submit(fn, *args) for args in chunk_args]
    return [future.result() for future in futures]


def shutdown_pools() -> None:
    """Shut down every pool created so far (idempotent)."""
    _WARMED.clear()
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)
