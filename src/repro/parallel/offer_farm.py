"""Process-pool fan-out of one negotiation round's seller work.

Within a round the sellers are independent: each ``prepare_offers`` call
reads only the agent's own catalog, strategy, and offer-cache slice.
:class:`OfferFarm` exploits that by computing every seller's offers in
worker processes *before* the round's RFBs are delivered, then handing
each result back at the exact simulation point the serial code would
have computed it.  The negotiation itself — message timing, simulated
compute, protocol state — is untouched, which is what makes parallel
runs byte-identical to serial ones.

Determinism contract
--------------------
* **Offer ids.**  Serially, ids are minted from the module-global
  counter in RFB delivery order.  Workers reseed their (process-local)
  counter to zero so every offer carries its *creation index*; at
  consume time the parent mints exactly ``total_created`` ids from the
  real counter and maps index ``i`` to ``base + i``.  Gaps from the
  seller's dedupe pass are reproduced exactly.
* **Cache stats and contents.**  Each worker gets an isolated,
  effectively unbounded snapshot of its seller's slice of the shared
  :class:`~repro.trading.cache.OfferCache` (keys embed the site, so the
  slice is exactly what the seller could touch).  Hit/miss deltas and
  newly stored entries ship back; the parent adds the deltas and
  replays the stores in order at consume time.  If replaying *any*
  seller's stores could push a cache past capacity — the one case where
  FIFO eviction could interleave differently than serial — every batch
  sharing that cache is invalidated and those sellers run serially.
* **Faults.**  A dropped RFB simply leaves its batch unconsumed (no ids
  minted, no cache merge — as if the seller was never asked).  A
  duplicated delivery finds the batch already consumed and falls back
  to a real ``prepare_offers`` call, matching serial's second
  invocation (which hits the now-warm cache).
* **Fallbacks.**  Subcontracting sellers hold live network references
  and trade with peers mid-call; the farm refuses to prefetch such
  rounds entirely.  Pool or pickling failures likewise degrade to
  serial.  Every fallback path *is* the serial path, so equivalence
  never depends on the farm succeeding.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping

import repro.trading.commodity as commodity
from repro.obs.tracer import CAT_PARALLEL, NULL_TRACER, TraceRecord, Tracer
from repro.parallel.pool import get_pool
from repro.trading.cache import CacheStats
from repro.trading.commodity import Offer, RequestForBids

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trading.seller import SellerAgent

__all__ = ["OfferFarm", "RoundPrefetch"]


def _prepare_worker(agent: "SellerAgent", rfb: RequestForBids):
    """Run one seller's round in a worker process.

    Returns ``(offers, total_created, work, stored, stats)`` where
    offers carry creation indices (0-based) instead of real offer ids.
    The id counter is reseeded per seller, so indices are relative to
    each seller's own batch no matter how sellers are grouped into
    pool tasks.
    """
    commodity._offer_ids = itertools.count(0)
    # A pool forked inside an ``offer_id_scope`` (broker sessions mint
    # ids under one) inherits the scope's ContextVar — set, in this
    # process, forever: only the forking parent ever resets it.  Left
    # in place it would shadow the reseeded module counter above, so
    # offers would carry scoped ids instead of creation indices and
    # ``total_created`` would read zero (no remap, colliding ids).
    commodity._scoped_offer_ids.set(None)
    cache = agent.offer_cache
    before = set(cache._entries) if cache is not None else set()
    offers, work = agent.prepare_offers(rfb)
    total_created = next(commodity._offer_ids)
    stored: list[tuple] = []
    stats = CacheStats()
    if cache is not None:
        stored = [
            (key, result)
            for key, result in cache._entries.items()
            if key not in before
        ]
        stats = cache.stats
    # Trace rows the worker-local tracer recorded during prepare_offers
    # (empty when the farm runs untraced); the parent absorbs them at
    # consume time, where the serial code would have recorded them.
    return offers, total_created, work, stored, stats, agent.tracer.records


def _prepare_chunk(agents: Mapping[str, "SellerAgent"], rfb: RequestForBids):
    """Run several sellers' rounds in one worker process.

    Grouping sellers into one pool task per worker (instead of one per
    seller) ships the shared :class:`~repro.optimizer.PlanBuilder` once
    per chunk — pickle's reference sharing serializes it a single time
    for the whole payload — and cuts task-dispatch overhead from
    O(sellers) to O(workers).
    """
    return {node: _prepare_worker(agent, rfb) for node, agent in agents.items()}


def _remap_provenance(
    events: list[TraceRecord], base: int, cause: int
) -> list[TraceRecord]:
    """Worker ``ledger.*`` rows with creation-index offer ids rebased.

    *cause* is the parent tracer's current causal id — the mid of the
    RFB delivery consuming this batch.  Worker tracers run outside any
    delivery (their ``cause`` is ``-1``), so rows that carry a causal
    stamp are rebased here, exactly like offer ids: afterwards the
    absorbed rows are byte-identical to what the serial seller would
    have recorded inside the delivery handler.

    Shipped rows are left untouched (copies are made) so a batch can be
    inspected after consumption.
    """
    remapped = []
    for row in events:
        args = row.args
        if args is not None and row.name.startswith("ledger."):
            if "offer" in args or "cause" in args:
                args = dict(args)
                if "offer" in args:
                    args["offer"] = base + args["offer"]
                if "cause" in args:
                    args["cause"] = cause
                row = replace(row, args=args)
        remapped.append(row)
    return remapped


@dataclass
class _Batch:
    """One seller's precomputed round, awaiting consumption."""

    offers: list[Offer]
    total_created: int
    work: float
    stored: list[tuple]
    stats: CacheStats
    events: list[TraceRecord]
    valid: bool = True


@dataclass
class FarmStats:
    """Observability counters (do not affect behavior)."""

    rounds_prefetched: int = 0
    rounds_serial: int = 0
    batches_consumed: int = 0
    batches_discarded: int = 0
    serial_fallbacks: int = 0


class RoundPrefetch:
    """Precomputed seller batches for exactly one RFB."""

    def __init__(
        self, rfb: RequestForBids, batches: dict[str, _Batch], stats: FarmStats
    ):
        self._rfb = rfb
        self._batches = batches
        self._stats = stats
        self._consumed: set[str] = set()

    def consume(
        self, node: str, agent: "SellerAgent", rfb: RequestForBids
    ) -> tuple[list[Offer], float] | None:
        """This seller's precomputed ``(offers, work)``, or ``None``.

        ``None`` means "compute serially": the batch is missing,
        invalidated, for a different RFB, or already consumed (a
        fault-duplicated delivery — the repeat call must really run so
        it observes the warmed cache exactly as serial would).
        """
        tracer = agent.tracer
        if rfb is not self._rfb or node in self._consumed:
            self._stats.serial_fallbacks += 1
            if tracer.enabled:
                reason = (
                    "already_consumed" if node in self._consumed
                    else "other_rfb"
                )
                tracer.event(
                    "farm.serial_fallback", CAT_PARALLEL, site=node,
                    reason=reason,
                )
            return None
        batch = self._batches.get(node)
        if batch is None or not batch.valid:
            self._stats.serial_fallbacks += 1
            if tracer.enabled:
                reason = "missing_batch" if batch is None else "invalidated"
                tracer.event(
                    "farm.serial_fallback", CAT_PARALLEL, site=node,
                    reason=reason,
                )
            return None
        self._consumed.add(node)
        # Mint the real offer ids before touching the tracer: worker
        # offers carry 0-based creation indices, and so do the ``offer``
        # args of any worker-recorded ``ledger.*`` decision rows — both
        # remap to ``base + index`` so provenance ids match serial.
        offers = batch.offers
        events = batch.events
        if batch.total_created:
            base = commodity.next_offer_id()
            for _ in range(batch.total_created - 1):
                commodity.next_offer_id()
            offers = [
                replace(offer, offer_id=base + offer.offer_id)
                for offer in offers
            ]
            events = _remap_provenance(events, base, tracer.cause)
        # Worker trace rows next (the prepare_offers span, its cache
        # hits/misses, and the pricing decisions), exactly where the
        # serial call would have recorded them; the store replay below
        # never evicts (capacity-crossing batches were invalidated), so
        # it emits no events of its own.
        tracer.absorb(events)
        cache = agent.offer_cache
        if cache is not None:
            cache.stats.add(batch.stats)
            for key, result in batch.stored:
                cache.store(key, result)
        self._stats.batches_consumed += 1
        if tracer.enabled:
            tracer.event(
                "farm.batch_consumed", CAT_PARALLEL, site=node,
                offers=len(offers), absorbed=len(batch.events),
            )
        return offers, batch.work

    def discard(self) -> None:
        """Account for batches the round never consumed (dropped RFBs)."""
        self._stats.batches_discarded += len(
            set(self._batches) - self._consumed
        )


class OfferFarm:
    """Fans a round's independent ``prepare_offers`` calls over a pool."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.stats = FarmStats()
        #: Observability hook (the trader attaches its network tracer).
        #: Farm events are in the ``parallel`` category: they document
        #: real pool behavior and are excluded from deterministic
        #: exports.
        self.tracer: Tracer = NULL_TRACER

    # ------------------------------------------------------------------
    def prepare(
        self,
        sellers: Mapping[str, "SellerAgent"],
        rfb: RequestForBids,
        exclude: str | None = None,
    ) -> RoundPrefetch | None:
        """Precompute every seller's offers for *rfb*, or ``None``.

        ``None`` (serial round) when: one worker, fewer than two
        sellers, any seller subcontracts, or the pool/pickling fails.
        """
        nodes = sorted(node for node in sellers if node != exclude)
        if self.workers <= 1 or len(nodes) < 2:
            self.stats.rounds_serial += 1
            self._trace_serial_round(
                "workers" if self.workers <= 1 else "few_sellers"
            )
            return None
        if any(sellers[node].subcontractor is not None for node in nodes):
            self.stats.rounds_serial += 1
            self._trace_serial_round("subcontracting")
            return None
        try:
            pool = get_pool(self.workers)
            worker_agents = {}
            for node in nodes:
                agent = sellers[node]
                worker_agent = copy.copy(agent)
                worker_agent.subcontractor = None
                # Workers trace into a fresh unbound tracer (an enabled
                # one bound to a live simulator would not pickle); its
                # rows ship back with the batch and are absorbed at
                # consume.  The cache snapshot shares the same tracer —
                # pickle's reference sharing keeps them shared in the
                # worker.
                worker_agent.tracer = (
                    Tracer(enabled=True)
                    if self.tracer.enabled
                    else NULL_TRACER
                )
                if agent.offer_cache is not None:
                    clone = agent.offer_cache.snapshot_for_site(agent.node)
                    clone.tracer = worker_agent.tracer
                    worker_agent.offer_cache = clone
                worker_agents[node] = worker_agent
            # One chunk per worker (round-robin for balance): the shared
            # plan builder pickles once per chunk, not once per seller.
            chunks = [
                nodes[i :: self.workers] for i in range(self.workers)
            ]
            futures = [
                pool.submit(
                    _prepare_chunk,
                    {node: worker_agents[node] for node in chunk},
                    rfb,
                )
                for chunk in chunks
                if chunk
            ]
            batches = {}
            for future in futures:
                for node, parts in future.result().items():
                    batches[node] = _Batch(*parts)
        except Exception:
            self.stats.rounds_serial += 1
            self._trace_serial_round("pool_error")
            return None
        self._enforce_capacity(sellers, batches)
        self.stats.rounds_prefetched += 1
        if self.tracer.enabled:
            self.tracer.event(
                "farm.prepared", CAT_PARALLEL,
                sellers=len(batches), workers=self.workers,
                round=rfb.round_number,
            )
        return RoundPrefetch(rfb, batches, self.stats)

    def _trace_serial_round(self, reason: str) -> None:
        if self.tracer.enabled:
            self.tracer.event(
                "farm.serial_round", CAT_PARALLEL, reason=reason
            )

    # ------------------------------------------------------------------
    def _enforce_capacity(
        self, sellers: Mapping[str, "SellerAgent"], batches: dict[str, _Batch]
    ) -> None:
        """Invalidate batches whose replay could trigger FIFO eviction.

        Serially, an eviction interleaves with the round's own lookups;
        replay at consume time cannot reproduce that interleaving, so
        any cache that would cross capacity demotes *all* its sellers
        to the serial path for this round.
        """
        groups: dict[int, list[str]] = {}
        caches: dict[int, object] = {}
        for node in batches:
            cache = sellers[node].offer_cache
            if cache is None:
                continue
            groups.setdefault(id(cache), []).append(node)
            caches[id(cache)] = cache
        for cache_id, nodes in groups.items():
            cache = caches[cache_id]
            pending = sum(len(batches[node].stored) for node in nodes)
            if len(cache) + pending > cache.max_entries:
                for node in nodes:
                    batches[node].valid = False
                if self.tracer.enabled:
                    self.tracer.event(
                        "farm.capacity_fallback", CAT_PARALLEL,
                        sellers=len(nodes),
                    )
