"""Cost-weighted work partitioning for the parallel lattice schedulers.

Subproblem costs across a DP level are wildly uneven — a handful of
masks own most of the join pairs — so dealing masks round-robin (the
PR 3 scheme) plateaus almost immediately: one worker draws the heavy
masks while the rest idle.  Trummer & Koch ("Parallelizing Query
Optimization on Shared-Nothing Architectures") allocate the *entire*
DP lattice by estimated cost instead; this module implements the
allocation primitive they rely on, Longest-Processing-Time-first
greedy bin packing (a.k.a. LPT list scheduling):

* items are visited in descending weight (ties broken by original
  index, so the schedule is deterministic),
* each item goes to the currently least-loaded bucket (ties broken by
  bucket index).

LPT's classic guarantee bounds the imbalance: the heaviest bucket
carries at most ``total/k + max_item`` weight (list-scheduling bound;
LPT's own bound is the tighter ``4/3 - 1/(3k)`` factor of optimal).
``tests/test_parallel.py`` property-checks both the bound and the
exactly-once coverage of every item.

Consumers: the buyer's full-lattice parallel DP
(:meth:`repro.trading.buyer.BuyerPlanGenerator`), the seller-side
DP/IDP level scheduler (:mod:`repro.optimizer.dp`), and the sweep
runner's job chunking (:mod:`repro.parallel.sweeps`).  The partition
only decides *where* work runs — merge order is always the serial
order, so scheduling never affects results.
"""

from __future__ import annotations

import heapq
from typing import Sequence

__all__ = ["lpt_partition", "bucket_loads", "imbalance_ratio"]


def lpt_partition(
    weights: Sequence[float], buckets: int
) -> list[list[int]]:
    """Partition item indices into at most *buckets* cost-balanced groups.

    Returns one list of item indices per non-empty bucket, each sorted
    ascending (callers merge results in serial item order, so the order
    *within* a bucket is presentation only).  Deterministic: equal
    weights fall back to index order, equal loads to bucket order.
    """
    if buckets < 1:
        raise ValueError("buckets must be positive")
    n = len(weights)
    k = min(buckets, n)
    if k <= 1:
        return [list(range(n))] if n else []
    order = sorted(range(n), key=lambda i: (-weights[i], i))
    heap = [(0.0, b) for b in range(k)]  # (load, bucket) — already sorted
    assignment: list[list[int]] = [[] for _ in range(k)]
    for i in order:
        load, bucket = heapq.heappop(heap)
        assignment[bucket].append(i)
        heapq.heappush(heap, (load + weights[i], bucket))
    for group in assignment:
        group.sort()
    return [group for group in assignment if group]


def bucket_loads(
    assignment: Sequence[Sequence[int]], weights: Sequence[float]
) -> list[float]:
    """Total weight per bucket of an :func:`lpt_partition` result."""
    return [sum(weights[i] for i in group) for group in assignment]


def imbalance_ratio(loads: Sequence[float]) -> float:
    """``max_load / mean_load`` of non-empty buckets (1.0 = perfect).

    The diagnostic the ``buyer.level_partition`` trace event reports;
    degenerate inputs (no buckets, zero total) read as balanced.
    """
    if not loads:
        return 1.0
    total = sum(loads)
    if total <= 0:
        return 1.0
    return max(loads) * len(loads) / total
