"""Parallel trading engine: process-pool layers over the QT simulator.

Three independent layers, all preserving byte-identical results versus
serial execution (see ``docs/PARALLEL.md`` for the determinism
contract):

* :class:`~repro.parallel.offer_farm.OfferFarm` — computes each
  negotiation round's independent seller offers in worker processes and
  hands them back at the exact simulation points the serial code would
  have computed them.
* The partitioned buyer DP — ``BuyerPlanGenerator(workers=N)`` splits
  the 2-way sub-plan frontier across workers (Trummer–Koch style
  plan-space partitioning) and reduces with the existing pruning rules.
* :func:`~repro.parallel.sweeps.run_sweep` — executes independent
  (world, query, axis-point) benchmark measurements concurrently with
  job-stable result ordering.
"""

from repro.parallel.offer_farm import OfferFarm, RoundPrefetch
from repro.parallel.pool import available_cpus, get_pool, shutdown_pools
from repro.parallel.sweeps import RUNNERS, SweepJob, run_sweep

__all__ = [
    "OfferFarm",
    "RoundPrefetch",
    "RUNNERS",
    "SweepJob",
    "available_cpus",
    "get_pool",
    "run_sweep",
    "shutdown_pools",
]
