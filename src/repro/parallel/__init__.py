"""Parallel trading engine: process-pool layers over the QT simulator.

Three independent layers, all preserving byte-identical results versus
serial execution (see ``docs/PARALLEL.md`` for the determinism
contract):

* :class:`~repro.parallel.offer_farm.OfferFarm` — computes each
  negotiation round's independent seller offers in worker processes and
  hands them back at the exact simulation points the serial code would
  have computed them.
* The full-lattice buyer DP — ``BuyerPlanGenerator(workers=N)`` ships
  every level of the subset lattice to the fork pool, masks
  LPT-partitioned by estimated join work (Trummer–Koch cost-based
  allocation, :mod:`repro.parallel.partition`) and merged back in
  serial mask order.  The seller-side DP/IDP optimizer reuses the same
  allocator for its levels.
* :func:`~repro.parallel.sweeps.run_sweep` — executes independent
  (world, query, axis-point) benchmark measurements concurrently with
  job-stable result ordering, LPT-chunking long sweeps by cost hints.
"""

from repro.parallel.offer_farm import OfferFarm, RoundPrefetch
from repro.parallel.partition import (
    bucket_loads,
    imbalance_ratio,
    lpt_partition,
)
from repro.parallel.pool import (
    available_cpus,
    get_pool,
    run_chunks,
    shutdown_pools,
    warm_pool,
)
from repro.parallel.sweeps import RUNNERS, SweepJob, job_cost_hint, run_sweep

__all__ = [
    "OfferFarm",
    "RoundPrefetch",
    "RUNNERS",
    "SweepJob",
    "available_cpus",
    "bucket_loads",
    "get_pool",
    "imbalance_ratio",
    "job_cost_hint",
    "lpt_partition",
    "run_chunks",
    "run_sweep",
    "shutdown_pools",
    "warm_pool",
]
