"""Parallel execution of independent benchmark measurements.

The experiment suite is mostly a grid of *(world parameters, query,
runner)* points whose measurements never interact: each point builds a
fresh federation, a fresh network, and a fresh trader.  The only shared
mutable state is the module-global offer-id counter — which affects
``explain()`` strings, not measured quantities — so each job reseeds it
and becomes fully self-contained.  That makes the sweep embarrassingly
parallel *and* seed-stable: :func:`run_sweep` returns measurements in
job order regardless of worker count or completion order, and running
with ``workers=1`` executes the identical per-job code in-process.

Jobs must be picklable descriptions, not live objects: a
:class:`SweepJob` names a registered runner and carries plain kwargs for
``build_world`` and ``chain_query``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

import repro.trading.commodity as commodity
from repro.parallel.partition import lpt_partition
from repro.parallel.pool import get_pool, run_chunks

__all__ = ["SweepJob", "RUNNERS", "run_sweep", "job_cost_hint"]


@dataclass(frozen=True)
class SweepJob:
    """One self-contained (world, query, runner) measurement point."""

    label: str
    runner: str  # key into RUNNERS
    world: dict = field(default_factory=dict)  # build_world kwargs
    query: dict = field(default_factory=dict)  # chain_query kwargs
    run: dict = field(default_factory=dict)  # runner kwargs

    def __post_init__(self) -> None:
        if self.runner not in RUNNERS:
            raise ValueError(
                f"unknown runner {self.runner!r}; "
                f"registered: {sorted(RUNNERS)}"
            )


def _runners() -> dict[str, Callable]:
    # Imported lazily: bench.harness itself imports repro.parallel.
    from repro.bench import harness

    return {
        "qt": harness.run_qt,
        "qt_faulty": harness.run_qt_faulty,
        "distdp": harness.run_distdp,
        "distidp": harness.run_distidp,
        "mariposa": harness.run_mariposa,
    }


class _RunnerRegistry(dict):
    """Lazily populated runner table (extendable by callers)."""

    def _fill(self) -> None:
        for key, runner in _runners().items():
            dict.setdefault(self, key, runner)

    def __missing__(self, key):
        self._fill()
        return dict.__getitem__(self, key)

    def __contains__(self, key) -> bool:
        if dict.__contains__(self, key):
            return True
        self._fill()
        return dict.__contains__(self, key)

    def keys(self):
        self._fill()
        return dict.keys(self)


RUNNERS: dict[str, Callable] = _RunnerRegistry()


def run_job(job: SweepJob):
    """Execute one job from scratch (fresh world, reseeded offer ids)."""
    from repro.bench.harness import build_world
    from repro.workload import chain_query

    commodity._offer_ids = itertools.count(1)
    # Clear any fork-inherited offer-id scope (see offer_farm): a pool
    # forked inside one would shadow the reseeded counter above.
    commodity._scoped_offer_ids.set(None)
    world = build_world(**job.world)
    query = chain_query(**job.query)
    measurement = RUNNERS[job.runner](world, query, **job.run)
    measurement.optimizer = job.label or measurement.optimizer
    return measurement


def job_cost_hint(job: SweepJob) -> float:
    """Rough relative cost of one job (for chunk balancing only).

    Join-order search dominates a measurement, and its frontier grows
    with the query's relation count and the catalog's fragment fan-out;
    ``2**n_relations * fragments`` tracks that well enough for LPT to
    separate 12-join monsters from 4-join warm-ups.  Hints steer *where*
    jobs run, never what they compute, so a bad estimate costs balance,
    not correctness.
    """
    n_relations = job.query.get("n_relations", 1)
    fragments = job.world.get("fragments", 4)
    return float(2**n_relations * fragments)


def _run_job_chunk(jobs: Sequence[SweepJob]) -> list:
    return [run_job(job) for job in jobs]


def run_sweep(jobs: Sequence[SweepJob], workers: int = 1) -> list:
    """All jobs' measurements, in job order.

    With ``workers > 1`` the jobs run concurrently in the shared process
    pool; results are gathered in submission order, so the output is
    identical to the serial run (same jobs, same order, same values).
    Long sweeps (``len(jobs) >= 4 * workers``) are LPT-chunked by
    :func:`job_cost_hint` so one task's scheduling overhead is paid per
    chunk rather than per job and heavy jobs spread across workers
    first; short sweeps keep one task per job for maximum overlap.
    Pool failures fall back to in-process execution.
    """
    jobs = list(jobs)
    if workers <= 1 or len(jobs) < 2:
        return [run_job(job) for job in jobs]
    try:
        if len(jobs) >= 4 * workers:
            chunk_indices = lpt_partition(
                [job_cost_hint(job) for job in jobs], workers
            )
            results: list = [None] * len(jobs)
            chunk_results = run_chunks(
                min(workers, len(chunk_indices)),
                _run_job_chunk,
                [([jobs[i] for i in group],) for group in chunk_indices],
            )
            for group, measurements in zip(chunk_indices, chunk_results):
                for i, measurement in zip(group, measurements):
                    results[i] = measurement
            return results
        pool = get_pool(min(workers, len(jobs)))
        futures = [pool.submit(run_job, job) for job in jobs]
        return [future.result() for future in futures]
    except Exception:
        return [run_job(job) for job in jobs]
