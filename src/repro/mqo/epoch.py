"""The trading-epoch batcher: price shared commodities once, seed all.

Concurrent broker sessions accumulate into an *epoch*; when the epoch
seals (size reached, or the window timer fires for a partial batch),
the scheduler runs a shared-pricing prepass before any member
negotiates:

1. the :class:`~repro.mqo.interner.CommodityInterner` groups the
   members' connected subqueries by canonical key — a subquery shared
   by two or more members is a shared commodity;
2. for each member, in submission order, every seller prices the
   member's shared templates through one interned RFB
   (``shared_counts`` set) against a shared epoch cache view — the
   first sharer pays the full optimization, later sharers hit the
   now-pinned cache entries (counted as ``intern_hits``);
3. each (commodity, seller) full price splits into per-sharer shares
   that sum back exactly (see :mod:`repro.mqo.ledger`), and every
   member receives amortized *seed offers* — materialized-intermediate
   commodities injected into its trader before round one.

The members then dispatch to the ordinary session workers.  An epoch
with nothing shared (or below ``min_batch``) dispatches its members
un-seeded, which is byte-identical to the MQO-off path.

Everything in the prepass is pure deterministic compute — no network,
no clock — so seed offers (ids, prices, shares) are identical under
the simulator and the asyncio clock at any concurrency.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.mqo.interner import CommodityInterner, SharedCommodity
from repro.mqo.ledger import (
    SharedPricing,
    SharedPricingLedger,
    amortized_offer,
    money_shares,
)
from repro.trading.cache import CacheStats, InternTable
from repro.trading.commodity import (
    Offer,
    RequestForBids,
    next_offer_id,
    offer_id_scope,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.harness import World
    from repro.broker.sessions import BrokerSession

__all__ = ["MQOConfig", "EpochScheduler"]


@dataclass(frozen=True)
class MQOConfig:
    """Knobs of the multi-query-optimization epoch scheduler."""

    enabled: bool = True
    #: Seal the epoch as soon as this many sessions pend.
    epoch_size: int = 8
    #: Wall seconds before a partial epoch seals anyway (a lone session
    #: must not wait forever for company).
    epoch_window: float = 0.25
    #: Below this batch size the prepass is skipped entirely.
    min_batch: int = 2
    #: Subset-size bounds for the commodity interner.
    min_shared_relations: int = 2
    max_shared_relations: int = 4
    #: Distinct members that must share a subquery to intern it.
    share_threshold: int = 2
    #: Seed offers mint ids from a scope starting here, far above any
    #: session-local sequence (sessions count from 1), so a seed id can
    #: never collide with an in-session offer id in plan provenance.
    offer_id_base: int = 1_000_000_000
    #: Id-space stride between consecutive epochs.
    epoch_id_stride: int = 1_000_000


@dataclass
class EpochCounters:
    """Cumulative scheduler statistics (serving metrics)."""

    epochs: int = 0
    sessions_batched: int = 0
    sessions_seeded: int = 0
    templates_interned: int = 0
    seeds_injected: int = 0
    prepass_work_seconds: float = 0.0


class EpochScheduler:
    """Batches broker sessions into epochs and runs the prepass.

    Parameters
    ----------
    world:
        The broker's federation world (catalog, builder, shared cache).
    buyer:
        The buying node id sessions negotiate as.
    dispatch:
        Callback releasing one session to the ordinary session workers
        (the broker passes its manager-submit hook).
    config:
        The :class:`MQOConfig` knobs.
    """

    def __init__(
        self,
        world: "World",
        buyer: str,
        dispatch: Callable[["BrokerSession"], None],
        config: MQOConfig | None = None,
    ):
        self.world = world
        self.buyer = buyer
        self.dispatch = dispatch
        self.config = config or MQOConfig()
        self.counters = EpochCounters()
        self.shared_ledger = SharedPricingLedger()
        #: Prepass cache accounting, accumulated across epochs.
        self.cache_stats = CacheStats()
        self._interner = CommodityInterner(
            min_relations=self.config.min_shared_relations,
            max_relations=self.config.max_shared_relations,
            share_threshold=self.config.share_threshold,
        )
        self._pending: list["BrokerSession"] = []
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._timer: threading.Timer | None = None
        self._closed = False
        if self.world.offer_cache is not None and (
            self.world.offer_cache.interns is None
        ):
            self.world.offer_cache.interns = InternTable()

    # ------------------------------------------------------------------
    def add(self, session: "BrokerSession") -> None:
        """Queue *session* for the next epoch (may seal it)."""
        flush_now = False
        with self._lock:
            if self._closed:
                flush_now = True  # dispatch immediately, no batching
            else:
                self._pending.append(session)
                if len(self._pending) >= self.config.epoch_size:
                    flush_now = True
                elif self._timer is None:
                    self._timer = threading.Timer(
                        self.config.epoch_window, self.flush
                    )
                    self._timer.daemon = True
                    self._timer.start()
        if self._closed:
            self.dispatch(session)
        elif flush_now:
            self.flush()

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self) -> None:
        """Stop batching; flush whatever pends so nothing is stranded."""
        with self._lock:
            self._closed = True
        self.flush()

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Seal the current epoch and dispatch its members."""
        with self._flush_lock:
            with self._lock:
                members = self._pending
                self._pending = []
                if self._timer is not None:
                    self._timer.cancel()
                    self._timer = None
            if not members:
                return
            self.counters.epochs += 1
            self.counters.sessions_batched += len(members)
            epoch_no = self.counters.epochs
            seeds: dict[str, list[Offer]] = {}
            if len(members) >= self.config.min_batch:
                try:
                    seeds = self._prepass(epoch_no, members)
                except Exception:
                    seeds = {}  # a broken prepass must not strand sessions
            for member in members:
                member.seed_offers = seeds.get(member.session_id)
                if member.seed_offers:
                    member.epoch = f"e{epoch_no}"
                    self.counters.sessions_seeded += 1
                    self.counters.seeds_injected += len(member.seed_offers)
                self.dispatch(member)

    # ------------------------------------------------------------------
    def _prepass(
        self, epoch_no: int, members: list["BrokerSession"]
    ) -> dict[str, list[Offer]]:
        """Price every shared commodity once; build per-member seeds."""
        shared = self._interner.intern(
            [(m.session_id, m.spec.query) for m in members]
        )
        if not shared:
            return {}
        self.counters.templates_interned += len(shared)
        epoch_id = f"e{epoch_no}"
        base_cache = self.world.offer_cache
        epoch_view = (
            base_cache.session_view() if base_cache is not None else None
        )
        sellers = self.world.seller_agents(offer_cache=epoch_view)
        by_member: dict[str, list[SharedCommodity]] = {
            m.session_id: [
                c for c in shared if m.session_id in c.members
            ]
            for m in members
        }
        # One canonical full-price offer per (commodity, seller) — the
        # first sharer's pricing defines it; later sharers re-derive the
        # identical answer through the (pinned) cache, which is what
        # the intern-hit accounting measures.
        full_offers: dict[tuple[str, str], Offer] = {}
        known_keys: set = (
            set(base_cache.keys()) if base_cache is not None else set()
        )
        with offer_id_scope(
            start=self.config.offer_id_base
            + (epoch_no - 1) * self.config.epoch_id_stride
        ):
            for member in members:
                templates = by_member.get(member.session_id) or []
                if not templates:
                    continue
                rfb = RequestForBids(
                    buyer=self.buyer,
                    queries=tuple(c.template for c in templates),
                    reservations={},
                    round_number=0,
                    shared_counts={c.key: c.sharers for c in templates},
                )
                wanted = {c.key: c for c in templates}
                for node in sorted(sellers):
                    offers, work = sellers[node].prepare_offers(rfb)
                    self.counters.prepass_work_seconds += work
                    for offer in offers:
                        commodity = wanted.get(offer.request_key)
                        if commodity is None:
                            continue
                        if (
                            frozenset(offer.coverage)
                            != commodity.template.aliases
                        ):
                            continue  # partial/fragment, not the intermediate
                        full_offers.setdefault(
                            (commodity.key, node), offer
                        )
                # Pin whatever this pass stored so the *next* sharer's
                # lookups count as intern hits (and stay eviction-safe).
                if base_cache is not None and base_cache.interns is not None:
                    current = set(base_cache.keys())
                    for key in current - known_keys:
                        base_cache.interns.pin(key, epoch_id)
                    known_keys = current
            # Split each full price across its sharers, exactly.
            seeds: dict[str, list[Offer]] = {
                m.session_id: [] for m in members
            }
            for commodity in shared:
                k = commodity.sharers
                for node in sorted(sellers):
                    offer = full_offers.get((commodity.key, node))
                    if offer is None:
                        continue
                    shares = money_shares(offer.properties.money, k)
                    self.shared_ledger.record(
                        SharedPricing(
                            epoch=epoch_id,
                            commodity=commodity.key,
                            seller=node,
                            full_money=offer.properties.money,
                            full_time=offer.properties.total_time,
                            sharers=list(commodity.members),
                            shares=shares,
                        )
                    )
                    for idx, member_id in enumerate(commodity.members):
                        seeds[member_id].append(
                            amortized_offer(
                                offer, shares[idx], k, next_offer_id()
                            )
                        )
        if epoch_view is not None:
            self.cache_stats.add(epoch_view.stats)
        return {sid: offers for sid, offers in seeds.items() if offers}

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """The serving-metrics payload section for MQO."""
        return {
            "epochs": self.counters.epochs,
            "sessions_batched": self.counters.sessions_batched,
            "sessions_seeded": self.counters.sessions_seeded,
            "templates_interned": self.counters.templates_interned,
            "seeds_injected": self.counters.seeds_injected,
            "prepass_work_seconds": round(
                self.counters.prepass_work_seconds, 6
            ),
            "prepass_cache": {
                "hits": self.cache_stats.hits,
                "misses": self.cache_stats.misses,
                "intern_hits": self.cache_stats.intern_hits,
            },
            "shared_pricing": self.shared_ledger.to_dict(),
        }
