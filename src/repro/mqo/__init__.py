"""Cross-session multi-query optimization for the federation broker.

Concurrent broker sessions batch into *trading epochs*; common subquery
commodities are interned across buyers by canonical form, priced once
per epoch by the sellers, and amortized across the sharing sessions as
materialized-intermediate seed offers whose shares reconcile exactly
back to the full price.  See :mod:`repro.mqo.epoch` for the scheduler,
:mod:`repro.mqo.interner` for shared-commodity detection, and
:mod:`repro.mqo.ledger` for the split-cost accounting.
"""

from repro.mqo.epoch import EpochScheduler, MQOConfig
from repro.mqo.interner import CommodityInterner, SharedCommodity
from repro.mqo.ledger import (
    SharedPricing,
    SharedPricingLedger,
    amortized_offer,
    money_shares,
)

__all__ = [
    "EpochScheduler",
    "MQOConfig",
    "CommodityInterner",
    "SharedCommodity",
    "SharedPricing",
    "SharedPricingLedger",
    "amortized_offer",
    "money_shares",
]
