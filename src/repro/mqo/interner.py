"""The commodity interner: shared-subquery detection across buyers.

Roy et al.'s multi-query optimization starts from common-subexpression
identification; in the query-trading setting the tradable unit is a
*subquery commodity*, so the interner enumerates each member query's
connected relation subsets (connected under the query's equi-join
graph — a disconnected subset would trade a Cartesian product nobody
wants), projects the query onto each subset via
:meth:`~repro.sql.query.SPJQuery.subquery_on`, and groups the results
by canonical :meth:`~repro.sql.query.SPJQuery.key`.

Canonicalization does the heavy lifting: ``key()`` re-sorts the FROM
list and every conjunct, so two tenants' queries that differ only in a
per-tenant selection on a relation *outside* the subset intern to the
same commodity — the overlapping-analytics pattern where N tenants
perturb ``r0`` while the join interior ``{r1..rk}`` is identical.
Interning is syntactic-by-canonical-form: queries using different
aliases for the same relations do not intern (the buyer plan generator
stitches offers back by alias, so an alias-renamed seed would not
compose anyway).

A subset shared by at least ``share_threshold`` *distinct members*
becomes a :class:`SharedCommodity`; the epoch scheduler prices each one
once per epoch and amortizes the cost across its sharers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.query import SPJQuery

__all__ = ["SharedCommodity", "CommodityInterner"]


@dataclass
class SharedCommodity:
    """One interned subquery template and the members sharing it."""

    key: str  # canonical SPJQuery.key() of the template
    template: SPJQuery  # the (SELECT *) subquery, first member's form
    members: list[str] = field(default_factory=list)  # sharer ids, in order

    @property
    def sharers(self) -> int:
        return len(self.members)


def _connected_subsets(
    query: SPJQuery, min_size: int, max_size: int
) -> list[frozenset[str]]:
    """Connected alias subsets of *query* under its equi-join edges.

    Grown breadth-first from each alias by adding join-adjacent aliases,
    deduped, and returned in a deterministic order (by size, then by
    sorted alias tuple).  Queries here are small (the workload caps at
    a handful of relations), so the exponential worst case is moot.
    """
    adjacency: dict[str, set[str]] = {a: set() for a in query.aliases}
    for conjunct in query.join_conjuncts():
        tables = sorted(conjunct.tables())
        for left in tables:
            for right in tables:
                if left != right:
                    adjacency[left].add(right)
    subsets: set[frozenset[str]] = set()
    frontier: set[frozenset[str]] = {
        frozenset((alias,)) for alias in query.aliases
    }
    while frontier:
        grown: set[frozenset[str]] = set()
        for subset in frontier:
            if min_size <= len(subset) <= max_size:
                subsets.add(subset)
            if len(subset) >= max_size:
                continue
            reachable = set().union(
                *(adjacency[alias] for alias in subset)
            ) - set(subset)
            for alias in reachable:
                candidate = subset | {alias}
                if candidate not in subsets and candidate not in grown:
                    grown.add(candidate)
        frontier = grown
    return sorted(subsets, key=lambda s: (len(s), tuple(sorted(s))))


class CommodityInterner:
    """Groups member queries' connected subqueries by canonical key.

    Parameters
    ----------
    min_relations:
        Smallest subset worth sharing (default 2 — single-relation scans
        are cheap enough that amortizing them is noise).
    max_relations:
        Cap on the subset size enumerated per query (bounds the
        interning work for wide queries).
    share_threshold:
        Minimum number of *distinct members* that must share a subquery
        for it to be interned (default 2: sharing with yourself is just
        the ordinary offer cache).
    """

    def __init__(
        self,
        min_relations: int = 2,
        max_relations: int = 4,
        share_threshold: int = 2,
    ):
        if min_relations < 1:
            raise ValueError("min_relations must be positive")
        if max_relations < min_relations:
            raise ValueError("max_relations must be >= min_relations")
        if share_threshold < 2:
            raise ValueError("share_threshold must be at least 2")
        self.min_relations = min_relations
        self.max_relations = max_relations
        self.share_threshold = share_threshold

    def subquery_keys(self, query: SPJQuery) -> dict[str, SPJQuery]:
        """All of *query*'s connected-subset commodities, by canonical key.

        The full query itself is excluded — interning it would trade the
        member's entire answer, which is the session's own job (and two
        members with byte-equal queries already share through the plain
        offer cache).
        """
        out: dict[str, SPJQuery] = {}
        for subset in _connected_subsets(
            query, self.min_relations, self.max_relations
        ):
            if subset == query.aliases:
                continue
            sub = query.subquery_on(subset)
            if sub is None or sub.is_unsatisfiable:
                continue
            out.setdefault(sub.key(), sub)
        return out

    def intern(
        self, members: list[tuple[str, SPJQuery]]
    ) -> list[SharedCommodity]:
        """The shared commodities of *members* (``(member_id, query)``).

        Members are processed in the given order, and each commodity's
        sharer list preserves it — the epoch scheduler derives the
        deterministic amortized-share assignment from that order.
        """
        commodities: dict[str, SharedCommodity] = {}
        for member_id, query in members:
            for key, sub in self.subquery_keys(query).items():
                entry = commodities.get(key)
                if entry is None:
                    entry = SharedCommodity(key=key, template=sub)
                    commodities[key] = entry
                if member_id not in entry.members:
                    entry.members.append(member_id)
        shared = [
            c
            for c in commodities.values()
            if c.sharers >= self.share_threshold
        ]
        # Deterministic order: widest templates first (they amortize the
        # most work), canonical key breaking ties.
        shared.sort(key=lambda c: (-len(c.template.relations), c.key))
        return shared
