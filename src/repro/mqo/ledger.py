"""The shared-pricing ledger: amortized shares that reconcile exactly.

Each epoch the scheduler prices every shared commodity once per seller
(the full price) and hands each sharer an amortized seed offer.  This
module owns the split-cost arithmetic and its audit trail:

* **money** — with ``k`` sharers and full price ``m``, the first
  ``k - 1`` sharers pay ``base = m / k`` and the last pays
  ``m - base * (k - 1)``, so the float sum of the shares equals ``m``
  *exactly* (bit-for-bit), not just approximately.  The full price is
  charged once in aggregate no matter how the sharers' trades settle.
* **time** — the materialized intermediate is computed once and shipped
  to each buyer: execution cost (the offer's ``true_cost``) divides by
  ``k``, shipping (the remainder of ``total_time``) is per-sharer.

Shares are assigned by member submission order, which is deterministic
under either clock backend — the reconciliation test asserts exactly
that.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.trading.commodity import Offer

__all__ = ["SharedPricing", "SharedPricingLedger", "amortized_offer"]


def money_shares(total: float, k: int) -> list[float]:
    """*k* per-sharer shares of *total* that sum to it exactly."""
    if k < 1:
        raise ValueError("need at least one sharer")
    if k == 1:
        return [total]
    base = total / k
    first = [base] * (k - 1)
    # The remainder comes off the left-to-right float sum of the first
    # k-1 shares — the same order ``sum(shares)`` re-adds them — so the
    # verification sum lands on ``total`` bit-for-bit (the final
    # ``total - partial`` is exact by Sterbenz: partial >= total / 2).
    return first + [total - sum(first)]


def amortized_offer(offer: Offer, share: float, k: int, offer_id: int) -> Offer:
    """One sharer's seed-offer variant of a fully-priced *offer*.

    ``share`` is this sharer's slice of the money; the execution part of
    the time dimension divides by *k* while shipping stays per-sharer.
    """
    execute = min(offer.true_cost, offer.properties.total_time)
    ship = offer.properties.total_time - execute
    properties = replace(
        offer.properties,
        total_time=execute / k + ship,
        money=share,
    )
    return replace(
        offer,
        properties=properties,
        offer_id=offer_id,
        shared_by=k,
    )


@dataclass
class SharedPricing:
    """One (commodity, seller) amortization record."""

    epoch: str
    commodity: str  # canonical template key
    seller: str
    full_money: float
    full_time: float
    sharers: list[str]  # member session ids, share order
    shares: list[float]  # money shares, same order

    @property
    def reconciled(self) -> bool:
        """True when the shares sum to the full price *exactly*."""
        return sum(self.shares) == self.full_money

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "commodity": self.commodity,
            "seller": self.seller,
            "full_money": self.full_money,
            "full_time": self.full_time,
            "sharers": list(self.sharers),
            "shares": list(self.shares),
            "reconciled": self.reconciled,
        }


@dataclass
class SharedPricingLedger:
    """Append-only record of every epoch's amortizations."""

    records: list[SharedPricing] = field(default_factory=list)

    def record(self, pricing: SharedPricing) -> None:
        self.records.append(pricing)

    def reconcile(self) -> bool:
        """True when every recorded split sums back to its full price."""
        return all(r.reconciled for r in self.records)

    @property
    def full_total(self) -> float:
        return sum(r.full_money for r in self.records)

    @property
    def amortized_reuses(self) -> int:
        """Sharer slots beyond the first — prices served without work."""
        return sum(len(r.sharers) - 1 for r in self.records)

    def for_member(self, member_id: str) -> list[SharedPricing]:
        return [r for r in self.records if member_id in r.sharers]

    def to_dict(self) -> dict:
        return {
            "records": len(self.records),
            "full_total": self.full_total,
            "amortized_reuses": self.amortized_reuses,
            "reconciled": self.reconcile(),
        }
