"""Query Trading (QT): distributed query optimization by query trading.

A reproduction of Pentaris & Ioannidis, "Distributed Query Optimization
by Query Trading" (EDBT 2004).  The public API re-exports the pieces a
downstream user composes:

* build a federation — :func:`repro.bench.build_world` or
  :class:`repro.catalog.Catalog` directly,
* express queries — :func:`repro.sql.parse_query` /
  :class:`repro.sql.SPJQuery`,
* trade — :class:`repro.trading.QueryTrader` with
  :class:`repro.trading.SellerAgent` markets over a
  :class:`repro.net.Network`,
* validate — :mod:`repro.execution` runs the purchased plans.

See README.md for a quickstart and DESIGN.md for the full system map.
"""

from repro.catalog import Catalog, FederationConfig, build_federation
from repro.cost import (
    CardinalityEstimator,
    CostModel,
    NetworkParameters,
    NodeCapabilities,
    stats_for_catalog,
)
from repro.net import Network
from repro.obs import RunTelemetry, Tracer
from repro.optimizer import (
    DynamicProgrammingOptimizer,
    GreedyOptimizer,
    IDPOptimizer,
    PlanBuilder,
)
from repro.sql import SPJQuery, parse_query
from repro.trading import (
    BuyerPlanGenerator,
    QueryTrader,
    SellerAgent,
    Subcontractor,
    TradingResult,
)

__version__ = "1.0.0"

__all__ = [
    "Catalog",
    "FederationConfig",
    "build_federation",
    "CardinalityEstimator",
    "CostModel",
    "NetworkParameters",
    "NodeCapabilities",
    "stats_for_catalog",
    "Network",
    "RunTelemetry",
    "Tracer",
    "DynamicProgrammingOptimizer",
    "GreedyOptimizer",
    "IDPOptimizer",
    "PlanBuilder",
    "SPJQuery",
    "parse_query",
    "BuyerPlanGenerator",
    "QueryTrader",
    "SellerAgent",
    "Subcontractor",
    "TradingResult",
    "__version__",
]
