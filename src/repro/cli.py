"""Command-line interface: trade queries and regenerate experiments.

Usage::

    python -m repro trade "SELECT * FROM R0 r0 WHERE r0.cat = 3" \
        --nodes 8 --relations 3 --fragments 4 --replicas 2
    python -m repro trade "SELECT * FROM R0 r0 WHERE r0.cat = 3" \
        --fault-plan examples/fault_plan.json --timeout 0.05
    python -m repro explain "SELECT ..." --subquery R1 --json
    python -m repro critical-path trace.jsonl --top 10
    python -m repro diff-trace run_a.jsonl run_b.jsonl.gz
    python -m repro bench-check --regress-pct 0.5
    python -m repro telecom --offices 4 --views
    python -m repro experiment E3 E9
    python -m repro experiment --all
    python -m repro list-experiments
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Sequence

from repro.bench import build_world
from repro.bench import experiments as experiments_module
from repro.bench.experiments import ExperimentTable
from repro.cost import CardinalityEstimator, CostModel
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.execution.tables import materialize_catalog
from repro.faults import FaultInjector, FaultPlan, ResilientTrader
from repro.net import Network
from repro.optimizer import PlanBuilder
from repro.sql import ParseError, parse_query
from repro.trading import (
    BiddingProtocol,
    BuyerPlanGenerator,
    QueryTrader,
    SellerAgent,
)
from repro.workload import build_telecom_scenario

__all__ = ["main", "EXPERIMENTS"]

#: Registry of experiment id -> zero-argument callable producing a table.
EXPERIMENTS: dict[str, Callable[[], ExperimentTable]] = {
    "E1": experiments_module.e1_optimization_time_vs_joins,
    "E2": experiments_module.e2_plan_quality_vs_joins,
    "E3": experiments_module.e3_scalability_vs_nodes,
    "E4": experiments_module.e4_partitions_per_relation,
    "E5": experiments_module.e5_message_accounting,
    "E6": experiments_module.e6_iteration_convergence,
    "E7": experiments_module.e7_replication_degree,
    "E8": experiments_module.e8_strategies,
    "E9": experiments_module.e9_materialized_views,
    "E10": experiments_module.e10_plan_generator_variants,
    "E11": experiments_module.e11_subcontracting,
    "E12": experiments_module.e12_offer_ablations,
    "E13": experiments_module.e13_load_balancing,
    "E14": experiments_module.e14_mqo_overlap,
    "E-F1": experiments_module.ef1_drop_rate_sweep,
    "E-F2": experiments_module.ef2_crash_sweep,
    "E-F3": experiments_module.ef3_timeout_tuning,
}


def _add_negotiation_args(parser: argparse.ArgumentParser) -> None:
    """Arguments shared by every subcommand that runs a negotiation."""
    parser.add_argument("sql", help="SPJ(+aggregate) query text")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--relations", type=int, default=3)
    parser.add_argument("--rows", type=int, default=10_000)
    parser.add_argument("--fragments", type=int, default=4)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--plangen", choices=("dp", "idp"), default="dp",
        help="buyer plan generator variant",
    )
    parser.add_argument(
        "--fault-plan", metavar="JSON",
        help="JSON fault-plan file (see examples/fault_plan.json); "
             "negotiate under injected faults with the resilience stack",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.05,
        help="negotiation round deadline in simulated seconds "
             "(with --fault-plan; default 0.05)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="re-issues of an all-silent round (with --fault-plan)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the parallel trading engine "
             "(offer farm + full-lattice buyer DP); results are "
             "byte-identical to --workers 1",
    )
    parser.add_argument(
        "--parallel-threshold", type=int, default=512, metavar="PAIRS",
        help="minimum estimated join pairs in a buyer DP lattice level "
             "before it is shipped to the --workers pool; smaller "
             "levels run in-process to dodge the IPC tax. Only "
             "consulted when --workers > 1, and never changes results "
             "— it only picks where each level runs (default 512)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Query Trading (QT): distributed query optimization by "
            "trading query answers (Pentaris & Ioannidis, EDBT 2004)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    trade = sub.add_parser(
        "trade", help="optimize one SQL query over a synthetic federation"
    )
    _add_negotiation_args(trade)
    trade.add_argument(
        "--execute", action="store_true",
        help="materialize data, execute the plan, verify vs. centralized",
    )
    trade.add_argument(
        "--trace-out", "--trace", dest="trace", metavar="PATH",
        help="record the negotiation and write the trace to PATH "
             "(Chrome trace_event JSON for chrome://tracing / Perfetto, "
             "or flat JSONL; a .gz suffix gzip-compresses)",
    )
    trade.add_argument(
        "--trace-format", choices=("chrome", "jsonl"),
        help="trace file format; inferred from the --trace-out extension "
             "when omitted (.jsonl / .jsonl.gz -> jsonl, anything else "
             "-> chrome)",
    )
    trade.add_argument(
        "--timeline", action="store_true",
        help="print an ASCII per-site timeline of the traced "
             "negotiation (implies tracing)",
    )

    explain = sub.add_parser(
        "explain",
        help="run one traced trade and audit why each site won "
             "its commodity (decision-ledger provenance)",
    )
    _add_negotiation_args(explain)
    explain.add_argument(
        "--subquery", metavar="KEY",
        help="restrict the breakdown to awarded commodities whose "
             "query key contains KEY",
    )
    explain.add_argument(
        "--json", action="store_true",
        help="emit the audit as JSON (byte-identical across worker "
             "counts and repeated same-seed runs)",
    )

    critpath = sub.add_parser(
        "critical-path",
        help="replay a traced negotiation's causal DAG and print its "
             "critical path: per-phase latency decomposition, the "
             "bottleneck seller/link of every round, top-k segments",
    )
    critpath.add_argument("path", help="trace file (JSONL/Chrome, .gz ok)")
    critpath.add_argument(
        "--top", type=int, default=8,
        help="how many critical-path segments to list (default 8)",
    )
    critpath.add_argument(
        "--json", action="store_true",
        help="emit the decomposition as JSON (byte-identical across "
             "worker counts, clock implementations, and repeated "
             "same-seed runs)",
    )

    diff_trace = sub.add_parser(
        "diff-trace",
        help="structurally diff two deterministic traces; exit 1 and "
             "pinpoint the first divergent record if they differ",
    )
    diff_trace.add_argument("a", help="first trace (JSONL/Chrome, .gz ok)")
    diff_trace.add_argument("b", help="second trace")
    diff_trace.add_argument(
        "--context", type=int, default=3,
        help="shared-prefix records to show before the divergence",
    )
    diff_trace.add_argument("--json", action="store_true")

    bench_check = sub.add_parser(
        "bench-check",
        help="check the bench-history store against the regression gates",
    )
    bench_check.add_argument(
        "--history", metavar="PATH",
        default="benchmarks/results/bench_history.jsonl",
        help="bench-history JSONL store "
             "(default benchmarks/results/bench_history.jsonl)",
    )
    bench_check.add_argument(
        "--regress-pct", type=float, default=None, metavar="FRACTION",
        help="also fail if a speedup metric dropped by more than this "
             "fraction vs the previous same-CPU-count entry (e.g. 0.5)",
    )
    bench_check.add_argument("--json", action="store_true")

    telecom = sub.add_parser(
        "telecom", help="run the paper's motivating telecom scenario"
    )
    telecom.add_argument("--offices", type=int, default=4)
    telecom.add_argument("--customers", type=int, default=1_000)
    telecom.add_argument("--views", action="store_true",
                         help="enable the §3.5 materialized views")

    experiment = sub.add_parser(
        "experiment", help="regenerate experiment tables (E1..E11)"
    )
    experiment.add_argument("ids", nargs="*", help="experiment ids")
    experiment.add_argument("--all", action="store_true",
                            help="run the whole suite")
    experiment.add_argument(
        "--workers", type=int, default=1,
        help="run experiments in parallel worker processes; tables are "
             "printed in id order and identical to a serial run. With a "
             "single experiment the workers instead parallelize the "
             "experiment's own trades (offer farm + lattice buyer DP)",
    )
    experiment.add_argument(
        "--parallel-threshold", type=int, default=512, metavar="PAIRS",
        help="minimum estimated join pairs before a buyer DP level is "
             "shipped to the worker pool (single-experiment runs only; "
             "never changes results — default 512)",
    )

    report = sub.add_parser(
        "report", help="summarize traces written by trade --trace-out"
    )
    report.add_argument(
        "path",
        help="trace file (Chrome JSON or JSONL, .gz ok) or a directory "
             "of traces for a cross-run aggregate",
    )
    report.add_argument(
        "--top", type=int, default=8,
        help="how many slowest spans to list (default 8)",
    )

    sub.add_parser("list-experiments", help="list available experiments")

    serve = sub.add_parser(
        "serve",
        help="run the federation broker daemon (HTTP API for concurrent "
             "trading sessions; see docs/BROKER.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks a free one; default 8642)",
    )
    serve.add_argument("--nodes", type=int, default=8)
    serve.add_argument("--relations", type=int, default=6)
    serve.add_argument("--rows", type=int, default=10_000)
    serve.add_argument("--fragments", type=int, default=2)
    serve.add_argument("--replicas", type=int, default=2)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument(
        "--clock", choices=("sim", "async"), default="async",
        help="per-session clock: 'async' = real asyncio wall-time loop "
             "(the serving default), 'sim' = deterministic simulator",
    )
    serve.add_argument(
        "--max-concurrent", type=int, default=8,
        help="negotiations running at once (worker threads)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=32,
        help="admitted sessions that may wait; beyond this, submits "
             "are shed with HTTP 429",
    )
    serve.add_argument(
        "--budget-rounds", type=int, default=6,
        help="per-session cap on negotiation rounds (exhaustion "
             "returns a degraded result)",
    )
    serve.add_argument(
        "--budget-offers", type=int, default=None,
        help="per-session cap on offers evaluated (checked at round "
             "granularity; default unbudgeted)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="offer-farm worker processes shared across sessions",
    )
    serve.add_argument(
        "--mqo", action="store_true",
        help="enable cross-session multi-query optimization: concurrent "
             "sessions batch into trading epochs, shared subqueries are "
             "interned and priced once, and amortized seed offers are "
             "injected into each sharer (see docs/MQO.md)",
    )
    serve.add_argument(
        "--mqo-epoch-size", type=int, default=8, metavar="N",
        help="sessions per trading epoch before it seals (with --mqo; "
             "default 8)",
    )
    serve.add_argument(
        "--mqo-epoch-window", type=float, default=0.25, metavar="SECONDS",
        help="wall seconds a partial epoch waits for company before "
             "sealing anyway (with --mqo; default 0.25)",
    )
    serve.add_argument(
        "--live-obs", action="store_true",
        help="enable live serving observability: per-site statistics "
             "registry, q-error observatory, SLO tracking, Prometheus "
             "exposition at /metrics/prom, /sites, and /events "
             "(see docs/OBSERVABILITY.md)",
    )
    serve.add_argument(
        "--qerror-sample", type=int, default=4, metavar="N",
        help="run the q-error observatory on every Nth completed "
             "session (with --live-obs; 0 disables sampling; default 4)",
    )
    serve.add_argument(
        "--events-capacity", type=int, default=512, metavar="N",
        help="ring-buffer capacity of the /events stream "
             "(with --live-obs; default 512)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )

    sites = sub.add_parser(
        "sites",
        help="dump a live broker's per-site statistics registry "
             "(requires serve --live-obs)",
    )
    sites.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="broker base URL (default http://127.0.0.1:8642)",
    )
    sites.add_argument(
        "--json", action="store_true",
        help="emit the raw /sites payload as JSON",
    )
    sites.add_argument(
        "--trace-out", metavar="PATH",
        help="also write live.site/live.qerror JSONL rows to PATH; "
             "`repro report PATH` renders them as a per-site table",
    )
    return parser


def _negotiate(args: argparse.Namespace, tracer=None):
    """Build a federation from ``args`` and run one negotiation.

    Returns ``(result, injector, world, query, exit_code)``; on a
    setup error ``result`` is ``None`` and ``exit_code`` explains why.
    Shared by ``trade`` and ``explain`` so both see the identical
    federation.
    """
    import itertools

    import repro.trading.commodity as commodity_mod

    # Offer ids come from a module-global counter; reseed it so repeated
    # same-seed invocations mint identical ids and traces/ledgers are
    # byte-comparable across runs and worker counts.
    commodity_mod._offer_ids = itertools.count(1)
    world = build_world(
        nodes=args.nodes,
        n_relations=args.relations,
        rows=args.rows,
        fragments=args.fragments,
        replicas=args.replicas,
        seed=args.seed,
    )
    try:
        query = parse_query(args.sql, world.catalog.schemas)
    except ParseError as exc:
        print(f"cannot parse query: {exc}", file=sys.stderr)
        return None, None, None, None, 2
    network = Network(world.model)
    if tracer is not None:
        network.attach_tracer(tracer)
    injector = None
    if args.fault_plan:
        try:
            fault_plan = FaultPlan.from_file(args.fault_plan)
        except (OSError, ValueError) as exc:
            print(f"cannot load fault plan: {exc}", file=sys.stderr)
            return None, None, None, None, 2
        injector = FaultInjector(fault_plan)
        network.install_faults(injector)
    if injector:
        protocol = BiddingProtocol(
            timeout=args.timeout, max_retries=args.max_retries
        )
    else:
        protocol = BiddingProtocol()
    if args.workers > 1:
        from repro.parallel import OfferFarm

        protocol.attach_farm(OfferFarm(args.workers))
    trader = QueryTrader(
        "client",
        world.seller_agents(),
        network,
        BuyerPlanGenerator(
            world.builder, "client", mode=args.plangen,
            workers=args.workers,
            parallel_threshold=args.parallel_threshold,
        ),
        protocol=protocol,
    )
    if injector is not None:
        result = ResilientTrader(trader, injector).optimize(query)
    else:
        result = trader.optimize(query)
    return result, injector, world, query, 0


def _cmd_trade(args: argparse.Namespace) -> int:
    tracer = None
    if args.trace or args.timeline:
        from repro.obs import Tracer

        tracer = Tracer()
    result, injector, world, query, code = _negotiate(args, tracer)
    if result is None:
        return code
    if tracer is not None:
        _export_trace(tracer, args)
    if not result.found:
        print("no distributed plan could be negotiated", file=sys.stderr)
        return 1
    print(
        f"negotiated in {result.iterations} round(s); "
        f"{result.offers_considered} offers, "
        f"{result.messages.messages} messages, "
        f"{result.optimization_time:.4f}s simulated optimization time"
    )
    print(f"messages by type: {result.messages.describe_types()}")
    if injector is not None:
        stats = result.messages
        print(
            f"faults: {stats.dropped} dropped, {stats.duplicated} duplicated, "
            f"{stats.retried} re-sent; {result.resilience.describe()}"
        )
    print(f"plan (estimated response time {result.plan_cost:.4f}s):")
    print(result.best.plan.explain())
    print("contracts:")
    for contract in result.contracts:
        print(" ", contract.describe())
    if args.execute:
        data = FederationData.build(world.catalog, seed=args.seed)
        answer = PlanExecutor(data, query).run(result.best.plan)
        reference = evaluate_query(query, data)
        ok = answer.equals_unordered(reference)
        print(f"execution check: {'MATCH' if ok else 'MISMATCH'} "
              f"({len(answer.rows)} rows)")
        if not ok:
            return 1
    return 0


def _export_trace(tracer, args: argparse.Namespace) -> None:
    """Write/print what ``--trace``/``--timeline`` asked for."""
    from repro.obs import render_timeline, write_chrome_trace, write_jsonl

    if args.trace:
        fmt = args.trace_format
        if fmt is None:
            stem = args.trace[:-3] if args.trace.endswith(".gz") else args.trace
            fmt = "jsonl" if stem.endswith(".jsonl") else "chrome"
        if fmt == "chrome":
            write_chrome_trace(tracer.records, args.trace)
        else:
            write_jsonl(tracer.records, args.trace)
        print(
            f"trace: {len(tracer.records)} records -> {args.trace} ({fmt})"
        )
    if args.timeline:
        print(render_timeline(tracer.records))


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import Tracer, explain

    tracer = Tracer()
    result, _injector, _world, _query, code = _negotiate(args, tracer)
    if result is None:
        return code
    if result.ledger is None:
        print("no decision ledger was recorded", file=sys.stderr)
        return 1
    explanation = explain(result, subquery=args.subquery)
    if args.json:
        print(explanation.to_json())
    else:
        try:
            print(explanation.render())
        except BrokenPipeError:
            return 0
    return 0 if explanation.found else 1


def _cmd_critical_path(args: argparse.Namespace) -> int:
    from repro.obs import CriticalPath, load_trace

    try:
        rows = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load trace: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print("trace is empty", file=sys.stderr)
        return 1
    critical = CriticalPath.from_rows(rows)
    if critical is None:
        print(
            "trace carries no trading rounds (was it recorded with "
            "trade --trace-out?)",
            file=sys.stderr,
        )
        return 1
    try:
        if args.json:
            print(critical.to_json(top=args.top))
        else:
            print(critical.render(top=args.top))
    except BrokenPipeError:
        return 0
    return 0


def _cmd_diff_trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs import diff_rows, load_trace

    try:
        rows_a = load_trace(args.a)
        rows_b = load_trace(args.b)
    except (OSError, ValueError) as exc:
        print(f"cannot load trace: {exc}", file=sys.stderr)
        return 2
    diff = diff_rows(rows_a, rows_b, context=args.context)
    if args.json:
        print(json_module.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render())
    return 0 if diff.identical else 1


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs import (
        DEFAULT_GATES,
        BenchHistory,
        check_drift,
        check_gates,
        render_check,
    )

    store = BenchHistory(args.history)
    history = store.load()
    if not history:
        print(f"no bench history at {args.history}", file=sys.stderr)
        return 2
    latest = store.latest()
    verdicts = check_gates(latest, DEFAULT_GATES)
    if args.regress_pct is not None:
        verdicts += check_drift(store, latest, args.regress_pct)
    failed = [v for v in verdicts if v["status"] == "FAIL"]
    if args.json:
        print(json_module.dumps(
            {"history": args.history, "entries": len(history),
             "verdicts": verdicts, "failed": len(failed)},
            indent=2, sort_keys=True,
        ))
    else:
        print(render_check(latest, verdicts))
    return 1 if failed else 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from repro.obs import (
        load_trace,
        load_trace_dir,
        render_multi_report,
        render_report,
    )

    if os.path.isdir(args.path):
        try:
            runs = load_trace_dir(args.path)
        except OSError as exc:
            print(f"cannot read trace directory: {exc}", file=sys.stderr)
            return 2
        if not runs:
            print("no readable traces in directory", file=sys.stderr)
            return 1
        try:
            print(render_multi_report(runs, top=args.top))
        except BrokenPipeError:
            return 0
        return 0
    try:
        rows = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot load trace: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print("trace is empty", file=sys.stderr)
        return 1
    try:
        print(render_report(rows, top=args.top))
    except BrokenPipeError:  # e.g. piped into head
        return 0
    return 0


def _cmd_telecom(args: argparse.Namespace) -> int:
    scenario = build_telecom_scenario(
        n_offices=args.offices,
        customers_per_office=args.customers,
        with_views=args.views,
    )
    estimator = CardinalityEstimator(scenario.stats, scenario.catalog.schemas)
    model = CostModel()
    builder = PlanBuilder(estimator, model, schemes=scenario.catalog.schemes)
    network = Network(model)
    sellers = {
        node: SellerAgent(scenario.catalog.local(node), builder)
        for node in scenario.nodes
    }
    trader = QueryTrader(
        "athens-client", sellers, network,
        BuyerPlanGenerator(builder, "athens-client"),
    )
    query = scenario.manager_query()
    print("query:", query.sql())
    result = trader.optimize(query)
    print(f"plan cost {result.plan_cost:.4f}s, "
          f"{result.messages.messages} messages")
    print(result.best.plan.explain())
    data = FederationData(
        scenario.catalog,
        materialize_catalog(scenario.catalog, 0, scenario.row_factories),
    )
    answer = PlanExecutor(data, query).run(result.best.plan)
    for row in answer.canonical():
        print(" ", dict(zip(answer.columns, row)))
    return 0


def _render_experiment(experiment_id: str) -> str:
    """Run one registered experiment and render its table.

    Module-level so the parallel experiment runner can ship it to
    worker processes by reference.
    """
    return EXPERIMENTS[experiment_id]().render()


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = [i.upper() for i in args.ids]
    if args.all:
        ids = list(EXPERIMENTS)
    if not ids:
        print("no experiments selected (use ids or --all)", file=sys.stderr)
        return 2
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}", file=sys.stderr)
        return 2
    workers = getattr(args, "workers", 1)
    if workers > 1 and len(ids) > 1:
        # Each experiment is self-contained (fresh worlds, fresh
        # networks), so whole experiments farm out cleanly; tables are
        # printed in id order regardless of completion order.
        from repro.parallel import get_pool

        try:
            pool = get_pool(min(workers, len(ids)))
            futures = [pool.submit(_render_experiment, i) for i in ids]
            for future in futures:
                print(future.result())
                print()
            return 0
        except Exception as exc:  # pool unavailable: run serially
            print(f"parallel run unavailable ({exc}); running serially",
                  file=sys.stderr)
    elif workers > 1:
        # A single experiment cannot be farmed whole, so parallelize
        # *inside* it instead: the harness defaults hand every trade the
        # worker pool (results are byte-identical either way).
        from repro.bench.harness import set_parallel_defaults

        set_parallel_defaults(
            workers=workers,
            parallel_threshold=getattr(args, "parallel_threshold", None),
        )
    for experiment_id in ids:
        print(_render_experiment(experiment_id))
        print()
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:5s} {doc}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.broker import (
        AdmissionConfig,
        BrokerService,
        SessionBudget,
        start_server,
    )

    mqo = None
    if args.mqo:
        from repro.mqo import MQOConfig

        mqo = MQOConfig(
            epoch_size=args.mqo_epoch_size,
            epoch_window=args.mqo_epoch_window,
        )
    live_obs = None
    if args.live_obs:
        from repro.obs.live import LiveObsConfig

        live_obs = LiveObsConfig(
            qerror_sample_every=args.qerror_sample,
            data_seed=args.seed,
            events_capacity=args.events_capacity,
        )
    service = BrokerService(
        world_config=dict(
            nodes=args.nodes,
            n_relations=args.relations,
            rows=args.rows,
            fragments=args.fragments,
            replicas=args.replicas,
            seed=args.seed,
        ),
        clock=args.clock,
        admission=AdmissionConfig(
            max_concurrent=args.max_concurrent,
            queue_limit=args.queue_limit,
            budget=SessionBudget(
                rounds=args.budget_rounds, offers=args.budget_offers
            ),
        ),
        farm_workers=args.workers,
        mqo=mqo,
        live_obs=live_obs,
    )
    server = start_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    mode = (
        f"clock={args.clock}"
        + (", mqo=on" if args.mqo else "")
        + (", live-obs=on" if args.live_obs else "")
    )
    print(f"broker listening on {server.url} ({mode})")
    print(f"  POST {server.url}/sessions          submit a query")
    print(f"  GET  {server.url}/sessions/<id>     session status")
    print(f"  GET  {server.url}/sessions/<id>/result")
    print(f"  GET  {server.url}/sessions/<id>/explain")
    print(f"  GET  {server.url}/metrics", end="")
    if args.live_obs:
        print()
        print(f"  GET  {server.url}/metrics/prom      Prometheus text format")
        print(f"  GET  {server.url}/sites             per-site live registry")
        print(f"  GET  {server.url}/events?since=N    recent event ring",
              end="")
    # Flush so wrappers piping stdout see the URL before first request.
    print(flush=True)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown_broker()
    return 0


def _live_trace_rows(payload: dict) -> list[dict]:
    """``/sites`` payload -> ``live.site``/``live.qerror`` trace rows.

    The rows are flat-JSONL trace records (``kind: event``) carrying
    precomputed scalars, so ``repro report`` renders them without
    knowing anything about sketches.
    """
    from repro.obs.live import QuantileSketch

    rows: list[dict] = []
    for site, stats in sorted((payload.get("sites") or {}).items()):
        settled = QuantileSketch.from_dict(stats.get("settled") or {})
        latency = QuantileSketch.from_dict(stats.get("latency") or {})
        rows.append({
            "kind": "event",
            "name": "live.site",
            "cat": "live",
            "sim_start": 0.0,
            "sim_end": 0.0,
            "site": site,
            "args": {
                "wins": stats.get("wins", 0),
                "losses": stats.get("losses", 0),
                "win_rate": stats.get("win_rate", 0.0),
                "offers_priced": stats.get("offers_priced", 0),
                "offers_received": stats.get("offers_received", 0),
                "rfbs_handled": stats.get("rfbs_handled", 0),
                "rfbs_answered": stats.get("rfbs_answered", 0),
                "settled_mean": round(settled.mean, 9),
                "latency_p95": latency.quantile(0.95),
            },
        })
    for key, cell in sorted((payload.get("qerror") or {}).get(
            "cells", {}).items()):
        site, _, size = key.rpartition("|")
        rows.append({
            "kind": "event",
            "name": "live.qerror",
            "cat": "live",
            "sim_start": 0.0,
            "sim_end": 0.0,
            "site": site,
            "args": {
                "relations": size,
                "count": cell.get("count", 0),
                "mean": cell.get("mean", 0.0),
                "max": cell.get("max", 0.0),
                "p50": cell.get("p50", 0.0),
                "p90": cell.get("p90", 0.0),
            },
        })
    return rows


def _cmd_sites(args: argparse.Namespace) -> int:
    import json as json_module
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/sites"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            body = resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"broker refused {url}: HTTP {exc.code} {detail}",
              file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot reach broker at {url}: {exc}", file=sys.stderr)
        return 2
    payload = json_module.loads(body)
    # Flatten the nested payload once: registry state lives under
    # "sites", the q-error snapshot under "qerror".
    registry = payload.get("sites") or {}
    flat = {"sites": registry.get("sites"), "qerror": payload.get("qerror")}
    rows = _live_trace_rows(flat)
    if args.trace_out:
        with open(args.trace_out, "w") as fh:
            for row in rows:
                fh.write(json_module.dumps(row, sort_keys=True) + "\n")
        print(f"live-obs trace: {len(rows)} rows -> {args.trace_out}",
              file=sys.stderr)
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    from repro.obs import render_report

    print(
        f"broker live registry: {registry.get('sessions', 0)} sessions, "
        f"{registry.get('rounds', 0)} rounds, "
        f"rfb fanout {registry.get('rfb_fanout', 0)} "
        f"(response ratio {registry.get('response_ratio', 0.0):.1%})"
    )
    if rows:
        # The report renderer already knows how to draw live rows.
        report = render_report(rows)
        print("\n".join(report.splitlines()[1:]).lstrip("\n"))
    offenders = payload.get("worst_estimators") or []
    if offenders:
        print()
        print("worst estimator buckets (by q-error p90):")
        for entry in offenders:
            print(
                f"  {entry.get('site', '?')} x{entry.get('relations', '?')} "
                f"relations: p90={entry.get('p90', 0.0):g} "
                f"mean={entry.get('mean', 0.0):g} "
                f"n={entry.get('count', 0)}"
            )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "trade": _cmd_trade,
        "explain": _cmd_explain,
        "critical-path": _cmd_critical_path,
        "diff-trace": _cmd_diff_trace,
        "bench-check": _cmd_bench_check,
        "telecom": _cmd_telecom,
        "experiment": _cmd_experiment,
        "report": _cmd_report,
        "list-experiments": _cmd_list,
        "serve": _cmd_serve,
        "sites": _cmd_sites,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
