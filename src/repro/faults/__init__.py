"""Fault injection & resilience for unreliable federations.

The paper targets "very large autonomous federations" — where remote
sites are slow, overloaded, or gone mid-negotiation.  This package makes
that world testable, deterministically:

* :class:`FaultPlan` — pure data: per-link drop/duplicate/delay-spike
  rates, per-site crash/recover schedules, an RNG seed; JSON in/out.
* :class:`FaultInjector` — plugs a plan into a
  :class:`~repro.net.simulator.Network` via its delivery-interception
  hook.  No plan (or a null plan) ⇒ byte-identical behavior to the
  fault-free fabric.
* :class:`ResilientTrader` — the buyer-side survival machinery: round
  deadlines with backoff re-issue live in the negotiation protocol;
  this wrapper adds post-award contract renegotiation when winning
  sellers crash before delivery.
"""

from repro.faults.injector import FaultInjector, InjectionLog
from repro.faults.plan import ANY, CrashWindow, FaultPlan, LinkFaults
from repro.faults.resilience import RenegotiationPolicy, ResilientTrader

__all__ = [
    "ANY",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "InjectionLog",
    "LinkFaults",
    "RenegotiationPolicy",
    "ResilientTrader",
]
