"""The fault injector: turns a :class:`~repro.faults.plan.FaultPlan`
into message-level behavior at the network's delivery hook.

Determinism contract
--------------------

* All randomness comes from one private ``random.Random(plan.seed)``;
  since :class:`~repro.net.simulator.Network` sends are already fully
  ordered, the fault sequence is a pure function of (plan, workload).
* A draw happens **only** when the corresponding rate is non-zero, so a
  link with all-zero rates consumes no randomness — installing a null
  plan replays the fault-free run byte-for-byte (delivery times, event
  ordering, and stats all unchanged; the zero-fault equivalence tests
  pin this).
* Draw order per message is fixed: drop, then delay spike, then
  duplicate (each skipped when its rate is zero).

Crash semantics
---------------

A site that is down neither sends nor receives: a message departing
while its sender is down is dropped at the source; a delivery whose
recipient is down at the arrival instant is dropped at the door (each
copy of a duplicated message is checked at its own arrival time, so a
recovering site can catch the late copy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.plan import FaultPlan
from repro.net.messages import Message
from repro.net.simulator import Network

__all__ = ["FaultInjector", "InjectionLog"]


@dataclass
class InjectionLog:
    """What the injector did, for reporting and debugging."""

    intercepted: int = 0
    dropped_link: int = 0
    dropped_sender_down: int = 0
    dropped_recipient_down: int = 0
    duplicated: int = 0
    delay_spikes: int = 0

    @property
    def dropped(self) -> int:
        return (
            self.dropped_link
            + self.dropped_sender_down
            + self.dropped_recipient_down
        )


class FaultInjector:
    """Seeded, deterministic interception of network deliveries.

    Install with :meth:`Network.install_faults`; the network then routes
    every send through :meth:`intercept`, which returns the transit
    delays of the surviving copies (an empty list means the message was
    lost).  Returning *delays* rather than arrival instants matters:
    the network schedules each copy at ``depart + delay`` and stamps
    the same ``lat`` on the ``msg.deliver`` trace event, so the causal
    critical-path replay (which recomputes ``depart + lat``) reproduces
    the simulator's arithmetic bit-for-bit — and a clean link's delay
    is the exact :meth:`Network.message_delay` value the fault-free
    path stamps, keeping a null plan byte-invisible in the causal DAG.
    Aggregate drop/duplicate counters are mirrored into the network's
    :class:`~repro.net.simulator.NetworkStats` so trading results
    report them alongside message counts.
    """

    def __init__(self, plan: FaultPlan | None = None):
        self.plan = plan or FaultPlan()
        self.rng = random.Random(self.plan.seed)
        self.log = InjectionLog()

    # -- site liveness -----------------------------------------------------
    def is_down(self, node: str, t: float) -> bool:
        return self.plan.is_down(node, t)

    def down_during(self, node: str, start: float, end: float) -> bool:
        return self.plan.down_during(node, start, end)

    # -- the network hook --------------------------------------------------
    def intercept(
        self, network: Network, message: Message, depart: float
    ) -> list[float]:
        """Transit delays of *message*'s surviving copies."""
        tracer = network.tracer
        self.log.intercepted += 1
        if self.is_down(message.sender, depart):
            self.log.dropped_sender_down += 1
            network.stats.dropped += 1
            if tracer.enabled:
                tracer.event(
                    "fault.drop", "fault", site=message.sender,
                    reason="sender_down", kind=message.kind.value,
                    mid=message.mid,
                )
            return []
        link = self.plan.link_for(message.sender, message.recipient)
        if link.drop_rate > 0 and self.rng.random() < link.drop_rate:
            self.log.dropped_link += 1
            network.stats.dropped += 1
            if tracer.enabled:
                tracer.event(
                    "fault.drop", "fault", site=message.recipient,
                    reason="link", kind=message.kind.value,
                    mid=message.mid,
                )
            return []
        delay = network.message_delay(message)
        if link.delay_spike_rate > 0 and self.rng.random() < link.delay_spike_rate:
            self.log.delay_spikes += 1
            delay += link.delay_spike_seconds * self.rng.uniform(1.0, 2.0)
            if tracer.enabled:
                tracer.event(
                    "fault.delay_spike", "fault", site=message.recipient,
                    kind=message.kind.value, mid=message.mid,
                )
        delays = [delay]
        if link.duplicate_rate > 0 and self.rng.random() < link.duplicate_rate:
            self.log.duplicated += 1
            network.stats.duplicated += 1
            if tracer.enabled:
                tracer.event(
                    "fault.duplicate", "fault", site=message.recipient,
                    kind=message.kind.value, mid=message.mid,
                )
            # The duplicate takes its own (slower) trip over the link.
            delays.append(
                delay + network.message_delay(message) * self.rng.uniform(0.5, 1.5)
            )
        delivered = []
        for lat in delays:
            if self.is_down(message.recipient, depart + lat):
                self.log.dropped_recipient_down += 1
                network.stats.dropped += 1
                if tracer.enabled:
                    tracer.event(
                        "fault.drop", "fault", site=message.recipient,
                        reason="recipient_down", kind=message.kind.value,
                        mid=message.mid,
                    )
                continue
            delivered.append(lat)
        return delivered
