"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is pure data — per-link message fault rates and
per-site crash/recover schedules plus an RNG seed — so a plan can be
serialized to JSON, committed next to an experiment, and replayed
bit-for-bit.  The :class:`~repro.faults.injector.FaultInjector` turns a
plan into behavior; the plan itself never draws randomness (crash
schedules are explicit time windows, not rates, which keeps "which site
died when" reviewable in the plan file).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field, replace
from typing import Iterable, Mapping

__all__ = ["LinkFaults", "CrashWindow", "FaultPlan"]

#: Matches any sender/recipient in a link override.
ANY = "*"


@dataclass(frozen=True)
class LinkFaults:
    """Per-link message fault distribution.

    ``drop_rate``/``duplicate_rate``/``delay_spike_rate`` are per-message
    Bernoulli probabilities; ``delay_spike_seconds`` scales the extra
    delay added when a spike fires (the injector samples the magnitude
    uniformly in ``[1, 2) × delay_spike_seconds``).
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_spike_rate: float = 0.0
    delay_spike_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "delay_spike_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.delay_spike_seconds < 0:
            raise ValueError("delay_spike_seconds cannot be negative")

    @property
    def is_null(self) -> bool:
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.delay_spike_rate == 0.0
        )


@dataclass(frozen=True)
class CrashWindow:
    """One crash interval of a site: down in ``[crash_at, recover_at)``.

    ``recover_at=None`` means the site never comes back.
    """

    crash_at: float
    recover_at: float | None = None

    def __post_init__(self) -> None:
        if self.crash_at < 0:
            raise ValueError("crash_at cannot be negative")
        if self.recover_at is not None and self.recover_at <= self.crash_at:
            raise ValueError("recover_at must be after crash_at")

    def covers(self, t: float) -> bool:
        if t < self.crash_at:
            return False
        return self.recover_at is None or t < self.recover_at

    def overlaps(self, start: float, end: float) -> bool:
        """Does the window intersect ``[start, end]`` (end may be inf)?"""
        if end < self.crash_at:
            return False
        return self.recover_at is None or start < self.recover_at


@dataclass(frozen=True)
class FaultPlan:
    """A complete, serializable description of an unreliable federation.

    Parameters
    ----------
    seed:
        Seed of the injector's private RNG; two injectors built from
        equal plans replay the identical fault sequence.
    default_link:
        Fault rates applied to every link without an explicit override.
    links:
        Overrides keyed by ``(sender, recipient)``; either side may be
        ``"*"`` to match any node.  Most-specific match wins:
        exact > ``(sender, *)`` > ``(*, recipient)`` > default.
    crashes:
        Per-site crash schedules, each a tuple of :class:`CrashWindow`.
    """

    seed: int = 0
    default_link: LinkFaults = field(default_factory=LinkFaults)
    links: Mapping[tuple[str, str], LinkFaults] = field(default_factory=dict)
    crashes: Mapping[str, tuple[CrashWindow, ...]] = field(default_factory=dict)

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            self.default_link.is_null
            and all(link.is_null for link in self.links.values())
            and not self.crashes
        )

    # -- lookups -----------------------------------------------------------
    def link_for(self, sender: str, recipient: str) -> LinkFaults:
        for key in (
            (sender, recipient),
            (sender, ANY),
            (ANY, recipient),
        ):
            link = self.links.get(key)
            if link is not None:
                return link
        return self.default_link

    def windows_for(self, node: str) -> tuple[CrashWindow, ...]:
        return self.crashes.get(node, ())

    def is_down(self, node: str, t: float) -> bool:
        return any(w.covers(t) for w in self.windows_for(node))

    def down_during(self, node: str, start: float, end: float) -> bool:
        """Is *node* down at any point of ``[start, end]``?"""
        return any(w.overlaps(start, end) for w in self.windows_for(node))

    # -- construction helpers ---------------------------------------------
    @classmethod
    def uniform(
        cls,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_spike_rate: float = 0.0,
        delay_spike_seconds: float = 0.0,
        crashes: Mapping[str, Iterable[CrashWindow]] | None = None,
        seed: int = 0,
    ) -> "FaultPlan":
        """Same fault rates on every link (the sweep experiments' shape)."""
        return cls(
            seed=seed,
            default_link=LinkFaults(
                drop_rate=drop_rate,
                duplicate_rate=duplicate_rate,
                delay_spike_rate=delay_spike_rate,
                delay_spike_seconds=delay_spike_seconds,
            ),
            crashes={
                node: tuple(windows)
                for node, windows in (crashes or {}).items()
            },
        )

    def with_crash(
        self, node: str, crash_at: float, recover_at: float | None = None
    ) -> "FaultPlan":
        """A copy with one more crash window appended for *node*."""
        crashes = {n: tuple(ws) for n, ws in self.crashes.items()}
        crashes[node] = crashes.get(node, ()) + (
            CrashWindow(crash_at, recover_at),
        )
        return replace(self, crashes=crashes)

    # -- JSON --------------------------------------------------------------
    def to_json(self) -> dict:
        return {
            "seed": self.seed,
            "default_link": asdict(self.default_link),
            "links": [
                {"sender": sender, "recipient": recipient, **asdict(link)}
                for (sender, recipient), link in sorted(self.links.items())
            ],
            "crashes": [
                {
                    "node": node,
                    "crash_at": w.crash_at,
                    "recover_at": w.recover_at,
                }
                for node, windows in sorted(self.crashes.items())
                for w in windows
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "FaultPlan":
        unknown = set(data) - {"seed", "default_link", "links", "crashes"}
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        links: dict[tuple[str, str], LinkFaults] = {}
        for entry in data.get("links", ()):
            entry = dict(entry)
            sender = entry.pop("sender", ANY)
            recipient = entry.pop("recipient", ANY)
            links[(sender, recipient)] = LinkFaults(**entry)
        crashes: dict[str, tuple[CrashWindow, ...]] = {}
        for entry in data.get("crashes", ()):
            entry = dict(entry)
            node = entry.pop("node")
            crashes[node] = crashes.get(node, ()) + (CrashWindow(**entry),)
        return cls(
            seed=int(data.get("seed", 0)),
            default_link=LinkFaults(**data.get("default_link", {})),
            links=links,
            crashes=crashes,
        )

    def to_file(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_json(), indent=2) + "\n"
        )

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "FaultPlan":
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))
