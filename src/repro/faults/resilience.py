"""Contract renegotiation: surviving seller crashes struck after award.

QT's negotiation moves no data, so a crashed winner is cheap to route
around: the buyer *voids* the dead seller's contracts (they owe nothing,
nothing shipped) and re-trades only the uncovered subqueries against the
surviving sites, then reassembles a full plan from the surviving
purchases plus the replacements.  Three escalation tiers:

1. **Subquery re-trade + DP reassembly** — each voided contract's query
   is re-auctioned among survivors (a short negotiation), and the buyer
   plan generator recombines surviving + replacement offers with its
   normal dynamic program.
2. **Greedy reassembly** — if the DP pass blows the renegotiation budget
   (``RenegotiationPolicy.dp_budget`` enumerated plans) or finds
   nothing, a deliberately tiny plan generator (IDP with ``m=1``, small
   fan-in/union budgets — effectively greedy) reassembles instead.
3. **Full re-trade** — if reassembly still fails (e.g. replacements
   could not cover the hole at the old granularity), the whole query is
   re-traded from scratch with the crashed sites excluded
   (:meth:`~repro.trading.trader.QueryTrader.retrade_after_failure`).

All message/time accounting spans the *entire* resilient run, and
:class:`~repro.trading.trader.ResilienceSummary` reports what happened.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.injector import FaultInjector
from repro.net.messages import Message, MessageKind
from repro.obs.ledger import NegotiationLedger
from repro.obs.metrics import RunTelemetry
from repro.trading.buyer import BuyerPlanGenerator, CandidatePlan, PlanGenResult
from repro.trading.contracts import Contract
from repro.trading.trader import QueryTrader, ResilienceSummary, TradingResult
from repro.sql.query import SPJQuery

__all__ = ["RenegotiationPolicy", "ResilientTrader"]


@dataclass(frozen=True)
class RenegotiationPolicy:
    """Knobs of the renegotiation machinery."""

    #: Renegotiation rounds before the buyer gives up chasing crashes.
    max_rounds: int = 3
    #: Enumerated-plan budget for the DP reassembly; beyond it the
    #: greedy fallback's (cheaper) plan is used instead.
    dp_budget: int = 50_000
    #: Trading rounds per uncovered-subquery re-trade (keep it short:
    #: the commodity is known, only the counterparty changed).
    retrade_iterations: int = 2
    #: How far past the negotiation's end a scheduled crash still voids
    #: a winner ("crashes before delivery"); ``inf`` = any future crash.
    delivery_horizon: float = float("inf")


class ResilientTrader:
    """Buyer-side driver that survives a faulty federation.

    Wraps a :class:`~repro.trading.trader.QueryTrader` and the
    :class:`~repro.faults.injector.FaultInjector` governing its network:
    runs the normal negotiation (the protocol's deadlines handle message
    loss), then checks winners against the injector's crash schedules
    and renegotiates contracts whose sellers die before delivery.
    """

    def __init__(
        self,
        trader: QueryTrader,
        injector: FaultInjector,
        policy: RenegotiationPolicy | None = None,
        fault_free_cost: float | None = None,
    ):
        self.trader = trader
        self.injector = injector
        self.policy = policy or RenegotiationPolicy()
        self.fault_free_cost = fault_free_cost

    # ------------------------------------------------------------------
    def optimize(self, query: SPJQuery) -> TradingResult:
        trader = self.trader
        net = trader.network
        start_time = net.now
        start_stats = net.stats.snapshot()
        start_cache = trader._cache_stats()
        # Telemetry must span the *whole* resilient run (initial trade
        # plus every renegotiation), so the per-trade telemetry the
        # inner optimize() calls attach is recomputed from this mark.
        tracer = net.tracer
        mark = len(tracer.records)

        result = trader.optimize(query)
        summary = result.resilience
        summary.fault_free_cost = self.fault_free_cost

        # Tier 0: the negotiation itself came up empty — deadlines closed
        # rounds before enough offers survived the lossy links.  Re-run
        # the whole trade: the injector's RNG stream has advanced, so a
        # fresh attempt sees a different loss pattern.
        for attempt in range(self.policy.max_rounds):
            if result.best is not None:
                break
            summary.renegotiations += 1
            if tracer.enabled:
                tracer.event(
                    "resilience.retrade", "resilience", site=trader.buyer,
                    attempt=attempt + 1, reason="no_plan",
                )
            down_now = {
                node
                for node in trader.sellers
                if self.injector.plan.is_down(node, net.now)
            }
            fresh = trader.retrade_after_failure(query, down_now)
            summary.timeouts_fired += fresh.resilience.timeouts_fired
            summary.retries += fresh.resilience.retries
            result = fresh

        excluded: set[str] = set()
        for _ in range(self.policy.max_rounds):
            failed = self._failed_winners(result, excluded)
            if not failed or result.best is None:
                break
            excluded |= failed
            result = self._renegotiate(query, result, excluded, summary)

        # Whole-run accounting: initial negotiation + all renegotiations.
        result.optimization_time = net.now - start_time
        result.messages = net.stats.delta_since(start_stats)
        result.cache = trader._cache_stats().delta_since(start_cache)
        summary.final_cost = (
            result.best.properties.total_time
            if result.best is not None
            else None
        )
        result.resilience = summary
        if tracer.enabled:
            result.telemetry = RunTelemetry.from_records(
                tracer.records[mark:]
            )
            result.ledger = NegotiationLedger.from_records(
                tracer.records[mark:]
            )
        return result

    # ------------------------------------------------------------------
    def _failed_winners(
        self, result: TradingResult, excluded: set[str]
    ) -> set[str]:
        """Winners that are (or will be) down before delivery."""
        now = self.trader.network.now
        deadline = now + self.policy.delivery_horizon
        return {
            c.seller
            for c in result.contracts
            if c.seller not in excluded
            and self.injector.down_during(c.seller, now, deadline)
        }

    # ------------------------------------------------------------------
    def _renegotiate(
        self,
        query: SPJQuery,
        prior: TradingResult,
        excluded: set[str],
        summary: ResilienceSummary,
    ) -> TradingResult:
        tracer = self.trader.network.tracer
        if not tracer.enabled:
            return self._renegotiate_inner(query, prior, excluded, summary)
        before = summary.contracts_voided
        with tracer.span(
            "resilience.renegotiate", "resilience", site=self.trader.buyer,
            excluded=len(excluded),
        ) as span:
            result = self._renegotiate_inner(query, prior, excluded, summary)
            span.set(voided=summary.contracts_voided - before)
            return result

    def _renegotiate_inner(
        self,
        query: SPJQuery,
        prior: TradingResult,
        excluded: set[str],
        summary: ResilienceSummary,
    ) -> TradingResult:
        trader = self.trader
        net = trader.network
        summary.renegotiations += 1

        voided = [c for c in prior.contracts if c.seller in excluded]
        surviving = [c for c in prior.contracts if c.seller not in excluded]
        summary.contracts_voided += len(voided)
        summary.voided.extend(c.void() for c in voided)
        if net.tracer.enabled:
            for contract in voided:
                net.tracer.event(
                    "ledger.void", "decision", site=trader.buyer,
                    offer=contract.offer.offer_id,
                    seller=contract.seller,
                    request=contract.offer.request_key,
                )
        self._notify_voided(voided)

        # Re-trade each uncovered subquery against the surviving sites.
        replacements: list[Contract] = []
        covered_all = True
        for contract in voided:
            sub = self._subtrade(contract.offer.query, excluded)
            summary.timeouts_fired += sub.resilience.timeouts_fired
            summary.retries += sub.resilience.retries
            if sub.best is None or not sub.contracts:
                covered_all = False
                continue
            replacements.extend(sub.contracts)

        best: CandidatePlan | None = None
        contracts_pool = surviving + replacements
        offers = [c.offer for c in contracts_pool]
        if covered_all and offers:
            best = self._reassemble(query, offers)

        if best is None:
            # Tier 3: the hole could not be patched at the old contract
            # granularity — re-trade the whole query among survivors.
            if net.tracer.enabled:
                net.tracer.event(
                    "resilience.escalate", "resilience", site=trader.buyer,
                    tier="full_retrade",
                )
            full = trader.retrade_after_failure(query, excluded)
            summary.timeouts_fired += full.resilience.timeouts_fired
            summary.retries += full.resilience.retries
            prior.best = full.best
            prior.contracts = full.contracts
            return prior

        winning_ids = {leaf.offer_id for leaf in best.purchased()}
        by_offer = {c.offer.offer_id: c for c in contracts_pool}
        prior.best = best
        prior.contracts = [
            by_offer[offer_id]
            for offer_id in sorted(winning_ids)
            if offer_id in by_offer
        ]
        return prior

    # ------------------------------------------------------------------
    def _notify_voided(self, voided: list[Contract]) -> None:
        """Send VOID notices (the dead counterparty won't hear them)."""
        net = self.trader.network
        for contract in voided:
            try:
                net.send(
                    Message(
                        MessageKind.VOID,
                        self.trader.buyer,
                        contract.seller,
                        contract.offer.offer_id,
                    )
                )
            except KeyError:
                pass  # seller never registered on this network
        net.run()

    # ------------------------------------------------------------------
    def _subtrade(self, sub: SPJQuery, excluded: set[str]) -> TradingResult:
        """A short negotiation for one uncovered subquery."""
        trader = self.trader
        saved_sellers = trader.sellers
        saved_iterations = trader.max_iterations
        trader.sellers = {
            node: agent
            for node, agent in saved_sellers.items()
            if node not in excluded
        }
        trader.max_iterations = self.policy.retrade_iterations
        try:
            return trader.optimize(sub)
        finally:
            trader.sellers = saved_sellers
            trader.max_iterations = saved_iterations

    # ------------------------------------------------------------------
    def _reassemble(self, query: SPJQuery, offers) -> CandidatePlan | None:
        """DP reassembly, falling back to greedy when over budget."""
        trader = self.trader
        net = trader.network
        result = trader.plan_generator.generate(query, offers)
        self._charge(result)
        if result.best is not None and result.enumerated <= self.policy.dp_budget:
            return result.best
        if net.tracer.enabled:
            net.tracer.event(
                "resilience.escalate", "resilience", site=trader.buyer,
                tier="greedy", enumerated=result.enumerated,
                over_budget=result.enumerated > self.policy.dp_budget,
            )
        greedy = self._greedy_generator()
        greedy_result = greedy.generate(query, offers)
        self._charge(greedy_result)
        if greedy_result.best is not None:
            return greedy_result.best
        return result.best  # over-budget DP plan beats no plan at all

    def _greedy_generator(self) -> BuyerPlanGenerator:
        """A deliberately tiny generator: effectively greedy assembly."""
        base = self.trader.plan_generator
        return BuyerPlanGenerator(
            base.builder,
            base.buyer_site,
            valuation=base.valuation,
            mode="idp",
            idp_m=1,
            max_entries_per_subset=8,
            max_join_fanin=2,
            union_budget=64,
            seconds_per_plan=base.seconds_per_plan,
        )

    def _charge(self, result: PlanGenResult) -> None:
        """Book the buyer's reassembly work on the simulated clock."""
        trader = self.trader
        net = trader.network
        work = result.enumerated * trader.plan_generator.seconds_per_plan
        finish = net.compute(trader.buyer, work)
        if net.tracer.enabled:
            # ``reassembly=True`` keeps the critical-path replay from
            # mistaking this for a trading round's DP pass.
            net.tracer.interval(
                "buyer.compute", "trading", site=trader.buyer,
                sim_start=finish - work, sim_end=finish,
                work=work, enumerated=result.enumerated, reassembly=True,
            )
        net.sim.schedule_at(finish, lambda: None)
        net.run()
