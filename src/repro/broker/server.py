"""Zero-dependency HTTP front end for the broker (stdlib only).

A :class:`ThreadingHTTPServer` binds the :class:`~repro.broker.router.
Router` to a socket: each request thread parses method/path/body, asks
the router, and writes the JSON response.  ``port=0`` picks a free port
(tests and the serving benchmark rely on it).

Use :func:`start_server` for the embedded case (returns the running
server; call :meth:`BrokerHTTPServer.shutdown_broker` when done) and
``repro serve`` for the CLI daemon.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.broker.router import Router
from repro.broker.service import BrokerService

__all__ = ["BrokerHTTPServer", "start_server"]


class _Handler(BaseHTTPRequestHandler):
    server: "BrokerHTTPServer"
    protocol_version = "HTTP/1.1"

    def _respond(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        status, payload = self.server.router.dispatch(
            self.command, self.path, body
        )
        if isinstance(payload, str):
            # Text payloads (the Prometheus exposition) go out verbatim.
            data = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(payload, sort_keys=True, default=str).encode()
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class BrokerHTTPServer(ThreadingHTTPServer):
    """The broker's HTTP listener; owns nothing but the router binding."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: BrokerService,
        verbose: bool = False,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.router = Router(service)
        self.verbose = verbose
        self._serve_thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_in_background(self) -> None:
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="broker-http", daemon=True
        )
        self._serve_thread.start()

    def shutdown_broker(self) -> None:
        """Stop the listener and the underlying service; idempotent."""
        self.shutdown()
        self.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=10.0)
        self.service.close()


def start_server(
    service: BrokerService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> BrokerHTTPServer:
    """Bind and start serving in a background thread; returns the server."""
    server = BrokerHTTPServer((host, port), service, verbose=verbose)
    server.serve_in_background()
    return server
