"""Trading-session lifecycle and the concurrent session manager.

A :class:`BrokerSession` is one query's trip through the broker:

    queued -> running -> completed | degraded | failed
       \\-> shed (rejected at admission, never ran)

``degraded`` is a *successful* completion whose negotiation stopped on
a compute budget (rounds or offer cap) rather than natural convergence
— the plan is valid, just possibly improvable.

The :class:`SessionManager` drains admitted sessions through a fixed
pool of worker threads (the admission config's ``max_concurrent``).
Each worker runs one negotiation at a time via the runner callable the
service provides; everything protocol-level (clock, network, tracer,
offer-id scope) is the runner's business, keeping this module a pure
scheduling layer.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.broker.admission import AdmissionController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sql.query import SPJQuery
    from repro.trading.trader import TradingResult

__all__ = [
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "DEGRADED",
    "FAILED",
    "SHED",
    "TERMINAL_STATES",
    "SessionSpec",
    "BrokerSession",
    "SessionManager",
]

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
DEGRADED = "degraded"
FAILED = "failed"
SHED = "shed"

TERMINAL_STATES = frozenset({COMPLETED, DEGRADED, FAILED, SHED})


@dataclass(frozen=True)
class SessionSpec:
    """What the client asked for: the query plus negotiation options."""

    sql: str
    query: "SPJQuery"
    tenant: str = "default"
    mode: str = "dp"  # buyer plan generator: 'dp' | 'idp'
    max_iterations: int | None = None  # None -> the budget's round cap
    timeout: float | None = None  # per-round deadline (protocol)
    trace: bool = True  # capture ledger/trace for `explain`


class BrokerSession:
    """One query's lifecycle record inside the broker."""

    def __init__(self, session_id: str, spec: SessionSpec):
        self.session_id = session_id
        self.spec = spec
        self.state = QUEUED
        self.error: str | None = None
        self.result: "TradingResult | None" = None
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Amortized seed offers injected by the MQO epoch scheduler
        #: (``None`` outside MQO — the trader then runs unseeded).
        self.seed_offers: "list | None" = None
        #: The trading epoch that seeded this session (``None`` if none).
        self.epoch: str | None = None
        #: The session's trace records, stashed for the live-obs hub
        #: (``None`` unless the broker runs with live observability; the
        #: hub clears it once the session is folded into the registries).
        self.live_records: "list | None" = None
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency(self) -> float | None:
        """Submit-to-finish wall seconds (``None`` until terminal)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def finish(self, state: str, error: str | None = None) -> None:
        self.state = state
        self.error = error
        self.finished_at = time.monotonic()

    def mark_done(self) -> None:
        """Release :meth:`wait` — called after terminal bookkeeping, so
        a returned ``wait()``/``drain()`` means metrics and live-obs
        registries already reflect this session."""
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the session reaches a terminal state."""
        return self._done.wait(timeout)

    def snapshot(self) -> dict:
        """The JSON-safe status view (the ``/sessions/<id>`` payload)."""
        out = {
            "session": self.session_id,
            "state": self.state,
            "tenant": self.spec.tenant,
            "query": self.spec.sql,
            "mode": self.spec.mode,
        }
        if self.latency is not None:
            out["latency_ms"] = round(self.latency * 1e3, 3)
        if self.error is not None:
            out["error"] = self.error
        if self.epoch is not None:
            out["epoch"] = self.epoch
        if self.result is not None and self.result.found:
            out["plan_cost"] = self.result.best.properties.total_time
        return out


class SessionManager:
    """A fixed worker pool draining admitted sessions in FIFO order."""

    def __init__(
        self,
        runner: Callable[[BrokerSession], None],
        controller: AdmissionController,
        on_terminal: Callable[[BrokerSession], None] | None = None,
    ):
        self._runner = runner
        self._controller = controller
        self._on_terminal = on_terminal
        self._queue: deque[BrokerSession] = deque()
        self._cond = threading.Condition()
        self._stopping = False
        self._threads = [
            threading.Thread(
                target=self._work, name=f"broker-worker-{i}", daemon=True
            )
            for i in range(controller.config.max_concurrent)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, session: BrokerSession) -> bool:
        """Admit *session* (queue it) or shed it; returns admitted."""
        if not self._controller.try_admit():
            self._finish(session, SHED, error="queue full")
            return False
        with self._cond:
            if self._stopping:
                # Undo the admission: the broker is closing.
                self._controller.on_start()
                self._controller.on_finish()
                self._finish(session, SHED, error="broker shutting down")
                return False
            self._queue.append(session)
            self._cond.notify()
        return True

    def _finish(
        self, session: BrokerSession, state: str, error: str | None = None
    ) -> None:
        session.finish(state, error=error)
        try:
            if self._on_terminal is not None:
                self._on_terminal(session)
        finally:
            session.mark_done()

    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def _work(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return  # stopping and drained
                session = self._queue.popleft()
            self._controller.on_start()
            session.state = RUNNING
            session.started_at = time.monotonic()
            try:
                self._runner(session)
            except Exception as exc:  # a failed session must not kill the worker
                self._finish(
                    session, FAILED, error=f"{type(exc).__name__}: {exc}"
                )
            else:
                result = session.result
                degraded = result is not None and result.budget_exhausted
                self._finish(session, DEGRADED if degraded else COMPLETED)
            finally:
                self._controller.on_finish()

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the queue, join the workers."""
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
