"""Admission control for the federation broker.

The broker protects itself with three independent knobs:

* **max_concurrent** — how many negotiations run at once (the session
  manager's worker-thread count).  Arrivals beyond it queue.
* **queue_limit** — how many admitted sessions may wait for a worker.
  Arrivals beyond it are *shed* immediately (HTTP 429): under a burst
  the broker prefers fast rejection over unbounded latency.
* **SessionBudget** — per-session compute caps threaded into the
  trader: ``rounds`` bounds negotiation rounds (``max_iterations``),
  ``offers`` bounds distinct offer evaluations
  (:attr:`repro.trading.trader.QueryTrader.offer_budget`).  A session
  that exhausts a budget still returns its best-so-far plan, flagged
  ``degraded``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["SessionBudget", "AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class SessionBudget:
    """Per-session compute caps (``None``/unreachable = unbudgeted)."""

    rounds: int = 6
    offers: int | None = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.offers is not None and self.offers < 1:
            raise ValueError("offers must be positive when set")


@dataclass(frozen=True)
class AdmissionConfig:
    """The broker's protection knobs (see module docstring)."""

    max_concurrent: int = 8
    queue_limit: int = 32
    budget: SessionBudget = field(default_factory=SessionBudget)

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be positive")
        if self.queue_limit < 0:
            raise ValueError("queue_limit cannot be negative")


class AdmissionController:
    """Thread-safe admit/shed decisions plus occupancy accounting.

    ``try_admit`` charges a queue slot; ``on_start`` moves the session
    from queued to running; ``on_finish`` releases it.  The counters
    feed the broker's gauges (queue depth, active sessions) and
    admit/shed totals.
    """

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._lock = threading.Lock()
        self.queued = 0
        self.running = 0
        self.admitted_total = 0
        self.shed_total = 0

    def try_admit(self) -> bool:
        """Claim a queue slot; ``False`` means shed (queue full)."""
        with self._lock:
            if self.queued >= self.config.queue_limit:
                self.shed_total += 1
                return False
            self.queued += 1
            self.admitted_total += 1
            return True

    def on_start(self) -> None:
        with self._lock:
            self.queued -= 1
            self.running += 1

    def on_finish(self) -> None:
        with self._lock:
            self.running -= 1

    def occupancy(self) -> dict[str, int]:
        """A consistent snapshot of the controller's counters."""
        with self._lock:
            return {
                "queued": self.queued,
                "running": self.running,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
            }
