"""HTTP routing for the broker: method+path regex -> service call.

Pure dispatch, no sockets: :meth:`Router.dispatch` takes the method,
path (with query string), and raw body, and returns ``(status,
payload)`` with the payload JSON-serializable.  The server module binds
this to :mod:`http.server`; tests drive it directly.

Endpoints
---------
``POST /sessions``            submit a query (202 accepted / 429 shed)
``GET  /sessions``            list all sessions (status snapshots)
``GET  /sessions/<id>``       one session's status
``GET  /sessions/<id>/result``completed result (409 until terminal)
``GET  /sessions/<id>/explain`` provenance audit (``?subquery=`` filter)
``GET  /sessions/<id>/critpath`` critical-path decomposition (409 until
                              terminal; requires a traced session)
``GET  /metrics``             serving metrics (occupancy, p50/p99, registry)
``GET  /metrics/prom``        Prometheus text exposition (``--live-obs`` adds
                              site/SLO/q-error families)
``GET  /sites``               per-site live statistics registry (``--live-obs``)
``GET  /events``              recent-event ring page (``?since=&limit=``)
``GET  /healthz``             liveness + occupancy

String payloads (``/metrics/prom``) pass through to the server verbatim
as ``text/plain``; everything else is JSON.
"""

from __future__ import annotations

import json
import re
from typing import Callable
from urllib.parse import parse_qs, urlsplit

from repro.broker.service import BrokerError, BrokerService

__all__ = ["Router"]

_Handler = Callable[..., "tuple[int, dict]"]


class Router:
    """Maps (method, path) onto :class:`BrokerService` calls."""

    def __init__(self, service: BrokerService):
        self.service = service
        self._routes: list[tuple[str, re.Pattern, _Handler]] = [
            ("POST", re.compile(r"^/sessions/?$"), self._submit),
            ("GET", re.compile(r"^/sessions/?$"), self._list),
            ("GET", re.compile(r"^/sessions/(?P<sid>[^/]+)/?$"), self._status),
            (
                "GET",
                re.compile(r"^/sessions/(?P<sid>[^/]+)/result/?$"),
                self._result,
            ),
            (
                "GET",
                re.compile(r"^/sessions/(?P<sid>[^/]+)/explain/?$"),
                self._explain,
            ),
            (
                "GET",
                re.compile(r"^/sessions/(?P<sid>[^/]+)/critpath/?$"),
                self._critpath,
            ),
            ("GET", re.compile(r"^/metrics/?$"), self._metrics),
            ("GET", re.compile(r"^/metrics/prom/?$"), self._metrics_prom),
            ("GET", re.compile(r"^/sites/?$"), self._sites),
            ("GET", re.compile(r"^/events/?$"), self._events),
            ("GET", re.compile(r"^/healthz/?$"), self._healthz),
        ]

    def dispatch(
        self, method: str, target: str, body: bytes = b""
    ) -> tuple[int, dict]:
        """Route one request; never raises — errors become payloads."""
        split = urlsplit(target)
        path = split.path
        params = {
            key: values[0] for key, values in parse_qs(split.query).items()
        }
        try:
            path_matched = False
            for route_method, pattern, handler in self._routes:
                match = pattern.match(path)
                if match is None:
                    continue
                if route_method != method:
                    path_matched = True  # maybe another method owns it
                    continue
                return handler(body=body, params=params, **match.groupdict())
            if path_matched:
                return 405, {"error": f"{method} not allowed for {path}"}
            return 404, {"error": f"no route for {path}"}
        except BrokerError as exc:
            return exc.status, {"error": exc.message}
        except Exception as exc:  # never leak a traceback to the wire
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # -- handlers ----------------------------------------------------------
    def _submit(self, body: bytes, params: dict) -> tuple[int, dict]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BrokerError(400, f"bad JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise BrokerError(400, "body must be a JSON object")
        spec = self.service.parse_spec(payload)
        session = self.service.submit(spec)
        snapshot = session.snapshot()
        if session.state == "shed":
            return 429, snapshot
        return 202, snapshot

    def _list(self, body: bytes, params: dict) -> tuple[int, dict]:
        return 200, {
            "sessions": [
                session.snapshot() for session in self.service.sessions()
            ]
        }

    def _status(self, body: bytes, params: dict, sid: str) -> tuple[int, dict]:
        return 200, self.service.get(sid).snapshot()

    def _result(self, body: bytes, params: dict, sid: str) -> tuple[int, dict]:
        return 200, self.service.result_payload(sid)

    def _explain(self, body: bytes, params: dict, sid: str) -> tuple[int, dict]:
        return 200, self.service.explain_payload(
            sid, subquery=params.get("subquery")
        )

    def _critpath(self, body: bytes, params: dict, sid: str) -> tuple[int, dict]:
        return 200, self.service.critpath_payload(sid)

    def _metrics(self, body: bytes, params: dict) -> tuple[int, dict]:
        return 200, self.service.metrics_payload()

    def _metrics_prom(self, body: bytes, params: dict) -> tuple[int, str]:
        return 200, self.service.prom_payload()

    def _sites(self, body: bytes, params: dict) -> tuple[int, dict]:
        return 200, self.service.sites_payload()

    def _events(self, body: bytes, params: dict) -> tuple[int, dict]:
        def _int_param(name: str, default: int) -> int:
            raw = params.get(name)
            if raw is None:
                return default
            try:
                return int(raw)
            except ValueError as exc:
                raise BrokerError(
                    400, f"{name} must be an integer, got {raw!r}"
                ) from exc

        return 200, self.service.events_payload(
            since=_int_param("since", 0), limit=_int_param("limit", 1000)
        )

    def _healthz(self, body: bytes, params: dict) -> tuple[int, dict]:
        occupancy = self.service.controller.occupancy()
        return 200, {"status": "ok", **occupancy}
