"""The federation broker: long-lived concurrent trading sessions.

The paper assumes a standing marketplace — buyers continuously solicit
offers from seller nodes.  This package turns the run-one-trade library
into that marketplace: a daemon that multiplexes many concurrent
negotiations over one shared world, offer cache, and offer-farm worker
pool, behind a zero-dependency HTTP API (``repro serve``).

Layering (bottom up):

* :mod:`repro.broker.admission` — admit/queue/shed decisions + budgets
* :mod:`repro.broker.sessions`  — session lifecycle + worker pool
* :mod:`repro.broker.service`   — the negotiations themselves (clock
  selection, per-session isolation, metrics, explain)
* :mod:`repro.broker.router`    — HTTP route table (pure dispatch)
* :mod:`repro.broker.server`    — stdlib ``http.server`` binding

See ``docs/BROKER.md`` for the architecture and curl examples.
"""

from repro.broker.admission import (
    AdmissionConfig,
    AdmissionController,
    SessionBudget,
)
from repro.broker.server import BrokerHTTPServer, start_server
from repro.broker.service import (
    BrokerError,
    BrokerService,
    OrderedBiddingProtocol,
)
from repro.broker.sessions import (
    COMPLETED,
    DEGRADED,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    BrokerSession,
    SessionManager,
    SessionSpec,
)
from repro.broker.router import Router

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "SessionBudget",
    "BrokerError",
    "BrokerService",
    "OrderedBiddingProtocol",
    "BrokerHTTPServer",
    "start_server",
    "Router",
    "BrokerSession",
    "SessionManager",
    "SessionSpec",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "DEGRADED",
    "FAILED",
    "SHED",
]
