"""The broker service: shared world, concurrent negotiations, metrics.

One :class:`BrokerService` owns

* one federation **world** (catalog, plan builder, cost model) shared by
  every session,
* one shared per-site **offer cache** — each session trades through a
  :meth:`~repro.trading.cache.OfferCache.session_view`, so results
  cached by any session serve all others while hit/miss accounting
  stays per-session,
* one shared **offer-farm worker pool** (``farm_workers > 1``) — the
  process pool behind :class:`repro.parallel.OfferFarm` is a
  module-level singleton keyed by worker count, so per-session farm
  facades all draw from the same pool,
* the **admission controller** and **session manager** (worker
  threads), and
* a :class:`~repro.obs.metrics.MetricsRegistry` with the serving
  gauges/counters plus a latency reservoir for p50/p99.

Each session gets a *private* network + clock + tracer and runs inside
its own :mod:`contextvars` context with a private offer-id counter
(:func:`repro.trading.commodity.offer_id_scope`), so concurrent
sessions mint exactly the offer-id sequence a serial run would —
which is what makes broker plans (including their ``offer#N``
provenance strings) equal to serial library runs.

Two clock modes:

* ``"sim"`` — each session drives a private deterministic
  :class:`~repro.net.Simulator` on its worker thread.  Negotiations
  run as fast as the CPU allows; simulated time is still reported.
* ``"async"`` — sessions share one real :mod:`asyncio` loop thread;
  each gets its own :class:`~repro.net.AsyncClock`, so deadlines,
  backoff, and fault timers elapse in wall time.

Offer *arrival* order under wall time is jitter-dependent, so the
broker negotiates through :class:`OrderedBiddingProtocol`, which sorts
each round's collected offers by a canonical key before the buyer sees
them — making the negotiation outcome clock-independent.
"""

from __future__ import annotations

import asyncio
import contextvars
import itertools
import threading
import time
from typing import Mapping

from repro.bench.harness import BUYER, World, build_world
from repro.broker.admission import AdmissionConfig, AdmissionController
from repro.broker.sessions import (
    BrokerSession,
    SessionManager,
    SessionSpec,
    SHED,
)
from repro.net import AsyncClock, Network, Simulator
from repro.obs import Tracer, explain
from repro.obs.metrics import MetricsRegistry
from repro.sql import ParseError, parse_query
from repro.trading import BiddingProtocol, BuyerPlanGenerator, QueryTrader
from repro.trading.cache import CacheStats
from repro.trading.commodity import Offer, offer_id_scope
from repro.trading.protocols import SolicitResult

if False:  # pragma: no cover - typing only (avoid hard optional imports)
    from repro.mqo import EpochScheduler, MQOConfig
    from repro.obs.live import LiveObsConfig, LiveObsHub

__all__ = ["BrokerError", "OrderedBiddingProtocol", "BrokerService"]


class BrokerError(Exception):
    """A client-visible failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


def _offer_order_key(offer: Offer) -> tuple:
    """A total, clock-independent order over one round's offers.

    Seller, offered query, coverage, shape, and price pin the
    commodity; the (session-scoped, deterministic) offer id breaks any
    remaining tie.  Arrival order — the one thing wall-time jitter can
    change — does not appear.
    """
    return (
        offer.seller,
        offer.query.key(),
        offer.coverage_key(),
        offer.exact_projections,
        offer.properties.money,
        offer.offer_id,
    )


class OrderedBiddingProtocol(BiddingProtocol):
    """Sealed-bid bidding with canonical offer ordering per round.

    Under the simulator offers already arrive in a deterministic order;
    under :class:`~repro.net.AsyncClock` wall-time jitter can reorder
    them, and the buyer's offer table breaks value ties by arrival.
    Sorting each round's offers by :func:`_offer_order_key` removes the
    clock from the outcome — the broker uses this protocol for *both*
    modes, so sim-clock and async-clock sessions produce identical
    plans.
    """

    name = "bidding"  # same wire behavior; only intake order changes

    def _solicit(self, network, buyer, sellers, rfb) -> SolicitResult:
        result = super()._solicit(network, buyer, sellers, rfb)
        result.offers.sort(key=_offer_order_key)
        return result


#: Latency reservoir cap — enough for percentile fidelity at bench
#: scale without unbounded growth in a long-lived daemon.
_MAX_LATENCIES = 4096


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


class BrokerService:
    """Long-lived multiplexer of concurrent trading sessions."""

    def __init__(
        self,
        world: World | None = None,
        world_config: Mapping | None = None,
        clock: str = "sim",
        admission: AdmissionConfig | None = None,
        farm_workers: int = 1,
        quiesce_timeout: float = 60.0,
        mqo: "MQOConfig | None" = None,
        live_obs: "LiveObsConfig | None" = None,
    ):
        if clock not in ("sim", "async"):
            raise ValueError("clock must be 'sim' or 'async'")
        self.world = world if world is not None else build_world(
            **dict(world_config or {})
        )
        self.clock_mode = clock
        self.admission_config = admission or AdmissionConfig()
        self.controller = AdmissionController(self.admission_config)
        self.farm_workers = farm_workers
        self.quiesce_timeout = quiesce_timeout
        self.metrics = MetricsRegistry()
        self._started = time.monotonic()
        #: The live observability hub (``None`` unless opted in — the
        #: disabled broker has no live code on the session path at all).
        self.live: "LiveObsHub | None" = None
        if live_obs is not None:
            from repro.obs.live import LiveObsHub

            self.live = LiveObsHub(self.world, live_obs)
        self._sessions: dict[str, BrokerSession] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._latencies: list[float] = []
        #: Cross-session cache accounting, accumulated from terminal
        #: sessions (per-session stats stay on each result).
        self._cache_totals = CacheStats()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._loop_thread: threading.Thread | None = None
        if clock == "async":
            self._start_loop()
        self.manager = SessionManager(
            self._run_session, self.controller, on_terminal=self.note_terminal
        )
        #: Opt-in MQO epoch scheduler — when enabled, submitted sessions
        #: batch into trading epochs (shared-commodity interning +
        #: amortized seed offers) before reaching the session workers.
        self.mqo: "EpochScheduler | None" = None
        if mqo is not None and mqo.enabled:
            from repro.mqo import EpochScheduler

            self.mqo = EpochScheduler(
                self.world, BUYER, self._dispatch, mqo
            )
        self._closed = False

    # -- the shared asyncio loop (async mode only) ------------------------
    def _start_loop(self) -> None:
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._loop_thread = threading.Thread(
            target=_run, name="broker-loop", daemon=True
        )
        self._loop_thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError("broker event loop failed to start")

    # -- submission --------------------------------------------------------
    def parse_spec(self, payload: Mapping) -> SessionSpec:
        """Validate a submit payload into a :class:`SessionSpec` (400s)."""
        sql = payload.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise BrokerError(400, "missing required field 'sql'")
        mode = payload.get("mode", "dp")
        if mode not in ("dp", "idp"):
            raise BrokerError(400, f"unknown mode {mode!r} (use 'dp' or 'idp')")
        try:
            query = parse_query(sql, self.world.catalog.schemas)
        except ParseError as exc:
            raise BrokerError(400, f"bad query: {exc}") from exc
        max_iterations = payload.get("max_iterations")
        if max_iterations is not None and (
            not isinstance(max_iterations, int) or max_iterations < 1
        ):
            raise BrokerError(400, "max_iterations must be a positive integer")
        timeout = payload.get("timeout")
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            raise BrokerError(400, "timeout must be a positive number")
        return SessionSpec(
            sql=sql,
            query=query,
            tenant=str(payload.get("tenant", "default")),
            mode=mode,
            max_iterations=max_iterations,
            timeout=timeout,
            trace=bool(payload.get("trace", True)),
        )

    def submit(self, spec: SessionSpec) -> BrokerSession:
        """Queue one negotiation; a shed session comes back terminal."""
        if self._closed:
            raise BrokerError(503, "broker is shutting down")
        session = BrokerSession(f"s{next(self._ids)}", spec)
        with self._lock:
            self._sessions[session.session_id] = session
        self.metrics.inc("broker.sessions_submitted", tenant=spec.tenant)
        if self.live is not None:
            self.live.observe_submitted(session)
        if self.mqo is not None:
            # Sessions batch into a trading epoch first; the scheduler
            # calls _dispatch (possibly with seed offers attached) when
            # the epoch seals.
            self.mqo.add(session)
        else:
            self._dispatch(session)
        return session

    def _dispatch(self, session: BrokerSession) -> None:
        """Release one session to the worker pool (the MQO epoch
        scheduler's dispatch hook; also the MQO-off direct path)."""
        self.manager.submit(session)
        self._update_gauges()

    # -- the per-session negotiation --------------------------------------
    def _run_session(self, session: BrokerSession) -> None:
        # A fresh context copy isolates the session's offer-id counter;
        # asyncio callbacks snapshot the scheduling context, so the
        # whole callback chain inherits it.
        context = contextvars.copy_context()
        self._update_gauges()
        context.run(self._negotiate, session)

    def _negotiate(self, session: BrokerSession) -> None:
        with offer_id_scope():
            if self.clock_mode == "async":
                clock = AsyncClock(
                    self._loop, quiesce_timeout=self.quiesce_timeout
                )
            else:
                clock = Simulator()
            network = Network(self.world.model, clock=clock)
            tracer = None
            if session.spec.trace:
                tracer = Tracer()
                network.attach_tracer(tracer)
            cache_view = (
                self.world.offer_cache.session_view()
                if self.world.offer_cache is not None
                else None
            )
            sellers = self.world.seller_agents(offer_cache=cache_view)
            protocol = OrderedBiddingProtocol(timeout=session.spec.timeout)
            if self.farm_workers > 1:
                from repro.parallel import OfferFarm

                protocol.attach_farm(OfferFarm(self.farm_workers))
            budget = self.admission_config.budget
            rounds = budget.rounds
            if session.spec.max_iterations is not None:
                rounds = min(rounds, session.spec.max_iterations)
            plangen = BuyerPlanGenerator(
                self.world.builder, BUYER, mode=session.spec.mode
            )
            trader = QueryTrader(
                BUYER,
                sellers,
                network,
                plangen,
                protocol=protocol,
                max_iterations=rounds,
                offer_budget=budget.offers,
                seed_offers=session.seed_offers,
            )
            session.result = trader.optimize(session.spec.query)
            if self.live is not None and tracer is not None:
                # Stash the session's trace for the live registries; the
                # hub consumes (and frees) it at terminal bookkeeping.
                session.live_records = list(tracer.records)

    # -- bookkeeping -------------------------------------------------------
    def note_terminal(self, session: BrokerSession) -> None:
        """Metrics hook: record a session reaching its terminal state."""
        state = session.state
        self.metrics.inc(f"broker.sessions_{state}", tenant=session.spec.tenant)
        if session.result is not None:
            with self._lock:
                self._cache_totals.add(session.result.cache)
        latency = session.latency
        if latency is not None and state != SHED:
            self.metrics.observe(
                "broker.session_latency_ms", latency * 1e3
            )
            with self._lock:
                self._latencies.append(latency)
                if len(self._latencies) > _MAX_LATENCIES:
                    del self._latencies[: -_MAX_LATENCIES]
        if self.live is not None:
            self.live.observe_terminal(session)
        self._update_gauges()

    def _update_gauges(self) -> None:
        occupancy = self.controller.occupancy()
        self.metrics.gauge_set("broker.active_sessions", occupancy["running"])
        self.metrics.gauge_set("broker.queue_depth", occupancy["queued"])

    # -- queries -----------------------------------------------------------
    def get(self, session_id: str) -> BrokerSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise BrokerError(404, f"unknown session {session_id!r}")
        return session

    def sessions(self) -> list[BrokerSession]:
        with self._lock:
            return list(self._sessions.values())

    def result_payload(self, session_id: str) -> dict:
        """The completed session's result (409 until terminal)."""
        session = self.get(session_id)
        if not session.done:
            raise BrokerError(
                409, f"session {session_id} is {session.state}"
            )
        payload = session.snapshot()
        result = session.result
        if result is None:
            return payload
        payload.update(
            found=result.found,
            degraded=result.budget_exhausted,
            iterations=result.iterations,
            offers_considered=result.offers_considered,
            optimization_time=result.optimization_time,
            messages=result.messages.messages,
            payments=result.total_payment,
            cache={
                "hits": result.cache.hits,
                "misses": result.cache.misses,
                "intern_hits": result.cache.intern_hits,
            },
        )
        if result.found:
            payload["plan_cost"] = result.best.properties.total_time
            payload["plan"] = result.best.plan.explain()
            payload["contracts"] = [
                contract.offer.describe() for contract in result.contracts
            ]
        return payload

    def explain_payload(
        self, session_id: str, subquery: str | None = None
    ) -> dict:
        """The provenance audit of a completed, traced session."""
        session = self.get(session_id)
        if not session.done:
            raise BrokerError(
                409, f"session {session_id} is {session.state}"
            )
        if session.result is None or session.result.ledger is None:
            raise BrokerError(
                409,
                f"session {session_id} has no decision ledger "
                "(submitted with trace=false, or it never ran)",
            )
        return explain(session.result, subquery=subquery).to_dict()

    def critpath_payload(self, session_id: str) -> dict:
        """The critical-path decomposition of a completed, traced session."""
        session = self.get(session_id)
        if not session.done:
            raise BrokerError(
                409, f"session {session_id} is {session.state}"
            )
        result = session.result
        telemetry = result.telemetry if result is not None else None
        if telemetry is None or telemetry.critical_path is None:
            raise BrokerError(
                409,
                f"session {session_id} has no critical path "
                "(submitted with trace=false, or it never ran)",
            )
        return telemetry.critical_path

    def _rollup(self) -> dict:
        """The one shared serving rollup both metric surfaces render.

        ``/metrics`` (JSON) and ``/metrics/prom`` (Prometheus text) are
        generated from this dict field-for-field, so the two surfaces
        cannot drift apart.
        """
        occupancy = self.controller.occupancy()
        with self._lock:
            latencies = sorted(self._latencies)
            cache = self._cache_totals.snapshot()
        return {
            "clock": self.clock_mode,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "active_sessions": occupancy["running"],
            "queue_depth": occupancy["queued"],
            "admitted_total": occupancy["admitted_total"],
            "shed_total": occupancy["shed_total"],
            "completed_total": len(latencies),
            "states": {
                "active": occupancy["running"],
                "queued": occupancy["queued"],
                "shed": occupancy["shed_total"],
                "completed": self.metrics.total("broker.sessions_completed"),
                "degraded": self.metrics.total("broker.sessions_degraded"),
                "failed": self.metrics.total("broker.sessions_failed"),
            },
            "latency_ms": {
                "p50": round(_percentile(latencies, 0.50) * 1e3, 3),
                "p99": round(_percentile(latencies, 0.99) * 1e3, 3),
            },
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "intern_hits": cache.intern_hits,
                "hit_rate": round(cache.hit_rate, 6),
            },
        }

    def metrics_payload(self) -> dict:
        """Serving metrics: occupancy, per-state counts, p50/p99 latency."""
        payload = dict(self._rollup())
        payload["registry"] = self.metrics.to_dict()
        if self.mqo is not None:
            payload["mqo"] = self.mqo.metrics()
        if self.live is not None:
            payload["slo"] = self.live.slo.summary()
        return payload

    def prom_payload(self) -> str:
        """The ``GET /metrics/prom`` Prometheus text exposition."""
        from repro.obs.live.prom import render_prometheus

        rollup = self._rollup()

        def broker_families(builder) -> None:
            builder.gauge(
                "broker_info",
                "broker identity (labels carry the clock kind)",
                1,
                clock=rollup["clock"],
            )
            builder.gauge(
                "broker_uptime_seconds",
                "seconds since the broker service started",
                rollup["uptime_s"],
            )
            builder.gauge(
                "broker_sessions_active",
                "sessions currently negotiating",
                rollup["active_sessions"],
            )
            builder.gauge(
                "broker_sessions_queued",
                "sessions admitted but not yet running",
                rollup["queue_depth"],
            )
            builder.counter(
                "broker_admitted",
                "sessions admitted since start",
                rollup["admitted_total"],
            )
            builder.counter(
                "broker_shed",
                "sessions shed at admission since start",
                rollup["shed_total"],
            )
            builder.counter(
                "broker_completed",
                "sessions that finished negotiating since start",
                rollup["completed_total"],
            )
            for state, count in sorted(rollup["states"].items()):
                builder.gauge(
                    "broker_session_states",
                    "session count per lifecycle state",
                    count,
                    state=state,
                )
            for quantile in ("p50", "p99"):
                builder.gauge(
                    "broker_latency_quantile_ms",
                    "session latency quantiles in milliseconds",
                    rollup["latency_ms"][quantile],
                    quantile=quantile,
                )
            for outcome in ("hits", "misses", "intern_hits"):
                builder.counter(
                    "broker_cache_lookups",
                    "shared offer-cache lookups by outcome",
                    rollup["cache"][outcome],
                    outcome=outcome,
                )
            builder.gauge(
                "broker_cache_hit_rate",
                "shared offer-cache hit rate",
                rollup["cache"]["hit_rate"],
            )
            if self.mqo is not None:
                for key, value in sorted(self.mqo.metrics().items()):
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        builder.gauge(
                            f"broker_mqo_{key}",
                            f"mqo epoch scheduler metric {key}",
                            value,
                        )

        builders = [broker_families]
        if self.live is not None:
            builders.append(self.live.prom_families)
        return render_prometheus(self.metrics, build=builders)

    def events_payload(self, since: int = 0, limit: int = 1000) -> dict:
        """The ``GET /events?since=`` ring-buffer page."""
        if self.live is None:
            raise BrokerError(
                404, "live observability is not enabled (serve with --live-obs)"
            )
        return self.live.events.since(since, limit)

    def sites_payload(self) -> dict:
        """The ``GET /sites`` per-site registry + q-error snapshot."""
        if self.live is None:
            raise BrokerError(
                404, "live observability is not enabled (serve with --live-obs)"
            )
        return self.live.sites_payload()

    # -- lifecycle ---------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> bool:
        """Block until every submitted session is terminal."""
        if self.mqo is not None:
            # A partial epoch may still be waiting on its window timer;
            # seal it now so its members actually reach the workers.
            self.mqo.flush()
        end = time.monotonic() + timeout
        for session in self.sessions():
            remaining = end - time.monotonic()
            if remaining <= 0 or not session.wait(timeout=remaining):
                return False
        return True

    def close(self) -> None:
        """Stop workers, stop the loop thread; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.mqo is not None:
            self.mqo.close()
        self.manager.close()
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=10.0)
            self._loop.close()
