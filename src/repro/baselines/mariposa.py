"""A Mariposa-style single-shot budget broker.

Mariposa (Stonebraker et al.) pioneered the economic paradigm QT builds
on, with a crucial structural difference the paper exploits: in Mariposa
the *broker* fragments the query up front and runs a **single** bidding
round per fragment — sellers cannot reshape the requests (no partial
query constructor), there is no iterative enrichment of the query set,
and no multi-relation offers (the broker buys per-fragment answers and
performs every join itself).

This baseline implements that: per-relation sub-queries, one sealed-bid
round, cheapest disjoint coverage per relation, greedy join at the buyer.
Fewer messages than QT, systematically worse plans — the gap is QT's
contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.baselines.distributed_dp import BaselineResult
from repro.net.simulator import Network
from repro.optimizer.greedy import greedy_join
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import restriction_overlaps
from repro.sql.query import Aggregate, SPJQuery
from repro.trading.buyer import BuyerPlanGenerator
from repro.trading.commodity import Offer, RequestForBids
from repro.trading.protocols import BiddingProtocol
from repro.trading.seller import SellerAgent

__all__ = ["MariposaBroker"]


class MariposaBroker:
    """Single-round, broker-fragmented economic optimizer."""

    name = "mariposa"

    def __init__(
        self,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        network: Network,
        builder: PlanBuilder,
        seconds_per_plan: float = 5e-5,
    ):
        self.buyer = buyer
        self.sellers = dict(sellers)
        self.network = network
        self.builder = builder
        self.seconds_per_plan = seconds_per_plan
        self._protocol = BiddingProtocol()

    # ------------------------------------------------------------------
    def optimize(self, query: SPJQuery) -> BaselineResult:
        net = self.network
        start_time = net.now
        start_stats = net.stats.snapshot()
        alias_to_relation = {r.alias: r.name for r in query.relations}

        # Broker-side fragmentation: one sub-query per relation.
        if len(query.relations) == 1:
            requests = [query]
        else:
            requests = [
                sub
                for ref in query.relations
                if (sub := query.subquery_on((ref.alias,))) is not None
            ]
        rfb = RequestForBids(
            buyer=self.buyer, queries=tuple(requests), round_number=1
        )
        solicited = self._protocol.solicit(net, self.buyer, self.sellers, rfb)

        # Cheapest disjoint coverage per relation.
        enumerated = 0
        parts: dict[frozenset[str], Plan] = {}
        feasible = True
        for ref in query.relations:
            scheme = self.builder.schemes[ref.name]
            selection = query.selection_on(ref.alias)
            required = frozenset(
                f.fragment_id
                for f in scheme.fragments
                if restriction_overlaps(selection, f.restriction_for(ref.alias))
            )
            relevant = sorted(
                (
                    o
                    for o in solicited.offers
                    if set(o.coverage) == {ref.alias}
                ),
                key=lambda o: o.properties.total_time
                / max(1, len(o.coverage[ref.alias])),
            )
            chosen: list[Offer] = []
            covered: frozenset[int] = frozenset()
            for offer in relevant:
                enumerated += 1
                fids = frozenset(offer.coverage[ref.alias]) & required
                if not fids or fids & covered:
                    continue
                chosen.append(offer)
                covered |= fids
                if covered >= required:
                    break
            if covered < required:
                feasible = False
                break
            leaves = [
                self.builder.purchased(
                    o.query,
                    o.seller,
                    rows=o.properties.rows,
                    total_time=o.properties.total_time,
                    coverage={ref.alias: frozenset(o.coverage[ref.alias])},
                    buyer_site=self.buyer,
                    offer_id=o.offer_id,
                    money=o.properties.money,
                )
                for o in chosen
            ]
            parts[frozenset((ref.alias,))] = self.builder.union(
                leaves, self.buyer
            )
            enumerated += len(leaves)

        plan: Plan | None = None
        if feasible and parts:
            plan, extra = greedy_join(
                parts,
                query.predicate.conjuncts(),
                alias_to_relation,
                self.builder,
                self.buyer,
            )
            enumerated += extra
            if plan is not None:
                plan = self._finish(query, plan, alias_to_relation)

        work = enumerated * self.seconds_per_plan
        finish = net.compute(self.buyer, work)
        net.sim.schedule_at(finish, lambda: None)
        net.run()
        return BaselineResult(
            query=query,
            plan=plan,
            enumerated=enumerated,
            optimization_time=net.now - start_time,
            messages=net.stats.delta_since(start_stats),
        )

    def _finish(
        self,
        query: SPJQuery,
        plan: Plan,
        alias_to_relation: Mapping[str, str],
    ) -> Plan:
        if query.has_aggregates or query.group_by:
            aggregates = tuple(
                p for p in query.projections if isinstance(p, Aggregate)
            )
            plan = self.builder.aggregate(
                plan, query.group_by, aggregates, alias_to_relation,
                site=self.buyer,
            )
        if query.order_by:
            plan = self.builder.sort(plan, query.order_by)
        return plan
