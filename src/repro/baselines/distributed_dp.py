"""System-R-style distributed dynamic programming (R*-lineage baseline).

A centralized optimizer with *full catalog knowledge*: it knows every
fragment's placement, statistics, and every node's capabilities, and
enumerates — per relation subset — the best plan *per candidate execution
site*, inserting transfers where data must move.  Its two structural
costs, which QT avoids, are exactly what the experiments measure:

* **statistics synchronization** — before optimizing it must collect
  placement/statistics from every federation node (2 messages per node);
  an autonomous node under churn would have to repeat this constantly;
* **centralized placement enumeration** — the DP state space is
  ``subsets × candidate sites``, so optimization time grows with both
  query size and how widely the data is spread, and all of that work is
  serial at the optimizing site (sellers can't price sub-plans for it in
  parallel).

Optimization effort is charged to the optimizing node's simulated
timeline via the enumerated-plan count, like every optimizer here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.net.messages import Message, MessageKind
from repro.net.simulator import Network, NetworkStats
from repro.optimizer.greedy import greedy_join
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import TRUE, conjoin, implies, restriction_overlaps
from repro.sql.query import Aggregate, SPJQuery

__all__ = ["BaselineResult", "DistributedDPOptimizer"]

DEFAULT_SECONDS_PER_PLAN = 5e-5


@dataclass
class BaselineResult:
    """Outcome of a traditional-optimizer run (comparable to QT's)."""

    query: SPJQuery
    plan: Plan | None
    enumerated: int = 0
    optimization_time: float = 0.0
    messages: NetworkStats = field(default_factory=NetworkStats)

    @property
    def found(self) -> bool:
        return self.plan is not None

    @property
    def plan_cost(self) -> float:
        if self.plan is None:
            raise ValueError("no plan found")
        return self.plan.response_time()


class DistributedDPOptimizer:
    """Exhaustive distributed DP over (alias subset, execution site)."""

    name = "dist-dp"

    def __init__(
        self,
        catalog: Catalog,
        builder: PlanBuilder,
        buyer: str,
        seconds_per_plan: float = DEFAULT_SECONDS_PER_PLAN,
        max_relations: int = 12,
    ):
        self.catalog = catalog
        self.builder = builder
        self.buyer = buyer
        self.seconds_per_plan = seconds_per_plan
        self.max_relations = max_relations

    # -- hooks -------------------------------------------------------------
    def prune_level(
        self,
        level: int,
        best: dict[tuple[frozenset[str], str], Plan],
    ) -> None:
        """Level-completion hook; exhaustive DP keeps everything."""

    # ------------------------------------------------------------------
    def interesting_sites(self, query: SPJQuery) -> list[str]:
        """Candidate execution sites: fragment holders plus the buyer."""
        sites = {self.buyer}
        for ref in query.relations:
            scheme = self.catalog.scheme(ref.name)
            for fragment in scheme.fragments:
                sites |= self.catalog.holders(ref.name, fragment.fragment_id)
        return sorted(sites)

    def required_fragments(self, query: SPJQuery) -> dict[str, frozenset[int]]:
        required: dict[str, frozenset[int]] = {}
        for ref in query.relations:
            scheme = self.catalog.scheme(ref.name)
            selection = query.selection_on(ref.alias)
            required[ref.alias] = frozenset(
                f.fragment_id
                for f in scheme.fragments
                if restriction_overlaps(selection, f.restriction_for(ref.alias))
            )
        return required

    # ------------------------------------------------------------------
    def optimize(
        self, query: SPJQuery, network: Network | None = None
    ) -> BaselineResult:
        """Optimize *query*; books stats messages and compute on *network*."""
        aliases = sorted(query.aliases)
        if len(aliases) > self.max_relations:
            raise ValueError(
                f"{len(aliases)}-relation query exceeds baseline DP limit"
            )
        start_time = network.now if network is not None else 0.0
        start_stats = (
            network.stats.snapshot() if network is not None else NetworkStats()
        )
        if network is not None:
            self._collect_statistics(network)

        alias_to_relation = {r.alias: r.name for r in query.relations}
        conjuncts = query.predicate.conjuncts()
        sites = self.interesting_sites(query)
        required = self.required_fragments(query)
        if any(not fids for fids in required.values()):
            return BaselineResult(query=query, plan=None)
        enumerated = 0
        best: dict[tuple[frozenset[str], str], Plan] = {}

        # Level 1: per-alias access paths at every candidate site.
        for alias in aliases:
            ref = query.relation_for(alias)
            plans, count = self._access_paths(
                query, ref.alias, required[ref.alias], sites, alias_to_relation
            )
            enumerated += count
            for site, plan in plans.items():
                best[(frozenset((alias,)), site)] = plan
        self.prune_level(1, best)

        # Levels 2..n (cross-product avoidance: disconnected subsets of a
        # connected query are never enumerated).
        graph = JoinGraph(aliases, conjuncts)
        n = graph.n
        query_connected = graph.is_connected
        by_size = graph.subsets_by_size(connected_only=query_connected)
        for size in range(2, n + 1):
            for mask in by_size[size]:
                subset = graph.aliases_of(mask)
                splits = [
                    (graph.connecting(left, right),
                     graph.aliases_of(left),
                     graph.aliases_of(right))
                    for left, right in graph.splits(mask)
                ]
                for connected_pass in (True, False):
                    found_any = False
                    for connecting, left, right in splits:
                        if bool(connecting) != connected_pass:
                            continue
                        for site in sites:
                            left_plan = self._delivered(best, left, site)
                            right_plan = self._delivered(best, right, site)
                            if left_plan is None or right_plan is None:
                                continue
                            joined = self.builder.join(
                                left_plan,
                                right_plan,
                                connecting,
                                alias_to_relation,
                                site=site,
                            )
                            enumerated += 1
                            found_any = True
                            key = (subset, site)
                            if (
                                key not in best
                                or joined.response_time()
                                < best[key].response_time()
                            ):
                                best[key] = joined
                    if found_any:
                        break
            self.prune_level(size, best)

        full = frozenset(aliases)
        plan = self._delivered(best, full, self.buyer)
        if plan is None:
            plan, extra = self._greedy_fallback(
                query, best, full, alias_to_relation
            )
            enumerated += extra
        if plan is not None:
            plan = self._finish(query, plan, alias_to_relation)

        optimization_time = enumerated * self.seconds_per_plan
        if network is not None:
            finish = network.compute(self.buyer, optimization_time)
            network.sim.schedule_at(finish, lambda: None)
            network.run()
            return BaselineResult(
                query=query,
                plan=plan,
                enumerated=enumerated,
                optimization_time=network.now - start_time,
                messages=network.stats.delta_since(start_stats),
            )
        return BaselineResult(
            query=query,
            plan=plan,
            enumerated=enumerated,
            optimization_time=optimization_time,
        )

    # ------------------------------------------------------------------
    def _collect_statistics(self, network: Network) -> None:
        """Statistics/placement synchronization with every node.

        Traditional optimizers need the global catalog before they can
        cost anything; each node answers one request.  (QT sends none of
        these.)
        """

        def _sink(_net: Network, message: Message) -> None:
            if message.kind is MessageKind.STATS_REQUEST:
                _net.send(
                    Message(
                        MessageKind.STATS_RESPONSE,
                        message.recipient,
                        message.sender,
                        None,
                    )
                )

        for node in sorted(self.catalog.nodes):
            try:
                network.register(node, _sink)
            except ValueError:
                network.unregister(node)
                network.register(node, _sink)
        for node in sorted(self.catalog.nodes):
            if node == self.buyer:
                continue
            network.send(
                Message(MessageKind.STATS_REQUEST, self.buyer, node, None)
            )
        network.run()

    def _access_paths(
        self,
        query: SPJQuery,
        alias: str,
        fragments: frozenset[int],
        sites: Sequence[str],
        alias_to_relation: Mapping[str, str],
    ) -> tuple[dict[str, Plan], int]:
        """Best way to produce *alias*'s required fragments at each site.

        Per fragment the optimizer considers every replica holder and
        scans at the cheapest one (counting each considered replica as an
        enumerated access path); fragment parts are unioned at the target
        site.
        """
        ref = query.relation_for(alias)
        scheme = self.builder.schemes[ref.name]
        restriction = scheme.restriction_for(alias, fragments)
        selection_parts = [
            c
            for c in query.selection_on(alias).conjuncts()
            if restriction is TRUE or not implies(restriction, c)
        ]
        selection = conjoin(selection_parts)
        enumerated = 0
        plans: dict[str, Plan] = {}
        for site in sites:
            parts: list[Plan] = []
            for fid in sorted(fragments):
                holders = sorted(self.catalog.holders(ref.name, fid))
                candidates = []
                for holder in holders:
                    scan = self.builder.scan(
                        ref, (fid,), selection, holder, alias_to_relation
                    )
                    candidates.append(
                        self.builder.collocate(scan, site)
                    )
                    enumerated += 1
                parts.append(
                    min(candidates, key=lambda p: p.response_time())
                )
            plans[site] = self.builder.union(parts, site)
            enumerated += 1
        return plans, enumerated

    def _delivered(
        self,
        best: Mapping[tuple[frozenset[str], str], Plan],
        subset: frozenset[str],
        site: str,
    ) -> Plan | None:
        """Cheapest plan for *subset* with its result available at *site*."""
        candidates: list[Plan] = []
        for (entry_subset, entry_site), plan in best.items():
            if entry_subset != subset:
                continue
            candidates.append(self.builder.collocate(plan, site))
        if not candidates:
            return None
        return min(candidates, key=lambda p: p.response_time())

    def _greedy_fallback(
        self,
        query: SPJQuery,
        best: Mapping[tuple[frozenset[str], str], Plan],
        full: frozenset[str],
        alias_to_relation: Mapping[str, str],
    ) -> tuple[Plan | None, int]:
        """Assemble a plan at the buyer from maximal disjoint sub-plans
        when pruning removed every exact assembly path."""
        parts: dict[frozenset[str], Plan] = {}
        covered: frozenset[str] = frozenset()
        subsets = sorted(
            {s for s, _site in best}, key=lambda s: (-len(s), sorted(s))
        )
        for subset in subsets:
            if subset & covered or not subset <= full:
                continue
            delivered = self._delivered(best, subset, self.buyer)
            if delivered is None:
                continue
            parts[subset] = delivered
            covered |= subset
            if covered == full:
                break
        if covered != full:
            return None, 0
        return greedy_join(
            parts,
            query.predicate.conjuncts(),
            alias_to_relation,
            self.builder,
            self.buyer,
        )

    def _finish(
        self,
        query: SPJQuery,
        plan: Plan,
        alias_to_relation: Mapping[str, str],
    ) -> Plan:
        plan = self.builder.collocate(plan, self.buyer)
        if query.has_aggregates or query.group_by:
            aggregates = tuple(
                p for p in query.projections if isinstance(p, Aggregate)
            )
            plan = self.builder.aggregate(
                plan, query.group_by, aggregates, alias_to_relation,
                site=self.buyer,
            )
        if query.order_by:
            plan = self.builder.sort(plan, query.order_by)
        return plan
