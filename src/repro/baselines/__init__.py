"""Traditional distributed query optimizers used as experimental baselines.

The paper compares QT against "some of the currently most efficient
techniques for distributed query optimization": System-R-style
distributed dynamic programming and Iterative Dynamic Programming
(IDP-M(2,5), Kossmann & Stocker).  Both require what QT explicitly does
not: *full knowledge* of the federation's catalog — data placement,
statistics, and node capabilities — which in a real autonomous federation
must be collected (and kept fresh) via statistics synchronization
messages from every node.  A Mariposa-style single-shot budget auction is
included as the economic-paradigm ancestor.
"""

from repro.baselines.distributed_dp import (
    BaselineResult,
    DistributedDPOptimizer,
)
from repro.baselines.distributed_idp import DistributedIDPOptimizer
from repro.baselines.mariposa import MariposaBroker

__all__ = [
    "BaselineResult",
    "DistributedDPOptimizer",
    "DistributedIDPOptimizer",
    "MariposaBroker",
]
