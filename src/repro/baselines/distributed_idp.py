"""Distributed IDP-M(2, m): the scalable traditional baseline.

Identical to :class:`~repro.baselines.distributed_dp.DistributedDPOptimizer`
except that, "after evaluating all 2-way join sub-plans, it keeps the
best five of them throwing away all other 2-way join sub-plans, and then
it continues processing like the DP algorithm" (Section 3.6).  The greedy
fallback inherited from the base class completes the plan when pruning
severed every exact assembly path.
"""

from __future__ import annotations

from repro.baselines.distributed_dp import DistributedDPOptimizer
from repro.optimizer.plans import Plan

__all__ = ["DistributedIDPOptimizer"]


class DistributedIDPOptimizer(DistributedDPOptimizer):
    """IDP-M(k, m) over (alias subset, site) states."""

    def __init__(self, *args, k: int = 2, m: int = 5, **kwargs):
        kwargs.setdefault("max_relations", 24)
        super().__init__(*args, **kwargs)
        if k < 2 or m < 1:
            raise ValueError("need k >= 2 and m >= 1")
        self.k = k
        self.m = m
        self.name = f"dist-idp-m({k},{m})"

    def prune_level(
        self,
        level: int,
        best: dict[tuple[frozenset[str], str], Plan],
    ) -> None:
        if level < 2 or level > self.k:
            return
        this_level = [key for key in best if len(key[0]) == level]
        if len(this_level) <= self.m:
            return
        ranked = sorted(this_level, key=lambda key: best[key].response_time())
        for key in ranked[self.m :]:
            del best[key]
