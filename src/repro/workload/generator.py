"""Synthetic SPJ query generation over the datagen schema.

Chain and star join shapes (the standard join-order benchmark shapes),
with optional selections on the low-cardinality ``cat`` attribute and
optional grouped aggregation — matching the query families the paper's
experimental study sweeps over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.sql.expr import Column, column, conjoin, eq
from repro.sql.query import Aggregate, SPJQuery, Star
from repro.sql.schema import RelationRef

__all__ = ["WorkloadConfig", "chain_query", "star_query", "generate_workload"]


def chain_query(
    n_relations: int,
    selection_cat: int | None = None,
    aggregate: bool = False,
    relation_offset: int = 0,
) -> SPJQuery:
    """``R0 ⋈ R1 ⋈ ... ⋈ R(n-1)`` along ``ref0 = id`` foreign keys.

    With *aggregate*, produces ``SELECT r0.part, SUM(r0.val) ... GROUP BY
    r0.part`` — grouped on the partitioning attribute, so sellers can
    ship exact partial aggregates (the telecom-example pattern).
    """
    if n_relations < 1:
        raise ValueError("need at least one relation")
    refs = tuple(
        RelationRef.of(f"R{i + relation_offset}", f"r{i}")
        for i in range(n_relations)
    )
    conjuncts = [
        eq(column(f"r{i}", "ref0"), column(f"r{i+1}", "id"))
        for i in range(n_relations - 1)
    ]
    if selection_cat is not None:
        conjuncts.append(eq(column("r0", "cat"), selection_cat))
    predicate = conjoin(conjuncts)
    if aggregate:
        return SPJQuery(
            relations=refs,
            predicate=predicate,
            projections=(
                Column("r0", "part"),
                Aggregate("sum", Column("r0", "val"), "total"),
            ),
            group_by=(Column("r0", "part"),),
        )
    return SPJQuery(relations=refs, predicate=predicate)


def star_query(
    n_satellites: int,
    selection_cat: int | None = None,
    aggregate: bool = False,
) -> SPJQuery:
    """``R0`` joined with satellites ``R1..Rn`` on its key attributes.

    The hub's ``ref0``/``ref1``/``id`` attributes alternate as join
    columns so up to three satellites get distinct join keys; beyond
    that, keys repeat (still a valid star shape).
    """
    if n_satellites < 1:
        raise ValueError("need at least one satellite")
    refs = [RelationRef.of("R0", "r0")]
    conjuncts = []
    hub_keys = ("ref0", "ref1", "id")
    for i in range(1, n_satellites + 1):
        refs.append(RelationRef.of(f"R{i}", f"r{i}"))
        hub_col = column("r0", hub_keys[(i - 1) % len(hub_keys)])
        conjuncts.append(eq(hub_col, column(f"r{i}", "id")))
    if selection_cat is not None:
        conjuncts.append(eq(column("r0", "cat"), selection_cat))
    predicate = conjoin(conjuncts)
    if aggregate:
        return SPJQuery(
            relations=tuple(refs),
            predicate=predicate,
            projections=(
                Column("r0", "part"),
                Aggregate("sum", Column("r0", "val"), "total"),
            ),
            group_by=(Column("r0", "part"),),
        )
    return SPJQuery(relations=tuple(refs), predicate=predicate)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters for a randomized query mix."""

    queries: int = 10
    min_relations: int = 2
    max_relations: int = 5
    shapes: tuple[str, ...] = ("chain", "star")
    selection_probability: float = 0.7
    aggregate_probability: float = 0.3
    available_relations: int = 8
    seed: int = 0


def generate_workload(config: WorkloadConfig) -> list[SPJQuery]:
    """A reproducible list of random chain/star queries."""
    rng = random.Random(config.seed)
    out: list[SPJQuery] = []
    for _ in range(config.queries):
        n = rng.randint(
            config.min_relations,
            min(config.max_relations, config.available_relations),
        )
        shape = rng.choice(config.shapes)
        cat = (
            rng.randrange(10)
            if rng.random() < config.selection_probability
            else None
        )
        aggregate = rng.random() < config.aggregate_probability
        if shape == "star" and n >= 2:
            out.append(star_query(n - 1, cat, aggregate))
        else:
            out.append(chain_query(n, cat, aggregate))
    return out
