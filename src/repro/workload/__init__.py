"""Synthetic workloads: query generators and the paper's telecom scenario."""

from repro.workload.generator import WorkloadConfig, chain_query, star_query, generate_workload
from repro.workload.scenarios import (
    BurstArrival,
    BurstConfig,
    OverlapArrival,
    OverlapConfig,
    TelecomScenario,
    build_bursty_workload,
    build_overlapping_analytics,
    build_telecom_scenario,
)

__all__ = [
    "WorkloadConfig",
    "chain_query",
    "star_query",
    "generate_workload",
    "TelecomScenario",
    "build_telecom_scenario",
    "BurstArrival",
    "BurstConfig",
    "build_bursty_workload",
    "OverlapArrival",
    "OverlapConfig",
    "build_overlapping_analytics",
]
