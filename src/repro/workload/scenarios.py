"""The paper's motivating scenario: a telecom's customer-care federation.

Section 1: a telecommunications company with many regional offices, each
with a local DBMS holding customer-care data —

* ``customer (custid, custname, office)`` — list-partitioned by
  ``office``, each office storing its own customers;
* ``invoiceline (invid, linenum, custid, charge)`` — either replicated
  whole at every office (the paper's example: "the Myconos node has the
  whole invoiceline table") or range-partitioned by ``custid`` and
  co-located with the owning office.

The manager's query: total issued charges for the offices of Corfu and
Myconos, grouped by office.  With ``with_views=True`` each office also
maintains the paper's Section 3.5 materialized view, pre-aggregating
charges per (office, custid), which the seller predicates analyser can
roll up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.catalog.catalog import Catalog
from repro.cost.estimator import AttributeStats, TableStats
from repro.sql.expr import Column, column, conjoin, eq, in_list
from repro.sql.query import Aggregate, SPJQuery
from repro.sql.schema import PartitionScheme, Relation, RelationRef
from repro.sql.views import MaterializedView

__all__ = [
    "TelecomScenario",
    "build_telecom_scenario",
    "OFFICE_NAMES",
    "BurstConfig",
    "BurstArrival",
    "build_bursty_workload",
    "OverlapConfig",
    "OverlapArrival",
    "build_overlapping_analytics",
]

OFFICE_NAMES = (
    "Athens",
    "Corfu",
    "Myconos",
    "Santorini",
    "Rhodes",
    "Crete",
    "Paros",
    "Naxos",
)


def _office_name(i: int) -> str:
    if i < len(OFFICE_NAMES):
        return OFFICE_NAMES[i]
    return f"Office{i}"


@dataclass
class TelecomScenario:
    """Everything needed to trade queries over the telecom federation."""

    catalog: Catalog
    nodes: list[str]
    offices: tuple[str, ...]
    customers_per_office: int
    lines_per_customer: int
    stats: dict[str, TableStats]
    row_factories: dict[str, Callable] = field(default_factory=dict)
    buyer: str = "Athens"

    def manager_query(
        self, offices: tuple[str, ...] = ("Corfu", "Myconos")
    ) -> SPJQuery:
        """The paper's motivating query: total charges per island office."""
        c, i = RelationRef.of("customer", "c"), RelationRef.of("invoiceline", "i")
        return SPJQuery(
            relations=(c, i),
            predicate=conjoin(
                [
                    eq(column("c", "custid"), column("i", "custid")),
                    in_list(column("c", "office"), offices),
                ]
            ),
            projections=(
                Column("c", "office"),
                Aggregate("sum", Column("i", "charge"), "total"),
            ),
            group_by=(Column("c", "office"),),
        )


def build_telecom_scenario(
    n_offices: int = 4,
    customers_per_office: int = 1000,
    lines_per_customer: int = 5,
    invoice_placement: str = "full",
    with_views: bool = False,
    seed: int = 0,
) -> TelecomScenario:
    """Build the telecom federation.

    *invoice_placement*:

    * ``"full"`` — every office stores the complete ``invoiceline`` table
      (the paper's example setup), so sellers can ship exact per-office
      partial aggregates;
    * ``"colocated"`` — ``invoiceline`` is range-partitioned by
      ``custid`` and stored with the owning office, so sellers ship raw
      parts and the buyer aggregates.
    """
    if invoice_placement not in ("full", "colocated"):
        raise ValueError("invoice_placement must be 'full' or 'colocated'")
    offices = tuple(_office_name(i) for i in range(n_offices))
    total_customers = n_offices * customers_per_office
    total_lines = total_customers * lines_per_customer

    customer = Relation.of(
        "customer", "custid", ("custname", "str"), ("office", "str")
    )
    invoiceline = Relation.of(
        "invoiceline", "invid", "linenum", "custid", ("charge", "float")
    )

    customer_scheme = PartitionScheme.by_list(
        "customer",
        "office",
        [[office] for office in offices],
        [customers_per_office] * n_offices,
    )
    if invoice_placement == "full":
        invoice_scheme = PartitionScheme.single("invoiceline", total_lines)
    else:
        boundaries = [
            customers_per_office * i for i in range(1, n_offices)
        ]
        invoice_scheme = PartitionScheme.by_range(
            "invoiceline",
            "custid",
            boundaries,
            [customers_per_office * lines_per_customer] * n_offices,
        )

    catalog = Catalog()
    catalog.add_relation(customer, customer_scheme)
    catalog.add_relation(invoiceline, invoice_scheme)
    nodes = list(offices)
    for node in nodes:
        catalog.add_node(node)
    for i, office in enumerate(offices):
        catalog.place("customer", i, office)
    if invoice_placement == "full":
        catalog.place("invoiceline", 0, offices)
    else:
        for i, office in enumerate(offices):
            catalog.place("invoiceline", i, office)

    if with_views:
        view_query = SPJQuery(
            relations=(
                RelationRef.of("customer", "c"),
                RelationRef.of("invoiceline", "i"),
            ),
            predicate=eq(column("c", "custid"), column("i", "custid")),
            projections=(
                Column("c", "office"),
                Column("i", "custid"),
                Aggregate("sum", Column("i", "charge"), "charge_sum"),
            ),
            group_by=(Column("c", "office"), Column("i", "custid")),
        )
        for office in offices:
            catalog.add_view(
                office,
                MaterializedView(
                    f"v_charges_{office.lower()}", view_query, total_customers
                ),
            )
    catalog.validate()

    stats = {
        "customer": TableStats(
            total_customers,
            {
                "custid": AttributeStats(total_customers, 0, total_customers - 1),
                "custname": AttributeStats(total_customers),
                "office": AttributeStats(n_offices),
            },
        ),
        "invoiceline": TableStats(
            total_lines,
            {
                "invid": AttributeStats(total_lines, 0, total_lines - 1),
                "linenum": AttributeStats(lines_per_customer, 0, lines_per_customer - 1),
                "custid": AttributeStats(total_customers, 0, total_customers - 1),
                "charge": AttributeStats(total_lines, 0.0, 100.0),
            },
        ),
    }

    # Deterministic row factories consistent with the fragment predicates.
    def customer_rows(fragment, k, rng: random.Random):
        custid = fragment.fragment_id * customers_per_office + k
        return {
            "custid": custid,
            "custname": f"cust{custid}",
            "office": offices[fragment.fragment_id],
        }

    def invoice_rows(fragment, k, rng: random.Random):
        if invoice_placement == "full":
            custid = k // lines_per_customer
            invid = k
        else:
            base = fragment.fragment_id * customers_per_office
            custid = base + (k // lines_per_customer)
            invid = fragment.fragment_id * (
                customers_per_office * lines_per_customer
            ) + k
        return {
            "invid": invid,
            "linenum": k % lines_per_customer,
            "custid": custid,
            "charge": round(rng.uniform(1.0, 100.0), 2),
        }

    return TelecomScenario(
        catalog=catalog,
        nodes=nodes,
        offices=offices,
        customers_per_office=customers_per_office,
        lines_per_customer=lines_per_customer,
        stats=stats,
        row_factories={
            "customer": customer_rows,
            "invoiceline": invoice_rows,
        },
        buyer=offices[0],
    )


# ----------------------------------------------------------------------
# Bursty multi-tenant serving workload (the broker's benchmark scenario)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BurstConfig:
    """A bursty multi-tenant arrival pattern over the synthetic schema.

    *tenants* independent clients fire queries in *bursts* waves:
    every ``burst_spacing`` seconds a whole burst of ``burst_size``
    queries arrives nearly at once (each jittered by up to *jitter*
    seconds), then the system idles until the next wave — the classic
    open-loop pattern that stresses admission control and queueing far
    more than a smooth arrival rate.  Queries are drawn from
    :func:`repro.workload.generator.generate_workload`, so the bench
    and the broker tests exercise the exact same query mix.
    """

    tenants: int = 4
    bursts: int = 3
    burst_size: int = 4
    burst_spacing: float = 0.5
    jitter: float = 0.05
    min_relations: int = 2
    max_relations: int = 4
    available_relations: int = 6
    selection_probability: float = 0.7
    aggregate_probability: float = 0.25
    seed: int = 0


@dataclass(frozen=True)
class BurstArrival:
    """One query arrival: when it fires, who sent it, what it asks."""

    arrival: float
    tenant: str
    query: "SPJQuery"


def build_bursty_workload(
    config: BurstConfig = BurstConfig(),
) -> list[BurstArrival]:
    """The reproducible arrival schedule for *config*, sorted by time.

    Tenants are assigned round-robin across each burst, so every burst
    mixes traffic from multiple tenants; the same seed always produces
    the same queries at the same (jittered) arrival offsets.
    """
    from repro.workload.generator import WorkloadConfig, generate_workload

    rng = random.Random(config.seed)
    queries = generate_workload(
        WorkloadConfig(
            queries=config.bursts * config.burst_size,
            min_relations=config.min_relations,
            max_relations=config.max_relations,
            available_relations=config.available_relations,
            selection_probability=config.selection_probability,
            aggregate_probability=config.aggregate_probability,
            seed=config.seed,
        )
    )
    arrivals: list[BurstArrival] = []
    for burst in range(config.bursts):
        start = burst * config.burst_spacing
        for i in range(config.burst_size):
            index = burst * config.burst_size + i
            arrivals.append(
                BurstArrival(
                    arrival=start + rng.uniform(0.0, config.jitter),
                    tenant=f"tenant-{index % config.tenants}",
                    query=queries[index],
                )
            )
    arrivals.sort(key=lambda a: (a.arrival, a.tenant))
    return arrivals


# ----------------------------------------------------------------------
# Overlapping multi-tenant analytics (the MQO benchmark scenario)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OverlapConfig:
    """A multi-tenant analytics workload with heavy subquery overlap.

    *tenants* dashboards refresh together in waves, each drawing its
    query from a small pool of shared chain-join *templates* and
    perturbing only the driving selection (``r0.cat = <c>``) per tenant
    — the canonical cross-session MQO shape: the join interior of every
    template (``r1 ⋈ r2 ⋈ ...``) is byte-identical across tenants, so a
    shared-subquery interner can price it once per wave, while the
    selection perturbation keeps the *full* queries distinct.

    Templates are chain queries over staggered relation windows
    (``relation_offset`` shifts which base relations each template
    joins), so distinct templates share little with each other but
    everything within themselves.
    """

    tenants: int = 6
    #: Queries each tenant fires (one per wave).
    queries_per_tenant: int = 2
    #: Size of the shared template pool (must fit the relation windows:
    #: at most ``available_relations - template_relations + 1``).
    templates: int = 2
    #: Relations joined by each template chain.
    template_relations: int = 3
    available_relations: int = 6
    #: Distinct ``r0.cat`` selection values tenants perturb over.
    distinct_selections: int = 4
    #: Seconds between dashboard refresh waves, and per-tenant jitter
    #: inside a wave.
    wave_spacing: float = 0.5
    jitter: float = 0.05
    seed: int = 0


@dataclass(frozen=True)
class OverlapArrival:
    """One analytics refresh: when, which tenant, which template, what."""

    arrival: float
    tenant: str
    template: int
    query: "SPJQuery"


def build_overlapping_analytics(
    config: OverlapConfig = OverlapConfig(),
) -> list[OverlapArrival]:
    """The reproducible overlapping-analytics schedule, sorted by time.

    Wave ``w`` carries one query per tenant, all landing within
    *jitter* of the wave start — exactly the near-simultaneous arrival
    pattern an MQO epoch batcher exists to exploit.  The same seed
    always produces the same queries at the same offsets.
    """
    from repro.workload.generator import chain_query

    max_offset = config.available_relations - config.template_relations
    if max_offset < 0:
        raise ValueError(
            "template_relations exceeds available_relations"
        )
    if config.templates < 1 or config.templates > max_offset + 1:
        raise ValueError(
            f"templates must be in [1, {max_offset + 1}] for "
            f"{config.available_relations} available relations"
        )
    rng = random.Random(config.seed)
    arrivals: list[OverlapArrival] = []
    for wave in range(config.queries_per_tenant):
        start = wave * config.wave_spacing
        for t in range(config.tenants):
            template = rng.randrange(config.templates)
            cat = rng.randrange(config.distinct_selections)
            arrivals.append(
                OverlapArrival(
                    arrival=start + rng.uniform(0.0, config.jitter),
                    tenant=f"tenant-{t}",
                    template=template,
                    query=chain_query(
                        config.template_relations,
                        selection_cat=cat,
                        relation_offset=template,
                    ),
                )
            )
    arrivals.sort(key=lambda a: (a.arrival, a.tenant))
    return arrivals
