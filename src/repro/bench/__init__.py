"""Benchmark harness: worlds, runners, and the E1–E10 experiment suite."""

from repro.bench.harness import (
    Measurement,
    World,
    build_world,
    format_table,
    run_distdp,
    run_distidp,
    run_mariposa,
    run_qt,
)
from repro.bench import experiments

__all__ = [
    "Measurement",
    "World",
    "build_world",
    "format_table",
    "run_distdp",
    "run_distidp",
    "run_mariposa",
    "run_qt",
    "experiments",
]
