"""The reconstructed experiment suite (E1–E10).

The source text's evaluation section is truncated (see DESIGN.md), so the
experiments reconstruct every axis the surviving text names: number of
joins, federation size, horizontal partitions per relation, exchanged
messages, buyer plan-generator variant (DP vs IDP-M(2,5)), negotiation
strategy, and materialized views.  Each function returns an
:class:`ExperimentTable` whose rows are exactly what the benchmark
harness prints; EXPERIMENTS.md records expected-vs-measured shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bench.harness import (
    BUYER,
    Measurement,
    World,
    build_world,
    format_table,
    run_distdp,
    run_distidp,
    run_mariposa,
    run_qt,
    run_qt_faulty,
)
from repro.faults import FaultPlan
from repro.cost import CardinalityEstimator, CostModel, NodeCapabilities
from repro.net import MessageKind, Network
from repro.optimizer import PlanBuilder
from repro.trading import (
    AdaptiveMarginStrategy,
    BargainingProtocol,
    BuyerPlanGenerator,
    BuyerStrategy,
    CompetitiveSellerStrategy,
    QueryTrader,
    SellerAgent,
    VickreyAuctionProtocol,
    WeightedValuation,
)
from repro.workload import build_telecom_scenario, chain_query

__all__ = [
    "ExperimentTable",
    "e1_optimization_time_vs_joins",
    "e2_plan_quality_vs_joins",
    "e3_scalability_vs_nodes",
    "e4_partitions_per_relation",
    "e5_message_accounting",
    "e6_iteration_convergence",
    "e7_replication_degree",
    "e8_strategies",
    "e9_materialized_views",
    "e10_plan_generator_variants",
    "e11_subcontracting",
    "e12_offer_ablations",
    "e13_load_balancing",
    "e14_mqo_overlap",
    "ef1_drop_rate_sweep",
    "ef2_crash_sweep",
    "ef3_timeout_tuning",
    "build_split_federation_world",
]


@dataclass
class ExperimentTable:
    """One experiment's printable result."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)

    def render(self) -> str:
        return format_table(f"[{self.experiment}] {self.title}",
                            self.headers, self.rows)

    def column(self, name: str) -> list:
        index = self.headers.index(name)
        return [row[index] for row in self.rows]


def _heterogeneous_caps(nodes: Sequence[str]) -> dict[str, NodeCapabilities]:
    """Node speeds cycling over 4 tiers (federations are not uniform).

    IO is deliberately slow so seller-side execution dominates plan cost;
    replication then visibly pays off because some replica usually sits
    on a fast node.
    """
    caps = {}
    for i, node in enumerate(sorted(nodes)):
        factor = 1.0 + 1.0 * (i % 4)
        caps[node] = NodeCapabilities(
            cpu_rate=5e5 * factor, io_rate=1e5 * factor
        )
    return caps


# ----------------------------------------------------------------------
# E1 / E2: sweep over the number of joins
# ----------------------------------------------------------------------
def _joins_sweep(joins: Sequence[int], nodes: int, seed: int):
    world = build_world(
        nodes=nodes, n_relations=max(joins) + 1, fragments=4, replicas=2,
        seed=seed,
    )
    for n_joins in joins:
        query = chain_query(n_joins + 1, selection_cat=3)
        measurements = [
            run_qt(world, query, mode="dp"),
            run_qt(world, query, mode="idp", label="qt-idp(2,5)"),
            run_distdp(world, query) if n_joins <= 8 else None,
            run_distidp(world, query),
        ]
        yield n_joins, [m for m in measurements if m is not None]


def e1_optimization_time_vs_joins(
    joins: Sequence[int] = (2, 3, 4, 5, 6, 8),
    nodes: int = 12,
    seed: int = 7,
) -> ExperimentTable:
    """E1: simulated optimization time as queries grow wider."""
    table = ExperimentTable(
        "E1",
        "Optimization time (simulated s) vs. number of joins",
        ["joins"],
    )
    for n_joins, measurements in _joins_sweep(joins, nodes, seed):
        if len(table.headers) == 1:
            table.headers += [m.optimizer for m in measurements]
        table.rows.append(
            [n_joins] + [f"{m.optimization_time:.4f}" for m in measurements]
        )
    return table


def e2_plan_quality_vs_joins(
    joins: Sequence[int] = (2, 3, 4, 5, 6, 8),
    nodes: int = 12,
    seed: int = 7,
) -> ExperimentTable:
    """E2: plan cost (normalized to the best plan found) vs. joins."""
    table = ExperimentTable(
        "E2",
        "Plan cost / best-known plan cost vs. number of joins",
        ["joins"],
    )
    for n_joins, measurements in _joins_sweep(joins, nodes, seed):
        if len(table.headers) == 1:
            table.headers += [m.optimizer for m in measurements]
        best = min(m.plan_cost for m in measurements if m.found)
        table.rows.append(
            [n_joins]
            + [
                f"{m.plan_cost / best:.3f}" if m.found else "-"
                for m in measurements
            ]
        )
    return table


# ----------------------------------------------------------------------
# E3: federation size
# ----------------------------------------------------------------------
def e3_scalability_vs_nodes(
    node_counts: Sequence[int] = (10, 25, 50, 100, 200),
    seed: int = 7,
) -> ExperimentTable:
    """E3: optimization time and messages as the federation grows.

    Fragments scale with the federation (data really spreads out), which
    is what makes full-knowledge optimization progressively painful while
    QT's sellers keep pricing their own shares in parallel.
    """
    table = ExperimentTable(
        "E3",
        "Scalability: optimization time / messages vs. federation size",
        [
            "nodes",
            "qt time",
            "qt msgs",
            "dist-idp time",
            "dist-idp msgs",
        ],
    )
    for nodes in node_counts:
        fragments = max(4, nodes // 5)
        world = build_world(
            nodes=nodes,
            n_relations=4,
            fragments=fragments,
            replicas=2,
            seed=seed,
        )
        query = chain_query(3, selection_cat=3)
        qt = run_qt(world, query, mode="idp")
        idp = run_distidp(world, query)
        table.rows.append(
            [
                nodes,
                f"{qt.optimization_time:.4f}",
                qt.messages,
                f"{idp.optimization_time:.4f}",
                idp.messages,
            ]
        )
    return table


# ----------------------------------------------------------------------
# E4: horizontal partitions per relation
# ----------------------------------------------------------------------
def e4_partitions_per_relation(
    fragment_counts: Sequence[int] = (1, 2, 4, 8, 16),
    nodes: int = 16,
    seed: int = 7,
) -> ExperimentTable:
    """E4: finer partitioning = more tradable pieces = more work/offers."""
    table = ExperimentTable(
        "E4",
        "Effect of horizontal partitions per relation",
        ["fragments", "qt time", "qt msgs", "qt offers", "qt cost",
         "dist-idp time", "dist-idp cost"],
    )
    for fragments in fragment_counts:
        world = build_world(
            nodes=nodes,
            n_relations=3,
            fragments=fragments,
            replicas=2,
            seed=seed,
        )
        query = chain_query(3, selection_cat=3)
        qt = run_qt(world, query)
        idp = run_distidp(world, query)
        table.rows.append(
            [
                fragments,
                f"{qt.optimization_time:.4f}",
                qt.messages,
                qt.offers,
                f"{qt.plan_cost:.4f}",
                f"{idp.optimization_time:.4f}",
                f"{idp.plan_cost:.4f}",
            ]
        )
    return table


# ----------------------------------------------------------------------
# E5: message accounting
# ----------------------------------------------------------------------
def e5_message_accounting(
    nodes: int = 16, seed: int = 7
) -> ExperimentTable:
    """E5: who sends what — the autonomy price QT pays in messages and
    the catalog-synchronization price traditional optimizers pay."""
    world = build_world(
        nodes=nodes, n_relations=4, fragments=4, replicas=2, seed=seed
    )
    query = chain_query(3, selection_cat=3)
    table = ExperimentTable(
        "E5",
        "Message accounting per optimizer",
        ["optimizer", "rfb", "offer", "no_offer", "award", "reject",
         "stats", "total"],
    )

    def count_run(label, runner):
        network = Network(world.model)
        result = runner(network)
        stats = network.stats
        # Rendered from the ``by_type`` breakdown (keyed by kind name);
        # it is derived from the same ``record`` path as ``messages``,
        # so the row always sums to the total column.
        by_type = stats.by_type
        table.rows.append(
            [
                label,
                by_type[MessageKind.RFB.value],
                by_type[MessageKind.OFFER.value],
                by_type[MessageKind.NO_OFFER.value],
                by_type[MessageKind.AWARD.value],
                by_type[MessageKind.REJECT.value],
                by_type[MessageKind.STATS_REQUEST.value]
                + by_type[MessageKind.STATS_RESPONSE.value],
                stats.messages,
            ]
        )
        return result

    def qt_runner(network):
        sellers = world.seller_agents()
        trader = QueryTrader(
            BUYER,
            sellers,
            network,
            BuyerPlanGenerator(world.builder, BUYER),
        )
        return trader.optimize(query)

    def distdp_runner(network):
        from repro.baselines import DistributedDPOptimizer

        return DistributedDPOptimizer(
            world.catalog, world.builder, BUYER
        ).optimize(query, network=network)

    def mariposa_runner(network):
        from repro.baselines import MariposaBroker

        sellers = world.seller_agents()
        return MariposaBroker(BUYER, sellers, network, world.builder).optimize(
            query
        )

    count_run("qt-dp", qt_runner)
    count_run("dist-dp", distdp_runner)
    count_run("mariposa", mariposa_runner)
    return table


# ----------------------------------------------------------------------
# E6: iteration convergence
# ----------------------------------------------------------------------
def e6_iteration_convergence(
    nodes: int = 8, seed: int = 7
) -> ExperimentTable:
    """E6: best plan value after each trading round — the buyer
    predicates analyser buys its keep in rounds ≥ 2.

    Sellers offer only their held-set granularity here (per-fragment
    offers off): round one then ships coarse, overlapping pieces, and the
    analyser's complement/de-overlap queries let round two assemble a
    cheaper plan — the paper's iterative improvement made visible.
    """
    world = build_world(
        nodes=nodes, n_relations=3, fragments=4, replicas=2, seed=seed
    )
    query = chain_query(3, selection_cat=3)
    network = Network(world.model)
    trader = QueryTrader(
        BUYER,
        world.seller_agents(offer_fragment_granularity=False),
        network,
        BuyerPlanGenerator(world.builder, BUYER),
        max_iterations=6,
    )
    result = trader.optimize(query)
    table = ExperimentTable(
        "E6",
        "Convergence: best plan value per trading iteration",
        ["iteration", "queries asked", "offers received", "best value",
         "elapsed (s)"],
    )
    for trace in result.trace:
        table.rows.append(
            [
                trace.round_number,
                trace.queries_asked,
                trace.offers_received,
                "-" if trace.best_value is None else f"{trace.best_value:.4f}",
                f"{trace.elapsed:.4f}",
            ]
        )
    return table


# ----------------------------------------------------------------------
# E7: replication degree
# ----------------------------------------------------------------------
def e7_replication_degree(
    replica_counts: Sequence[int] = (1, 2, 4, 8),
    nodes: int = 16,
    seed: int = 7,
) -> ExperimentTable:
    """E7: more replicas = more competing sellers per fragment = cheaper
    winning offers (the federation is heterogeneous, so a fast replica
    holder usually exists)."""
    table = ExperimentTable(
        "E7",
        "Effect of replication degree (heterogeneous nodes)",
        ["replicas", "qt cost", "qt offers", "qt msgs"],
    )
    for replicas in replica_counts:
        world = build_world(
            nodes=nodes,
            n_relations=3,
            fragments=4,
            replicas=replicas,
            seed=seed,
        )
        world.builder.capabilities.update(_heterogeneous_caps(world.nodes))
        query = chain_query(3, selection_cat=3)
        qt = run_qt(world, query)
        table.rows.append(
            [replicas, f"{qt.plan_cost:.4f}", qt.offers, qt.messages]
        )
    return table


# ----------------------------------------------------------------------
# E8: strategies and protocols
# ----------------------------------------------------------------------
def e8_strategies(nodes: int = 12, seed: int = 7) -> ExperimentTable:
    """E8: cooperative vs. competitive sellers under different protocols.

    Valuation = time + money, so prices matter.  Competitive margins
    raise what the buyer pays; Vickrey settlement trims the winner's
    price to the second bid; adaptive sellers under repeated trade bid
    their margins down toward cost.
    """
    world = build_world(
        nodes=nodes, n_relations=3, fragments=4, replicas=3, seed=seed
    )
    query = chain_query(2, selection_cat=3)
    valuation = WeightedValuation(money_weight=1.0)
    table = ExperimentTable(
        "E8",
        "Strategy/protocol comparison (valuation = time + money)",
        ["configuration", "plan cost", "payments", "messages"],
    )

    def record(label, **kwargs):
        m = run_qt(world, query, valuation=valuation, label=label, **kwargs)
        table.rows.append(
            [label, f"{m.plan_cost:.4f}", f"{m.payments:.4f}", m.messages]
        )
        return m

    record("cooperative")
    record(
        "competitive(0.3)",
        strategy_factory=lambda n: CompetitiveSellerStrategy(margin=0.3),
    )
    record(
        "competitive+vickrey",
        strategy_factory=lambda n: CompetitiveSellerStrategy(margin=0.3),
        protocol=VickreyAuctionProtocol(),
    )
    record(
        "competitive+bargaining",
        strategy_factory=lambda n: CompetitiveSellerStrategy(margin=0.3),
        protocol=BargainingProtocol(max_rounds=3),
        buyer_strategy=BuyerStrategy(pressure=0.6),
    )

    # Adaptive sellers over repeated trades: payments fall as margins
    # adjust to losses.
    strategies = {
        node: AdaptiveMarginStrategy(margin=0.4, step=0.2)
        for node in world.nodes
        if node != BUYER
    }
    network = Network(world.model)
    sellers = {
        node: SellerAgent(
            world.catalog.local(node), world.builder,
            strategy=strategies[node],
        )
        for node in world.nodes
        if node != BUYER
    }
    trader = QueryTrader(
        BUYER,
        sellers,
        network,
        BuyerPlanGenerator(world.builder, BUYER, valuation=valuation),
        valuation=valuation,
    )
    first = trader.optimize(query)
    for _ in range(4):
        last = trader.optimize(query)
    table.rows.append(
        [
            "adaptive (1st trade)",
            f"{first.best.properties.total_time:.4f}",
            f"{first.total_payment:.4f}",
            first.messages.messages,
        ]
    )
    table.rows.append(
        [
            "adaptive (5th trade)",
            f"{last.best.properties.total_time:.4f}",
            f"{last.total_payment:.4f}",
            last.messages.messages,
        ]
    )
    return table


# ----------------------------------------------------------------------
# E9: materialized views (seller predicates analyser)
# ----------------------------------------------------------------------
def e9_materialized_views(
    n_offices: int = 6,
    customers_per_office: int = 2000,
    seed: int = 7,
) -> ExperimentTable:
    """E9: the telecom scenario with and without per-office charge views."""
    table = ExperimentTable(
        "E9",
        "Seller predicates analyser: materialized views on/off (telecom)",
        ["configuration", "plan cost", "opt time", "messages"],
    )
    for with_views in (False, True):
        scenario = build_telecom_scenario(
            n_offices=n_offices,
            customers_per_office=customers_per_office,
            lines_per_customer=5,
            invoice_placement="full",
            with_views=with_views,
            seed=seed,
        )
        estimator = CardinalityEstimator(
            scenario.stats, scenario.catalog.schemas
        )
        model = CostModel()
        builder = PlanBuilder(
            estimator, model, schemes=scenario.catalog.schemes
        )
        network = Network(model)
        sellers = {
            node: SellerAgent(scenario.catalog.local(node), builder)
            for node in scenario.nodes
        }
        trader = QueryTrader(
            BUYER, sellers, network, BuyerPlanGenerator(builder, BUYER)
        )
        result = trader.optimize(scenario.manager_query())
        table.rows.append(
            [
                "views on" if with_views else "views off",
                f"{result.plan_cost:.4f}",
                f"{result.optimization_time:.4f}",
                result.messages.messages,
            ]
        )
    return table


# ----------------------------------------------------------------------
# E11: subcontracting (the extension Section 3.5 defers)
# ----------------------------------------------------------------------
def build_split_federation_world(
    n_relations: int = 2,
    fragments: int = 4,
    rows: int = 10_000,
    fast_sellers: bool = True,
) -> World:
    """A federation where each node holds fragments of exactly ONE
    relation — no single seller can pre-join anything, so the buyer must
    do every join itself ... unless sellers subcontract."""
    from repro.catalog import Catalog
    from repro.catalog.datagen import (
        RelationSpec,
        _partition_scheme,
        _relation_schema,
    )
    from repro.cost import CardinalityEstimator, stats_for_catalog

    catalog = Catalog()
    nodes: list[str] = []
    for r in range(n_relations):
        spec = RelationSpec(f"R{r}", rows=rows, fragments=fragments)
        catalog.add_relation(_relation_schema(spec.name),
                             _partition_scheme(spec))
        for f in range(fragments):
            node = f"n{r}_{f}"
            nodes.append(node)
            catalog.place(f"R{r}", f, node)
    catalog.add_node(BUYER)
    nodes.append(BUYER)
    catalog.validate()
    estimator = CardinalityEstimator(
        stats_for_catalog(catalog), catalog.schemas
    )
    model = CostModel()
    capabilities = {}
    if fast_sellers:
        for node in nodes:
            capabilities[node] = (
                NodeCapabilities(cpu_rate=2e7, io_rate=5e6)
                if node != BUYER
                else NodeCapabilities(cpu_rate=2e5, io_rate=5e4)
            )
    builder = PlanBuilder(
        estimator, model, capabilities=capabilities, schemes=catalog.schemes
    )
    return World(catalog=catalog, nodes=nodes, builder=builder, model=model)


def e11_subcontracting(seed: int = 7) -> ExperimentTable:
    """E11: subcontracting on/off in a relation-split federation.

    With every node holding only one relation, vanilla QT must ship all
    base fragments to the (slow) buyer; subcontracting sellers purchase
    the other relation from peers, pre-join near the data, and sell the
    combined answer — better plans for more messages, the exact dynamic
    Section 3.5 anticipates.
    """
    world = build_split_federation_world()
    query = chain_query(2, selection_cat=3)
    table = ExperimentTable(
        "E11",
        "Subcontracting (Section 3.5 extension): plans vs. messages",
        ["configuration", "plan cost", "messages", "opt time"],
    )
    for subcontracting in (False, True):
        m = run_qt(world, query, subcontracting=subcontracting)
        table.rows.append(
            [
                "subcontracting on" if subcontracting else "subcontracting off",
                f"{m.plan_cost:.4f}",
                m.messages,
                f"{m.optimization_time:.4f}",
            ]
        )
    return table


# ----------------------------------------------------------------------
# E12: what sellers put in their offers (design-choice ablation)
# ----------------------------------------------------------------------
def e12_offer_ablations(nodes: int = 10, seed: int = 7) -> ExperimentTable:
    """E12: ablating the seller's offer content.

    The paper's modified DP exports partial results (2-way, 3-way, ...)
    as extra offers; this implementation additionally exports
    per-fragment pieces.  Turning either off shows what each buys:
    partials give the buyer pre-joined building blocks, fragment
    granularity makes disjoint covers assemblable in round one.
    """
    world = build_world(
        nodes=nodes, n_relations=3, fragments=4, replicas=2, seed=seed
    )
    query = chain_query(3, selection_cat=3)
    table = ExperimentTable(
        "E12",
        "Seller offer-content ablation",
        ["partials", "fragment granularity", "plan cost", "offers",
         "messages", "iterations"],
    )
    for partials in (True, False):
        for granularity in (True, False):
            m = run_qt(
                world,
                query,
                offer_partials=partials,
                offer_fragment_granularity=granularity,
            )
            table.rows.append(
                [
                    "on" if partials else "off",
                    "on" if granularity else "off",
                    f"{m.plan_cost:.4f}" if m.found else "-",
                    m.offers,
                    m.messages,
                    m.iterations,
                ]
            )
    return table


# ----------------------------------------------------------------------
# E13: market-based load balancing across repeated trades
# ----------------------------------------------------------------------
def e13_load_balancing(
    trades: int = 8, nodes: int = 8, seed: int = 13
) -> ExperimentTable:
    """E13: repeated identical queries with and without load feedback.

    Offers reflect "the current workload of sellers" (§3.1); when won
    contracts raise the winner's load, subsequent trades drift to idle
    replica holders — decentralized load balancing.  The table reports
    how many distinct sellers win contracts and the spread (max-min) of
    per-node contract counts.
    """
    from repro.trading import Marketplace

    table = ExperimentTable(
        "E13",
        "Load feedback across repeated trades (market-based balancing)",
        ["load feedback", "distinct winners", "busiest node's contracts",
         "total contracts"],
    )
    query = chain_query(1, selection_cat=3)
    for feedback in (False, True):
        world = build_world(
            nodes=nodes, n_relations=1, rows=40_000, fragments=2,
            replicas=4, seed=seed,
        )
        for node in world.nodes:
            world.builder.capabilities[node] = NodeCapabilities(
                cpu_rate=5e5, io_rate=5e4
            )
        network = Network(world.model)
        trader = QueryTrader(
            BUYER,
            world.seller_agents(),
            network,
            BuyerPlanGenerator(world.builder, BUYER),
        )
        market = Marketplace(
            trader,
            load_per_second=200.0 if feedback else 0.0,
            drain_rate=0.0,
        )
        market.trade_many(query, trades)
        counts = market.contract_counts
        table.rows.append(
            [
                "on" if feedback else "off",
                len(counts),
                max(counts.values()) if counts else 0,
                sum(counts.values()),
            ]
        )
    return table


# ----------------------------------------------------------------------
# E10: buyer plan generator variants
# ----------------------------------------------------------------------
def e10_plan_generator_variants(
    joins: Sequence[int] = (3, 5, 7, 9),
    nodes: int = 16,
    seed: int = 7,
) -> ExperimentTable:
    """E10: DP vs IDP-M(2,5) as the buyer plan generator (§3.6)."""
    world = build_world(
        nodes=nodes, n_relations=max(joins) + 1, fragments=4, replicas=2,
        seed=seed,
    )
    table = ExperimentTable(
        "E10",
        "Buyer plan generator: DP vs IDP-M(2,5)",
        ["joins", "dp time", "dp cost", "idp time", "idp cost"],
    )
    for n_joins in joins:
        query = chain_query(n_joins + 1, selection_cat=3)
        dp = run_qt(world, query, mode="dp")
        idp = run_qt(world, query, mode="idp")
        table.rows.append(
            [
                n_joins,
                f"{dp.optimization_time:.4f}",
                f"{dp.plan_cost:.4f}",
                f"{idp.optimization_time:.4f}",
                f"{idp.plan_cost:.4f}",
            ]
        )
    return table


# ----------------------------------------------------------------------
# E-F1..E-F3: fault injection & resilience (unreliable federations)
# ----------------------------------------------------------------------
def _fault_world(nodes: int, seed: int) -> World:
    """A replicated federation for the fault experiments.

    Seller offer caches are disabled so every row re-prices from scratch
    — repeated runs at different fault rates stay directly comparable.
    """
    world = build_world(
        nodes=nodes, n_relations=4, fragments=3, replicas=2, seed=seed
    )
    world.offer_cache = None
    return world


def _fault_free_reference(world: World, query):
    """Fault-free QT run: the baseline cost plus its contract winners."""
    network = Network(world.model)
    trader = QueryTrader(
        BUYER,
        world.seller_agents(use_offer_cache=False),
        network,
        BuyerPlanGenerator(world.builder, BUYER),
    )
    return trader.optimize(query)


def ef1_drop_rate_sweep(
    drop_rates: Sequence[float] = (0.0, 0.05, 0.10, 0.20, 0.35),
    nodes: int = 8,
    seed: int = 7,
) -> ExperimentTable:
    """E-F1: plan quality and negotiation cost vs message drop rate.

    Every link drops each message with the given probability; the
    bidding rounds run under a deadline with backoff re-issue.  QT's
    redundancy (replicas bid independently) keeps plan cost flat while
    the deadline machinery converts losses into bounded waiting.
    """
    world = _fault_world(nodes, seed)
    query = chain_query(3, selection_cat=3)
    base = _fault_free_reference(world, query)
    table = ExperimentTable(
        "E-F1",
        "Message drop-rate sweep (deadline 0.05s, retries 2)",
        [
            "drop rate",
            "plan cost",
            "degradation",
            "opt time",
            "messages",
            "dropped",
            "timeouts",
            "retries",
        ],
    )
    for rate in drop_rates:
        plan = FaultPlan.uniform(drop_rate=rate, seed=seed)
        m = run_qt_faulty(
            world,
            query,
            plan,
            timeout=0.05,
            baseline_cost=base.plan_cost,
            use_offer_cache=False,
        )
        table.rows.append(
            [
                f"{rate:.2f}",
                f"{m.plan_cost:.4f}" if m.found else "-",
                f"{m.degradation:+.1%}" if m.degradation is not None else "-",
                f"{m.optimization_time:.4f}",
                m.messages,
                m.dropped,
                m.timeouts,
                m.retried,
            ]
        )
    return table


def ef2_crash_sweep(
    crash_counts: Sequence[int] = (0, 1, 2, 3),
    nodes: int = 8,
    seed: int = 7,
) -> ExperimentTable:
    """E-F2: contract renegotiation vs number of crashed winners.

    The fault-free negotiation's winning sellers are crashed (scheduled
    to die before delivery); the buyer voids their contracts, re-trades
    the uncovered subqueries among survivors, and reassembles.  With
    2-way replication the degradation stays small until the crash count
    eats into the last replica of a fragment.
    """
    world = _fault_world(nodes, seed)
    query = chain_query(3, selection_cat=3)
    base = _fault_free_reference(world, query)
    winners = sorted({c.seller for c in base.contracts})
    placements = list(world.catalog.placements())
    relations = {ref.name for ref in query.relations}
    table = ExperimentTable(
        "E-F2",
        "Winner crash sweep (crash before delivery, renegotiate)",
        [
            "crashed",
            "plan cost",
            "degradation",
            "opt time",
            "messages",
            "renegotiations",
            "replica lost",
        ],
    )
    for count in crash_counts:
        crashed = winners[:count]
        # Does some needed fragment lose its last replica?  Then no
        # renegotiation can cover the query — QT reports failure instead
        # of silently returning a partial plan.
        lost = any(
            rel in relations and holders <= set(crashed)
            for rel, _, holders in placements
        )
        plan = FaultPlan(seed=seed)
        for node in crashed:
            plan = plan.with_crash(node, crash_at=1e6)
        m = run_qt_faulty(
            world,
            query,
            plan,
            timeout=0.05,
            baseline_cost=base.plan_cost,
            use_offer_cache=False,
        )
        table.rows.append(
            [
                count,
                f"{m.plan_cost:.4f}" if m.found else "-",
                f"{m.degradation:+.1%}" if m.degradation is not None else "-",
                f"{m.optimization_time:.4f}",
                m.messages,
                m.renegotiations,
                "yes" if lost else "no",
            ]
        )
    return table


def ef3_timeout_tuning(
    timeouts: Sequence[float] = (0.01, 0.03, 0.05, 0.2, 1.0),
    drop_rate: float = 0.15,
    nodes: int = 8,
    seed: int = 7,
) -> ExperimentTable:
    """E-F3: negotiation deadline tuning at a fixed 15% drop rate.

    Deadlines trade waiting for completeness: a tight deadline closes
    rounds fast but sees fewer offers (risking worse plans or extra
    iterations); a loose one waits out every lost reply.  The sweet spot
    sits just above the honest round-trip + pricing time.
    """
    world = _fault_world(nodes, seed)
    query = chain_query(3, selection_cat=3)
    base = _fault_free_reference(world, query)
    table = ExperimentTable(
        "E-F3",
        f"Round-deadline tuning at drop rate {drop_rate:.2f}",
        [
            "deadline",
            "plan cost",
            "degradation",
            "opt time",
            "messages",
            "timeouts",
            "retries",
        ],
    )
    for timeout in timeouts:
        plan = FaultPlan.uniform(drop_rate=drop_rate, seed=seed)
        m = run_qt_faulty(
            world,
            query,
            plan,
            timeout=timeout,
            baseline_cost=base.plan_cost,
            use_offer_cache=False,
        )
        table.rows.append(
            [
                f"{timeout:.2f}",
                f"{m.plan_cost:.4f}" if m.found else "-",
                f"{m.degradation:+.1%}" if m.degradation is not None else "-",
                f"{m.optimization_time:.4f}",
                m.messages,
                m.timeouts,
                m.retried,
            ]
        )
    return table


# ----------------------------------------------------------------------
# E14: cross-session MQO over overlapping analytics dashboards
# ----------------------------------------------------------------------
def e14_mqo_overlap(
    tenants: int = 6, waves: int = 2, seed: int = 7
) -> ExperimentTable:
    """E14: shared-subquery interning + amortized pricing in the broker.

    *tenants* analytics dashboards refresh together, each perturbing
    only the driving selection of a shared join template.  With MQO on,
    the broker batches each refresh wave into a trading epoch, prices
    every shared join interior once, and injects amortized seed offers
    — the paper's "query answers as commodities" pushed across session
    boundaries.  The table contrasts aggregate plan cost, payments, and
    cache behavior against per-session trading over the same workload.
    """
    from repro.broker import AdmissionConfig, BrokerService
    from repro.broker.sessions import SessionSpec
    from repro.mqo import MQOConfig
    from repro.workload import OverlapConfig, build_overlapping_analytics

    arrivals = build_overlapping_analytics(
        OverlapConfig(tenants=tenants, queries_per_tenant=waves, seed=seed)
    )
    table = ExperimentTable(
        "E14",
        "Cross-session MQO: interned commodities, amortized pricing",
        ["mqo", "aggregate plan cost", "aggregate payments",
         "cache hits", "intern hits", "epochs"],
    )
    for mqo_on in (False, True):
        # Single-fragment relations (replicated analytics marts): a
        # seller can then sell a shared join interior as ONE complete
        # materialized intermediate, which is what the epoch prepass
        # prices once and amortizes.
        world = build_world(
            nodes=8, n_relations=6, fragments=1, replicas=2, seed=seed
        )
        service = BrokerService(
            world=world,
            clock="sim",
            admission=AdmissionConfig(max_concurrent=4, queue_limit=64),
            mqo=MQOConfig(epoch_size=tenants, epoch_window=5.0)
            if mqo_on else None,
        )
        try:
            sessions = [
                service.submit(
                    SessionSpec(
                        sql=a.query.sql(), query=a.query, tenant=a.tenant
                    )
                )
                for a in arrivals
            ]
            service.drain(timeout=120.0)
            results = [
                s.result for s in sessions
                if s.result is not None and s.result.found
            ]
            plan_cost = sum(r.best.properties.total_time for r in results)
            payments = sum(r.total_payment for r in results)
            metrics = service.metrics_payload()
        finally:
            service.close()
        table.rows.append(
            [
                "on" if mqo_on else "off",
                f"{plan_cost:.4f}",
                f"{payments:.4f}",
                metrics["cache"]["hits"],
                metrics["cache"]["intern_hits"],
                metrics.get("mqo", {}).get("epochs", 0),
            ]
        )
    return table
