"""Shared experiment plumbing: build federations, run optimizers, format
the tables the paper-style experiment suite reports.

Every runner returns a :class:`Measurement` with the three quantities the
paper's evaluation revolves around:

* ``optimization_time`` — *simulated* seconds spent optimizing (message
  delays + per-node compute charged from enumerated-plan counts; fully
  deterministic and machine-independent),
* ``messages`` — exchanged network messages,
* ``plan_cost`` — the estimated response time of the produced plan under
  the shared ground-truth cost model (comparable across optimizers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.baselines import (
    DistributedDPOptimizer,
    DistributedIDPOptimizer,
    MariposaBroker,
)
from repro.catalog import Catalog, FederationConfig, build_federation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RenegotiationPolicy,
    ResilientTrader,
)
from repro.cost import (
    CardinalityEstimator,
    CostModel,
    NodeCapabilities,
    stats_for_catalog,
)
from repro.net import Network
from repro.optimizer import PlanBuilder
from repro.sql.query import SPJQuery
from repro.trading import (
    BiddingProtocol,
    BuyerPlanGenerator,
    BuyerStrategy,
    NegotiationProtocol,
    OfferCache,
    QueryTrader,
    SellerAgent,
    SellerStrategy,
)

__all__ = [
    "World",
    "Measurement",
    "build_world",
    "set_parallel_defaults",
    "run_qt",
    "run_qt_faulty",
    "run_distdp",
    "run_distidp",
    "run_mariposa",
    "format_table",
]

BUYER = "client"

#: Process-wide fallbacks for the parallel trading engine, consulted by
#: :func:`run_qt` / :func:`run_qt_faulty` when a caller does not pass
#: ``workers`` / ``parallel_threshold`` explicitly.  ``repro experiment
#: --workers N`` sets these (via :func:`set_parallel_defaults`) when it
#: runs a *single* experiment in-process, so the experiment's internal
#: trades parallelize; the farmed multi-experiment path leaves them
#: alone so worker processes never nest pools.  The byte-identical
#: equivalence contract makes the setting unobservable in results.
PARALLEL_DEFAULTS = {"workers": 1, "parallel_threshold": 512}


def set_parallel_defaults(
    workers: int | None = None, parallel_threshold: int | None = None
) -> None:
    """Set process-wide parallel engine fallbacks (see PARALLEL_DEFAULTS)."""
    if workers is not None:
        PARALLEL_DEFAULTS["workers"] = workers
    if parallel_threshold is not None:
        PARALLEL_DEFAULTS["parallel_threshold"] = parallel_threshold


@dataclass
class World:
    """A federation ready for optimizing: catalog + costing plumbing."""

    catalog: Catalog
    nodes: list[str]
    builder: PlanBuilder
    model: CostModel
    offer_cache: OfferCache | None = None

    def seller_agents(
        self,
        strategy_factory: Callable[[str], SellerStrategy] | None = None,
        **agent_kwargs,
    ) -> dict[str, SellerAgent]:
        """Fresh agents per run, sharing the world's offer cache.

        Sharing one cache across runs over the same world is what makes
        repeated-trade experiments benefit from prior pricing work; pass
        ``offer_cache=...`` (or ``use_offer_cache=False``) explicitly to
        override.
        """
        agents: dict[str, SellerAgent] = {}
        if "offer_cache" not in agent_kwargs:
            agent_kwargs = {**agent_kwargs, "offer_cache": self.offer_cache}
        for node in self.nodes:
            if node == BUYER:
                continue
            strategy = strategy_factory(node) if strategy_factory else None
            agents[node] = SellerAgent(
                self.catalog.local(node),
                self.builder,
                strategy=strategy,
                **agent_kwargs,
            )
        return agents


def build_world(
    nodes: int = 12,
    n_relations: int = 6,
    rows: int = 10_000,
    fragments: int = 4,
    replicas: int = 2,
    seed: int = 7,
    capabilities: Mapping[str, NodeCapabilities] | None = None,
) -> World:
    """A uniform synthetic federation with shared costing machinery."""
    config = FederationConfig.uniform(
        nodes=nodes,
        n_relations=n_relations,
        rows=rows,
        fragments=fragments,
        replicas=replicas,
        seed=seed,
    )
    catalog, node_list = build_federation(config)
    estimator = CardinalityEstimator(stats_for_catalog(catalog), catalog.schemas)
    model = CostModel()
    builder = PlanBuilder(
        estimator, model, capabilities=capabilities, schemes=catalog.schemes
    )
    return World(
        catalog=catalog,
        nodes=node_list,
        builder=builder,
        model=model,
        offer_cache=OfferCache(),
    )


@dataclass
class Measurement:
    """One optimizer run's reportable quantities."""

    optimizer: str
    found: bool
    plan_cost: float
    optimization_time: float
    messages: int
    iterations: int = 1
    offers: int = 0
    payments: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    # Fault/resilience accounting (zero for fault-free runs).
    dropped: int = 0
    duplicated: int = 0
    retried: int = 0
    timeouts: int = 0
    renegotiations: int = 0
    degradation: float | None = None  # vs the fault-free reference cost
    # Rendered plan (``explain()``), when one was found.  The
    # parallel-vs-serial equivalence suites compare it byte-for-byte.
    plan_explain: str | None = None

    def row(self) -> list:
        return [
            self.optimizer,
            f"{self.plan_cost:.4f}" if self.found else "-",
            f"{self.optimization_time:.4f}",
            self.messages,
        ]


def run_qt(
    world: World,
    query: SPJQuery,
    mode: str = "dp",
    protocol: NegotiationProtocol | None = None,
    strategy_factory: Callable[[str], SellerStrategy] | None = None,
    buyer_strategy: BuyerStrategy | None = None,
    label: str | None = None,
    valuation=None,
    max_iterations: int = 6,
    subcontracting: bool = False,
    workers: int | None = None,
    parallel_threshold: int | None = None,
    tracer=None,
    **agent_kwargs,
) -> Measurement:
    """Run the QT optimizer over a fresh network; return its measurement.

    ``workers > 1`` engages the parallel trading engine (offer farm +
    full-lattice buyer DP, levels shipped once their estimated join
    pairs reach *parallel_threshold*); results are byte-identical to
    ``workers=1``.  Both parameters fall back to
    :data:`PARALLEL_DEFAULTS` when ``None``.  Pass a
    :class:`repro.obs.Tracer` as *tracer* to record the negotiation
    (the trader wires it through every layer).
    """
    from repro.trading import Subcontractor

    if workers is None:
        workers = PARALLEL_DEFAULTS["workers"]
    if parallel_threshold is None:
        parallel_threshold = PARALLEL_DEFAULTS["parallel_threshold"]
    network = Network(world.model)
    if tracer is not None:
        network.attach_tracer(tracer)
    sellers = world.seller_agents(strategy_factory, **agent_kwargs)
    if subcontracting:
        for node, agent in sellers.items():
            agent.subcontractor = Subcontractor(network=network)
            agent.subcontractor.connect(
                {m: peer for m, peer in sellers.items() if m != node}, network
            )
    # The label must not depend on the worker count: parallel runs farm
    # the default BiddingProtocol explicitly, but serial runs use the
    # very same protocol implicitly, so only a caller-passed protocol
    # may show up in the measurement name.
    named_protocol = protocol
    if workers > 1:
        from repro.parallel import OfferFarm

        protocol = (protocol or BiddingProtocol()).attach_farm(
            OfferFarm(workers)
        )
    plangen = BuyerPlanGenerator(
        world.builder, BUYER, mode=mode, valuation=valuation,
        workers=workers, parallel_threshold=parallel_threshold,
    )
    trader = QueryTrader(
        BUYER,
        sellers,
        network,
        plangen,
        protocol=protocol,
        buyer_strategy=buyer_strategy,
        valuation=valuation,
        max_iterations=max_iterations,
    )
    result = trader.optimize(query)
    name = label or (
        f"qt-{mode}" + (f"+{named_protocol.name}" if named_protocol else "")
    )
    return Measurement(
        optimizer=name,
        found=result.found,
        plan_cost=result.plan_cost if result.found else float("inf"),
        optimization_time=result.optimization_time,
        messages=result.messages.messages,
        iterations=result.iterations,
        offers=result.offers_considered,
        payments=result.total_payment,
        cache_hits=result.cache.hits,
        cache_misses=result.cache.misses,
        plan_explain=result.best.plan.explain() if result.found else None,
    )


def run_qt_faulty(
    world: World,
    query: SPJQuery,
    fault_plan: FaultPlan,
    timeout: float | None = 0.05,
    max_retries: int = 2,
    backoff: float = 2.0,
    mode: str = "dp",
    label: str | None = None,
    baseline_cost: float | None = None,
    policy: RenegotiationPolicy | None = None,
    max_iterations: int = 6,
    workers: int | None = None,
    parallel_threshold: int | None = None,
    tracer=None,
    **agent_kwargs,
) -> Measurement:
    """Run QT under *fault_plan* with the full resilience stack engaged.

    The negotiation runs behind a :class:`FaultInjector` built from the
    plan, the bidding protocol gets round deadlines (*timeout*, with
    exponential-backoff re-issue), and a :class:`ResilientTrader`
    renegotiates contracts whose winners crash before delivery.  Pass
    ``baseline_cost`` (the fault-free plan cost) to have the measurement
    report plan degradation.
    """
    if workers is None:
        workers = PARALLEL_DEFAULTS["workers"]
    if parallel_threshold is None:
        parallel_threshold = PARALLEL_DEFAULTS["parallel_threshold"]
    network = Network(world.model)
    if tracer is not None:
        network.attach_tracer(tracer)
    injector = FaultInjector(fault_plan)
    network.install_faults(injector)
    sellers = world.seller_agents(None, **agent_kwargs)
    protocol = BiddingProtocol(
        timeout=timeout, max_retries=max_retries, backoff=backoff
    )
    if workers > 1:
        from repro.parallel import OfferFarm

        protocol.attach_farm(OfferFarm(workers))
    plangen = BuyerPlanGenerator(
        world.builder, BUYER, mode=mode,
        workers=workers, parallel_threshold=parallel_threshold,
    )
    trader = QueryTrader(
        BUYER,
        sellers,
        network,
        plangen,
        protocol=protocol,
        max_iterations=max_iterations,
    )
    resilient = ResilientTrader(
        trader, injector, policy=policy, fault_free_cost=baseline_cost
    )
    result = resilient.optimize(query)
    summary = result.resilience
    return Measurement(
        optimizer=label or f"qt-{mode}+faults",
        found=result.found,
        plan_cost=result.plan_cost if result.found else float("inf"),
        optimization_time=result.optimization_time,
        messages=result.messages.messages,
        iterations=result.iterations,
        offers=result.offers_considered,
        payments=result.total_payment,
        cache_hits=result.cache.hits,
        cache_misses=result.cache.misses,
        dropped=result.messages.dropped,
        duplicated=result.messages.duplicated,
        retried=result.messages.retried,
        timeouts=summary.timeouts_fired,
        renegotiations=summary.renegotiations,
        degradation=summary.degradation,
        plan_explain=result.best.plan.explain() if result.found else None,
    )


def run_distdp(world: World, query: SPJQuery) -> Measurement:
    network = Network(world.model)
    opt = DistributedDPOptimizer(world.catalog, world.builder, BUYER)
    result = opt.optimize(query, network=network)
    return Measurement(
        optimizer=opt.name,
        found=result.found,
        plan_cost=result.plan_cost if result.found else float("inf"),
        optimization_time=result.optimization_time,
        messages=result.messages.messages,
    )


def run_distidp(
    world: World, query: SPJQuery, k: int = 2, m: int = 5
) -> Measurement:
    network = Network(world.model)
    opt = DistributedIDPOptimizer(world.catalog, world.builder, BUYER, k=k, m=m)
    result = opt.optimize(query, network=network)
    return Measurement(
        optimizer=opt.name,
        found=result.found,
        plan_cost=result.plan_cost if result.found else float("inf"),
        optimization_time=result.optimization_time,
        messages=result.messages.messages,
    )


def run_mariposa(world: World, query: SPJQuery) -> Measurement:
    network = Network(world.model)
    sellers = world.seller_agents()
    broker = MariposaBroker(BUYER, sellers, network, world.builder)
    result = broker.optimize(query)
    return Measurement(
        optimizer=broker.name,
        found=result.found,
        plan_cost=result.plan_cost if result.found else float("inf"),
        optimization_time=result.optimization_time,
        messages=result.messages.messages,
    )


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence]
) -> str:
    """Fixed-width ASCII table (what the benchmark harness prints)."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        title,
        "=" * len(title),
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        sep,
    ]
    for row in rendered:
        lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
