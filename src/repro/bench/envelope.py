"""The shared provenance envelope for ``BENCH_*.json`` artifacts.

Every benchmark writer stamps its payload with the same four fields
(``schema_version``, ``git_sha``, ``generated_at``, ``cpu_count``) and
appends its headline metrics to the bench-history store — both live in
:mod:`repro.obs.history`; this module is the bench-facing name for them.

Usage, at the top of a writer's payload::

    from repro.bench.envelope import bench_envelope, history

    payload = {**bench_envelope(), "benchmark": ..., ...}
    history(REPO_ROOT).append("enumeration", {"eight_join_speedup": s})
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA_VERSION,
    BenchHistory,
    run_envelope as bench_envelope,
)

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "bench_envelope",
    "history",
]


def history(repo_root: str | Path) -> BenchHistory:
    """The repository's bench-history store, rooted at *repo_root*."""
    return BenchHistory(Path(repo_root) / DEFAULT_HISTORY_PATH)
