"""Iterative Dynamic Programming, IDP-M(k, m) variant.

Section 3.6 of the paper: "This algorithm is similar to DP. Its only
difference is that after evaluating all 2-way join sub-plans, it keeps
the best five of them throwing away all other 2-way join sub-plans, and
then it continues processing like the DP algorithm."  That is IDP-M(2,5)
of Kossmann & Stocker, used both as the scalable buyer plan generator and
(given full catalog knowledge) as a traditional-optimization baseline.

The generalized form implemented here prunes every level up to *k* down
to its best *m* entries.
"""

from __future__ import annotations

from repro.optimizer.dp import DynamicProgrammingOptimizer, _plan_cost
from repro.optimizer.greedy import greedy_join
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import Plan, PlanBuilder

__all__ = ["IDPOptimizer"]


class IDPOptimizer(DynamicProgrammingOptimizer):
    """IDP-M(k, m): DP with level-wise beam pruning.

    Parameters
    ----------
    builder:
        Plan factory.
    k:
        Levels up to which pruning applies (the paper uses 2).
    m:
        Number of sub-plans kept per pruned level (the paper uses 5).
    workers / parallel_threshold:
        Forwarded to the base DP: IDP blocks (the per-level mask sets
        that survive the beam) are LPT-partitioned by the same
        cost-based allocator.  Pruning runs in the parent between
        levels, and the parent merges worker results in serial mask
        order, so the beam's stable tie-breaks — which depend on
        ``best``'s insertion order — are preserved at any worker count.
    """

    def __init__(
        self,
        builder: PlanBuilder,
        k: int = 2,
        m: int = 5,
        max_relations: int = 24,
        workers: int = 1,
        parallel_threshold: int = 512,
    ):
        super().__init__(
            builder,
            max_relations=max_relations,
            workers=workers,
            parallel_threshold=parallel_threshold,
        )
        if k < 2:
            raise ValueError("k must be at least 2")
        if m < 1:
            raise ValueError("m must be at least 1")
        self.k = k
        self.m = m
        self.name = f"idp-m({k},{m})"

    def prune_level(
        self, level: int, best: dict[int, Plan], graph: JoinGraph
    ) -> None:
        if level < 2 or level > self.k:
            return
        this_level = [m for m in best if m.bit_count() == level]
        if len(this_level) <= self.m:
            return
        ranked = sorted(this_level, key=lambda m: _plan_cost(best[m]))
        for mask in ranked[self.m :]:
            del best[mask]

    def optimize(self, query, site, coverage=None, finish: bool = True):
        """DP with pruning; greedily completes the plan when pruning has
        made the full relation set unreachable from the kept sub-plans."""
        result = super().optimize(query, site, coverage, finish=False)
        aliases = frozenset(query.aliases)
        alias_to_relation = {r.alias: r.name for r in query.relations}
        if aliases not in result.best and len(aliases) > 1:
            parts = _maximal_disjoint_cover(result.best, aliases)
            plan, extra = greedy_join(
                parts,
                query.predicate.conjuncts(),
                alias_to_relation,
                self.builder,
                site,
                graph=result.graph,
            )
            result.enumerated += extra
            if plan is not None:
                result.best[aliases] = plan
        full = result.best.get(aliases)
        result.plan = (
            self._finish(query, full, alias_to_relation) if finish else full
        )
        return result


def _maximal_disjoint_cover(
    best: dict[frozenset[str], Plan], aliases: frozenset[str]
) -> dict[frozenset[str], Plan]:
    """Pick disjoint kept subsets covering *aliases* (big & cheap first)."""
    chosen: dict[frozenset[str], Plan] = {}
    covered: frozenset[str] = frozenset()
    for subset in sorted(
        best, key=lambda s: (-len(s), _plan_cost(best[s]))
    ):
        if subset <= aliases and not subset & covered:
            chosen[subset] = best[subset]
            covered |= subset
        if covered == aliases:
            break
    return chosen
