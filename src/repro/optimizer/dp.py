"""System-R dynamic programming over join orders (single site).

This is the seller's local optimizer.  Following Section 3.4, it runs
"progressively pruning sub-optimal access paths, first considering two-way
joins, then three-way joins, and so on" — and, crucially for QT, the
*modified* version keeps the optimal partial results (the best 2-way,
3-way, ... sub-plans) so they can be included in the seller's offer.

The optimizer counts every join combination it evaluates; the discrete-
event simulator turns that count into simulated optimization time, which
is how the experiments measure optimization cost deterministically.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import Expr, TRUE, conjoin, implies
from repro.sql.query import Aggregate, SPJQuery

__all__ = [
    "DPResult",
    "DynamicProgrammingOptimizer",
    "connecting_conjuncts",
    "subset_connected",
]


@dataclass
class DPResult:
    """Outcome of a local optimization run.

    Attributes
    ----------
    plan:
        Best plan for the complete query (with aggregation/sort applied),
        or ``None`` if the query was unsatisfiable.
    best:
        Best *join* plan per alias subset — the partial results that the
        modified DP exports as extra offers.
    enumerated:
        Number of candidate (sub-)plans evaluated; proxies optimization
        work for the simulator.
    """

    plan: Plan | None
    best: dict[frozenset[str], Plan] = field(default_factory=dict)
    enumerated: int = 0
    graph: JoinGraph | None = None


def subset_connected(
    subset: frozenset[str], conjuncts: Sequence[Expr]
) -> bool:
    """Is the join graph induced on *subset* connected?

    For a connected query, dynamic programming never needs disconnected
    intermediate results (the classic cross-product-avoidance rule), so
    optimizers skip such subsets entirely.

    Reference implementation: hot paths use the memoized
    :meth:`repro.optimizer.joingraph.JoinGraph.connected` instead.
    """
    if len(subset) <= 1:
        return True
    adjacency: dict[str, set[str]] = {alias: set() for alias in subset}
    for conjunct in conjuncts:
        tables = conjunct.tables()
        if len(tables) < 2 or not tables <= subset:
            continue
        ordered = sorted(tables)
        for i, u in enumerate(ordered):
            for v in ordered[i + 1 :]:
                adjacency[u].add(v)
                adjacency[v].add(u)
    start = next(iter(subset))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen == subset


def connecting_conjuncts(
    conjuncts: Sequence[Expr],
    left: frozenset[str],
    right: frozenset[str],
) -> tuple[Expr, ...]:
    """Predicate conjuncts joining *left* aliases with *right* aliases.

    Reference implementation: hot paths use the memoized
    :meth:`repro.optimizer.joingraph.JoinGraph.connecting` instead.
    """
    combined = left | right
    out = []
    for conjunct in conjuncts:
        tables = conjunct.tables()
        if len(tables) < 2:
            continue
        if tables <= combined and tables & left and tables & right:
            out.append(conjunct)
    return tuple(out)


class DynamicProgrammingOptimizer:
    """Exhaustive bushy DP with cross-product avoidance.

    Parameters
    ----------
    builder:
        The cost-annotated plan factory.
    max_relations:
        Safety valve: queries wider than this raise, protecting the
        simulator from 2^n blowups the caller did not intend.
    workers:
        With ``workers > 1`` each lattice level is fanned across the
        shared fork pool, masks LPT-partitioned by viable-split count
        (the same cost-based allocator the buyer DP uses, see
        :mod:`repro.parallel.partition`).  Results are merged in serial
        mask order, so the DP — and any :meth:`prune_level` subclass
        such as IDP, whose beam ties break on ``best``'s insertion
        order — stays byte-identical to ``workers=1``.  The default of
        1 keeps in-simulator sellers (which construct this optimizer
        per agent) from nesting pools.
    parallel_threshold:
        Minimum estimated joins in a level before it is worth the IPC
        tax of shipping it to the pool.
    """

    name = "dp"

    def __init__(
        self,
        builder: PlanBuilder,
        max_relations: int = 14,
        workers: int = 1,
        parallel_threshold: int = 512,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        self.builder = builder
        self.max_relations = max_relations
        self.workers = workers
        self.parallel_threshold = parallel_threshold

    # -- hooks for subclasses (IDP) ---------------------------------------
    def prune_level(
        self, level: int, best: dict[int, Plan], graph: JoinGraph
    ) -> None:
        """Called after each DP level completes; plain DP keeps everything.

        *best* is keyed by alias-subset bitmask (see :class:`JoinGraph`);
        deleting entries here prunes them from the search.
        """

    # ------------------------------------------------------------------
    def optimize(
        self,
        query: SPJQuery,
        site: str,
        coverage: Mapping[str, frozenset[int]] | None = None,
        finish: bool = True,
    ) -> DPResult:
        """Optimize *query* executing entirely at *site*.

        *coverage* limits each alias to a set of fragments (defaults to
        every fragment of the relation's scheme); the scan selectivity
        correctly excludes selection conjuncts already implied by the
        fragment restriction, so fragment row counts are not
        double-discounted.

        With *finish* set, grouping/aggregation and ORDER BY are applied
        on top of the best full join.
        """
        aliases = sorted(query.aliases)
        if len(aliases) > self.max_relations:
            raise ValueError(
                f"{len(aliases)}-relation query exceeds DP limit "
                f"{self.max_relations}; use IDP or greedy"
            )
        alias_to_relation = {r.alias: r.name for r in query.relations}
        conjuncts = query.predicate.conjuncts()
        graph = JoinGraph(aliases, conjuncts)
        best: dict[int, Plan] = {}
        enumerated = 0

        # Level 1: fragment scans (bit i <-> i-th alias in sorted order).
        for i, alias in enumerate(graph.aliases):
            ref = query.relation_for(alias)
            scheme = self.builder.schemes[ref.name]
            fragment_ids = (
                coverage.get(alias, scheme.fragment_ids)
                if coverage is not None
                else scheme.fragment_ids
            )
            restriction = scheme.restriction_for(alias, fragment_ids)
            selection_parts = [
                c
                for c in query.selection_on(alias).conjuncts()
                if restriction is TRUE or not implies(restriction, c)
            ]
            plan = self.builder.scan(
                ref,
                fragment_ids,
                conjoin(selection_parts),
                site,
                alias_to_relation,
            )
            best[1 << i] = plan
            enumerated += 1

        # Levels 2..n: best join per subset.  For connected queries, only
        # connected subsets are ever enumerated (cross-product avoidance);
        # cross-product splits are only materialized when no connected
        # split exists (second pass).
        n = graph.n
        query_connected = graph.is_connected
        for size in range(2, n + 1):
            masks = graph.level_masks(size, connected_only=query_connected)
            level_counted = None
            if self.workers > 1 and masks:
                level_counted = self._parallel_level(
                    best, masks, graph, alias_to_relation, site
                )
            if level_counted is None:
                level_counted = 0
                for mask in masks:
                    plan, counted = _best_join(
                        self.builder, best, mask, graph,
                        alias_to_relation, site,
                    )
                    level_counted += counted
                    if plan is not None:
                        best[mask] = plan
            enumerated += level_counted
            self.prune_level(size, best, graph)

        full = best.get(graph.full_mask)
        best_by_subset = {
            graph.aliases_of(mask): plan for mask, plan in best.items()
        }
        plan = self._finish(query, full, alias_to_relation) if finish else full
        return DPResult(
            plan=plan, best=best_by_subset, enumerated=enumerated, graph=graph
        )

    # ------------------------------------------------------------------
    def _parallel_level(
        self,
        best: dict[int, Plan],
        masks: Sequence[int],
        graph: JoinGraph,
        alias_to_relation: Mapping[str, str],
        site: str,
    ) -> int | None:
        """Fan one DP level across the fork pool (IDP blocks included).

        Mirrors :meth:`repro.trading.buyer.BuyerPlanGenerator._parallel_level`:
        per-mask weights estimate the viable split counts, the level is
        LPT-partitioned into cost-balanced chunks, and the shared state
        (builder, surviving sub-plans, graph) is pickled once into a
        blob all chunks share.  Merging back in serial mask order keeps
        ``best``'s insertion order — and therefore IDP's stable
        tie-breaks — identical to the serial run.  Returns the joins
        enumerated, or ``None`` for "run serially".

        For connected queries the memoized structural estimate
        :meth:`JoinGraph.connected_split_count` is used: every mask in
        ``best`` is connected there, so it upper-bounds the viable count
        and is zero exactly when no split can survive — zero-weight
        masks are provably no-ops and are skipped.  Disconnected
        queries materialize cross products, so the exact
        membership-in-``best`` count is taken instead.
        """
        if graph.is_connected:
            weights = [graph.connected_split_count(mask) for mask in masks]
        else:
            weights = [
                sum(
                    1
                    for left, right in graph.splits(mask)
                    if left in best and right in best
                )
                for mask in masks
            ]
        if sum(weights) < self.parallel_threshold:
            return None
        scheduled = [i for i, weight in enumerate(weights) if weight > 0]
        if len(scheduled) < 2:
            return None
        try:
            from repro.parallel.partition import lpt_partition
            from repro.parallel.pool import run_chunks

            chunk_indices = lpt_partition(
                [weights[i] for i in scheduled], self.workers
            )
            chunks = [
                [masks[scheduled[j]] for j in group] for group in chunk_indices
            ]
            blob = pickle.dumps(
                (self.builder, best, graph, alias_to_relation, site),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            merged: dict[int, tuple[Plan | None, int]] = {}
            for result in run_chunks(
                self.workers,
                _dp_level_chunk_worker,
                [(blob, chunk) for chunk in chunks],
            ):
                merged.update(result)
        except Exception:
            return None
        enumerated = 0
        for mask in masks:
            got = merged.get(mask)
            if got is None:
                continue  # zero-weight mask: no viable split serially either
            plan, counted = got
            enumerated += counted
            if plan is not None:
                best[mask] = plan
        return enumerated

    # ------------------------------------------------------------------
    def _finish(
        self,
        query: SPJQuery,
        plan: Plan | None,
        alias_to_relation: Mapping[str, str],
    ) -> Plan | None:
        if plan is None:
            return None
        if query.has_aggregates or query.group_by:
            aggregates = tuple(
                p for p in query.projections if isinstance(p, Aggregate)
            )
            plan = self.builder.aggregate(
                plan, query.group_by, aggregates, alias_to_relation
            )
        if query.order_by:
            plan = self.builder.sort(plan, query.order_by)
        return plan


def _best_join(
    builder: PlanBuilder,
    best: Mapping[int, Plan],
    mask: int,
    graph: JoinGraph,
    alias_to_relation: Mapping[str, str],
    site: str,
) -> tuple[Plan | None, int]:
    """Cheapest join for *mask* over surviving sub-plans.

    The DP step for one subset: connected splits first, cross products
    only when no connected split survives (cross-product avoidance).
    Returns ``(plan, joins_enumerated)``; the plan is ``None`` when no
    split has both sides in *best*.
    """
    splits = [
        (left, right)
        for left, right in graph.splits(mask)
        if left in best and right in best
    ]
    candidates: list[Plan] = []
    enumerated = 0
    for connected_pass in (True, False):
        for left, right in splits:
            connecting = graph.connecting(left, right)
            if bool(connecting) != connected_pass:
                continue
            joined = builder.join(
                best[left],
                best[right],
                connecting,
                alias_to_relation,
                site=site,
            )
            enumerated += 1
            candidates.append(joined)
        if candidates:
            break
    if not candidates:
        return None, enumerated
    return min(candidates, key=_plan_cost), enumerated


def _dp_level_chunk_worker(
    blob: bytes, masks: Sequence[int]
) -> dict[int, tuple[Plan | None, int]]:
    """Worker-side slice of one DP level.

    *blob* decodes to ``(builder, best, graph, alias_to_relation,
    site)`` — pickled once by the parent, decoded here where the cost
    parallelizes.  Masks only read strictly smaller subsets of *best*,
    so chunk results are position-independent and the parent can merge
    them in serial mask order.
    """
    builder, best, graph, alias_to_relation, site = pickle.loads(blob)
    return {
        mask: _best_join(builder, best, mask, graph, alias_to_relation, site)
        for mask in masks
    }


def _plan_cost(plan: Plan) -> float:
    return plan.response_time()
