"""System-R dynamic programming over join orders (single site).

This is the seller's local optimizer.  Following Section 3.4, it runs
"progressively pruning sub-optimal access paths, first considering two-way
joins, then three-way joins, and so on" — and, crucially for QT, the
*modified* version keeps the optimal partial results (the best 2-way,
3-way, ... sub-plans) so they can be included in the seller's offer.

The optimizer counts every join combination it evaluates; the discrete-
event simulator turns that count into simulated optimization time, which
is how the experiments measure optimization cost deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import Expr, TRUE, conjoin, implies
from repro.sql.query import Aggregate, SPJQuery

__all__ = [
    "DPResult",
    "DynamicProgrammingOptimizer",
    "connecting_conjuncts",
    "subset_connected",
]


@dataclass
class DPResult:
    """Outcome of a local optimization run.

    Attributes
    ----------
    plan:
        Best plan for the complete query (with aggregation/sort applied),
        or ``None`` if the query was unsatisfiable.
    best:
        Best *join* plan per alias subset — the partial results that the
        modified DP exports as extra offers.
    enumerated:
        Number of candidate (sub-)plans evaluated; proxies optimization
        work for the simulator.
    """

    plan: Plan | None
    best: dict[frozenset[str], Plan] = field(default_factory=dict)
    enumerated: int = 0
    graph: JoinGraph | None = None


def subset_connected(
    subset: frozenset[str], conjuncts: Sequence[Expr]
) -> bool:
    """Is the join graph induced on *subset* connected?

    For a connected query, dynamic programming never needs disconnected
    intermediate results (the classic cross-product-avoidance rule), so
    optimizers skip such subsets entirely.

    Reference implementation: hot paths use the memoized
    :meth:`repro.optimizer.joingraph.JoinGraph.connected` instead.
    """
    if len(subset) <= 1:
        return True
    adjacency: dict[str, set[str]] = {alias: set() for alias in subset}
    for conjunct in conjuncts:
        tables = conjunct.tables()
        if len(tables) < 2 or not tables <= subset:
            continue
        ordered = sorted(tables)
        for i, u in enumerate(ordered):
            for v in ordered[i + 1 :]:
                adjacency[u].add(v)
                adjacency[v].add(u)
    start = next(iter(subset))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return seen == subset


def connecting_conjuncts(
    conjuncts: Sequence[Expr],
    left: frozenset[str],
    right: frozenset[str],
) -> tuple[Expr, ...]:
    """Predicate conjuncts joining *left* aliases with *right* aliases.

    Reference implementation: hot paths use the memoized
    :meth:`repro.optimizer.joingraph.JoinGraph.connecting` instead.
    """
    combined = left | right
    out = []
    for conjunct in conjuncts:
        tables = conjunct.tables()
        if len(tables) < 2:
            continue
        if tables <= combined and tables & left and tables & right:
            out.append(conjunct)
    return tuple(out)


class DynamicProgrammingOptimizer:
    """Exhaustive bushy DP with cross-product avoidance.

    Parameters
    ----------
    builder:
        The cost-annotated plan factory.
    max_relations:
        Safety valve: queries wider than this raise, protecting the
        simulator from 2^n blowups the caller did not intend.
    """

    name = "dp"

    def __init__(self, builder: PlanBuilder, max_relations: int = 14):
        self.builder = builder
        self.max_relations = max_relations

    # -- hooks for subclasses (IDP) ---------------------------------------
    def prune_level(
        self, level: int, best: dict[int, Plan], graph: JoinGraph
    ) -> None:
        """Called after each DP level completes; plain DP keeps everything.

        *best* is keyed by alias-subset bitmask (see :class:`JoinGraph`);
        deleting entries here prunes them from the search.
        """

    # ------------------------------------------------------------------
    def optimize(
        self,
        query: SPJQuery,
        site: str,
        coverage: Mapping[str, frozenset[int]] | None = None,
        finish: bool = True,
    ) -> DPResult:
        """Optimize *query* executing entirely at *site*.

        *coverage* limits each alias to a set of fragments (defaults to
        every fragment of the relation's scheme); the scan selectivity
        correctly excludes selection conjuncts already implied by the
        fragment restriction, so fragment row counts are not
        double-discounted.

        With *finish* set, grouping/aggregation and ORDER BY are applied
        on top of the best full join.
        """
        aliases = sorted(query.aliases)
        if len(aliases) > self.max_relations:
            raise ValueError(
                f"{len(aliases)}-relation query exceeds DP limit "
                f"{self.max_relations}; use IDP or greedy"
            )
        alias_to_relation = {r.alias: r.name for r in query.relations}
        conjuncts = query.predicate.conjuncts()
        graph = JoinGraph(aliases, conjuncts)
        best: dict[int, Plan] = {}
        enumerated = 0

        # Level 1: fragment scans (bit i <-> i-th alias in sorted order).
        for i, alias in enumerate(graph.aliases):
            ref = query.relation_for(alias)
            scheme = self.builder.schemes[ref.name]
            fragment_ids = (
                coverage.get(alias, scheme.fragment_ids)
                if coverage is not None
                else scheme.fragment_ids
            )
            restriction = scheme.restriction_for(alias, fragment_ids)
            selection_parts = [
                c
                for c in query.selection_on(alias).conjuncts()
                if restriction is TRUE or not implies(restriction, c)
            ]
            plan = self.builder.scan(
                ref,
                fragment_ids,
                conjoin(selection_parts),
                site,
                alias_to_relation,
            )
            best[1 << i] = plan
            enumerated += 1

        # Levels 2..n: best join per subset.  For connected queries, only
        # connected subsets are ever enumerated (cross-product avoidance);
        # cross-product splits are only materialized when no connected
        # split exists (second pass).
        n = graph.n
        query_connected = graph.is_connected
        by_size = graph.subsets_by_size(connected_only=query_connected)
        builder_join = self.builder.join
        for size in range(2, n + 1):
            for mask in by_size[size]:
                splits = [
                    (left, right)
                    for left, right in graph.splits(mask)
                    if left in best and right in best
                ]
                candidates: list[Plan] = []
                for connected_pass in (True, False):
                    for left, right in splits:
                        connecting = graph.connecting(left, right)
                        if bool(connecting) != connected_pass:
                            continue
                        joined = builder_join(
                            best[left],
                            best[right],
                            connecting,
                            alias_to_relation,
                            site=site,
                        )
                        enumerated += 1
                        candidates.append(joined)
                    if candidates:
                        break
                if candidates:
                    best[mask] = min(candidates, key=_plan_cost)
            self.prune_level(size, best, graph)

        full = best.get(graph.full_mask)
        best_by_subset = {
            graph.aliases_of(mask): plan for mask, plan in best.items()
        }
        plan = self._finish(query, full, alias_to_relation) if finish else full
        return DPResult(
            plan=plan, best=best_by_subset, enumerated=enumerated, graph=graph
        )

    # ------------------------------------------------------------------
    def _finish(
        self,
        query: SPJQuery,
        plan: Plan | None,
        alias_to_relation: Mapping[str, str],
    ) -> Plan | None:
        if plan is None:
            return None
        if query.has_aggregates or query.group_by:
            aggregates = tuple(
                p for p in query.projections if isinstance(p, Aggregate)
            )
            plan = self.builder.aggregate(
                plan, query.group_by, aggregates, alias_to_relation
            )
        if query.order_by:
            plan = self.builder.sort(plan, query.order_by)
        return plan


def _plan_cost(plan: Plan) -> float:
    return plan.response_time()
