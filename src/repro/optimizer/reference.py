"""Reference (pre-bitmask) enumeration implementations.

These classes preserve, verbatim, the original frozenset-based DP/IDP
enumeration loops from before the :mod:`repro.optimizer.joingraph`
rewire.  They are the executable *specification* of the enumeration
order: property tests assert the bitmask implementations produce
byte-identical plans, and ``benchmarks/bench_wallclock.py`` measures the
speedup against them.  They are intentionally unoptimized — do not use
them outside tests and benchmarks.
"""

from __future__ import annotations

from itertools import combinations

from repro.optimizer.dp import (
    DPResult,
    DynamicProgrammingOptimizer,
    _plan_cost,
    connecting_conjuncts,
    subset_connected,
)
from repro.optimizer.greedy import greedy_join
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import TRUE, conjoin, implies
from repro.sql.query import SPJQuery

__all__ = [
    "ReferenceDynamicProgrammingOptimizer",
    "ReferenceIDPOptimizer",
    "reference_buyer_generate",
]


class ReferenceDynamicProgrammingOptimizer(DynamicProgrammingOptimizer):
    """The original frozenset-per-subset System-R DP."""

    name = "dp-reference"

    # -- hook kept with the original (frozenset-keyed) signature ----------
    def reference_prune_level(
        self, level: int, best: dict[frozenset[str], Plan]
    ) -> None:
        """Called after each DP level; plain DP keeps everything."""

    def optimize(
        self,
        query: SPJQuery,
        site: str,
        coverage=None,
        finish: bool = True,
    ) -> DPResult:
        aliases = sorted(query.aliases)
        if len(aliases) > self.max_relations:
            raise ValueError(
                f"{len(aliases)}-relation query exceeds DP limit "
                f"{self.max_relations}; use IDP or greedy"
            )
        alias_to_relation = {r.alias: r.name for r in query.relations}
        conjuncts = query.predicate.conjuncts()
        best: dict[frozenset[str], Plan] = {}
        enumerated = 0

        # Level 1: fragment scans.
        for alias in aliases:
            ref = query.relation_for(alias)
            scheme = self.builder.schemes[ref.name]
            fragment_ids = (
                coverage.get(alias, scheme.fragment_ids)
                if coverage is not None
                else scheme.fragment_ids
            )
            restriction = scheme.restriction_for(alias, fragment_ids)
            selection_parts = [
                c
                for c in query.selection_on(alias).conjuncts()
                if restriction is TRUE or not implies(restriction, c)
            ]
            plan = self.builder.scan(
                ref,
                fragment_ids,
                conjoin(selection_parts),
                site,
                alias_to_relation,
            )
            best[frozenset((alias,))] = plan
            enumerated += 1

        # Levels 2..n: best join per subset.
        n = len(aliases)
        query_connected = subset_connected(frozenset(aliases), conjuncts)
        for size in range(2, n + 1):
            for combo in combinations(aliases, size):
                subset = frozenset(combo)
                if query_connected and not subset_connected(subset, conjuncts):
                    continue
                members = sorted(subset)
                anchor = members[0]
                splits: list[tuple[frozenset[str], frozenset[str]]] = []
                for split_size in range(1, size // 2 + 1):
                    for left_combo in combinations(members, split_size):
                        left = frozenset(left_combo)
                        right = subset - left
                        if size == 2 * split_size and anchor not in left:
                            continue
                        if left in best and right in best:
                            splits.append((left, right))
                candidates: list[Plan] = []
                for connected_pass in (True, False):
                    for left, right in splits:
                        connecting = connecting_conjuncts(
                            conjuncts, left, right
                        )
                        if bool(connecting) != connected_pass:
                            continue
                        joined = self.builder.join(
                            best[left],
                            best[right],
                            connecting,
                            alias_to_relation,
                            site=site,
                        )
                        enumerated += 1
                        candidates.append(joined)
                    if candidates:
                        break
                if candidates:
                    best[subset] = min(candidates, key=_plan_cost)
            self.reference_prune_level(size, best)

        full = best.get(frozenset(aliases))
        plan = self._finish(query, full, alias_to_relation) if finish else full
        return DPResult(plan=plan, best=best, enumerated=enumerated)


class ReferenceIDPOptimizer(ReferenceDynamicProgrammingOptimizer):
    """The original frozenset-keyed IDP-M(k, m)."""

    def __init__(
        self,
        builder: PlanBuilder,
        k: int = 2,
        m: int = 5,
        max_relations: int = 24,
    ):
        super().__init__(builder, max_relations=max_relations)
        if k < 2:
            raise ValueError("k must be at least 2")
        if m < 1:
            raise ValueError("m must be at least 1")
        self.k = k
        self.m = m
        self.name = f"idp-m({k},{m})-reference"

    def reference_prune_level(
        self, level: int, best: dict[frozenset[str], Plan]
    ) -> None:
        if level < 2 or level > self.k:
            return
        this_level = [s for s in best if len(s) == level]
        if len(this_level) <= self.m:
            return
        ranked = sorted(this_level, key=lambda s: _plan_cost(best[s]))
        for subset in ranked[self.m :]:
            del best[subset]

    def optimize(self, query, site, coverage=None, finish: bool = True):
        result = super().optimize(query, site, coverage, finish=False)
        aliases = frozenset(query.aliases)
        alias_to_relation = {r.alias: r.name for r in query.relations}
        if aliases not in result.best and len(aliases) > 1:
            parts = _maximal_disjoint_cover(result.best, aliases)
            plan, extra = greedy_join(
                parts,
                query.predicate.conjuncts(),
                alias_to_relation,
                self.builder,
                site,
            )
            result.enumerated += extra
            if plan is not None:
                result.best[aliases] = plan
        full = result.best.get(aliases)
        result.plan = (
            self._finish(query, full, alias_to_relation) if finish else full
        )
        return result


def _maximal_disjoint_cover(
    best: dict[frozenset[str], Plan], aliases: frozenset[str]
) -> dict[frozenset[str], Plan]:
    chosen: dict[frozenset[str], Plan] = {}
    covered: frozenset[str] = frozenset()
    for subset in sorted(
        best, key=lambda s: (-len(s), _plan_cost(best[s]))
    ):
        if subset <= aliases and not subset & covered:
            chosen[subset] = best[subset]
            covered |= subset
        if covered == aliases:
            break
    return chosen


def reference_buyer_generate(generator, query, offers):
    """The original frozenset-keyed buyer plan-generation DP.

    Runs the pre-rewire enumeration loop against *generator*'s own
    builder, valuation, and key-agnostic bucket helpers, returning a
    :class:`repro.trading.buyer.PlanGenResult` for equivalence testing.
    """
    from repro.trading.buyer import (
        FINAL,
        RAW,
        PlanGenResult,
        _Entry,
        _is_complete,
    )

    aliases = frozenset(query.aliases)
    alias_to_relation = {r.alias: r.name for r in query.relations}
    required = generator.required_coverage(query)
    if any(not fids for fids in required.values()):
        return PlanGenResult(best=None)
    conjuncts = query.predicate.conjuncts()
    enumerated = 0

    needs_final_shape = (
        query.has_aggregates or query.group_by or query.distinct
    )
    subsets: dict[frozenset[str], dict[tuple, _Entry]] = {}
    for offer in offers:
        if not offer.aliases or not offer.aliases <= aliases:
            continue
        coverage = {
            alias: frozenset(fids) & required[alias]
            for alias, fids in offer.coverage.items()
        }
        if any(not fids for fids in coverage.values()):
            continue
        form = RAW
        if (
            needs_final_shape
            and offer.exact_projections
            and offer.aliases == aliases
            and set(offer.query.projections) == set(query.projections)
            and set(offer.query.group_by) == set(query.group_by)
        ):
            form = FINAL
        plan = generator.builder.purchased(
            offer.query,
            offer.seller,
            rows=offer.properties.rows,
            total_time=offer.properties.total_time,
            coverage=coverage,
            buyer_site=generator.buyer_site,
            offer_id=offer.offer_id,
            money=offer.properties.money,
            freshness=offer.properties.freshness,
        )
        entry = _Entry(
            plan=plan,
            coverage=coverage,
            form=form,
            complete=_is_complete(coverage, required),
        )
        generator._add_entry(subsets, offer.aliases, entry)
        enumerated += 1

    for subset in list(subsets):
        enumerated += generator._union_closure(subsets, subset, query, required)

    members = sorted(aliases)
    query_connected = subset_connected(aliases, conjuncts)
    for size in range(2, len(members) + 1):
        for combo in combinations(members, size):
            subset = frozenset(combo)
            connected = subset_connected(subset, conjuncts)
            if query_connected and not connected:
                continue
            anchor = min(subset)
            allow_cross = not connected
            for split_size in range(1, size // 2 + 1):
                for left_combo in combinations(sorted(subset), split_size):
                    left = frozenset(left_combo)
                    right = subset - left
                    if size == 2 * split_size and anchor not in left:
                        continue
                    left_entries = subsets.get(left)
                    right_entries = subsets.get(right)
                    if not left_entries or not right_entries:
                        continue
                    connecting = connecting_conjuncts(conjuncts, left, right)
                    if not connecting and not allow_cross:
                        continue
                    for le in generator._join_participants(left_entries):
                        for re_ in generator._join_participants(right_entries):
                            joined = generator.builder.join(
                                le.plan,
                                re_.plan,
                                connecting,
                                alias_to_relation,
                                site=generator.buyer_site,
                            )
                            enumerated += 1
                            coverage = {**le.coverage, **re_.coverage}
                            entry = _Entry(
                                plan=joined,
                                coverage=coverage,
                                form=RAW,
                                complete=_is_complete(coverage, required),
                            )
                            generator._add_entry(subsets, subset, entry)
            enumerated += generator._union_closure(subsets, subset, query, required)
            generator._prune(subsets, subset)
        if generator.mode == "idp" and size == 2:
            _reference_idp_prune(generator, subsets, size)

    candidates = []
    for entry in subsets.get(aliases, {}).values():
        if not entry.complete:
            continue
        plan = entry.plan
        if entry.form == RAW:
            plan = generator._finish(query, plan, alias_to_relation)
        elif query.order_by:
            plan = generator.builder.sort(
                generator.builder.collocate(plan, generator.buyer_site),
                query.order_by,
            )
        candidates.append(generator._candidate(plan))
    candidates.sort(key=lambda c: c.value)
    best = candidates[0] if candidates else None
    return PlanGenResult(best=best, candidates=candidates, enumerated=enumerated)


def _reference_idp_prune(generator, subsets, size: int) -> None:
    level = [
        (subset, key, entry)
        for subset, bucket in subsets.items()
        if len(subset) == size
        for key, entry in bucket.items()
        if not entry.complete
    ]
    if len(level) <= generator.idp_m:
        return
    level.sort(key=lambda item: generator._entry_score(item[2]))
    for subset, key, _entry in level[generator.idp_m :]:
        del subsets[subset][key]
