"""Single-site query optimizers and the physical plan algebra.

Sellers use these optimizers to price their offers (Section 3.4: "the
sellers use their local query optimizer to find the best possible local
plan for each rewritten query"), and the modified dynamic-programming
algorithm additionally emits the optimal 2-way, 3-way, ... partial plans
that become extra offered queries.  The same algebra is reused by the
buyer plan generator and by the traditional-optimizer baselines.
"""

from repro.optimizer.plans import (
    FragmentScan,
    GroupAgg,
    HashJoin,
    NestedLoopJoin,
    Plan,
    PlanBuilder,
    Purchased,
    Sort,
    Transfer,
    Union,
)
from repro.optimizer.dp import DPResult, DynamicProgrammingOptimizer
from repro.optimizer.idp import IDPOptimizer
from repro.optimizer.greedy import GreedyOptimizer
from repro.optimizer.joingraph import JoinGraph

__all__ = [
    "JoinGraph",
    "FragmentScan",
    "GroupAgg",
    "HashJoin",
    "NestedLoopJoin",
    "Plan",
    "PlanBuilder",
    "Purchased",
    "Sort",
    "Transfer",
    "Union",
    "DPResult",
    "DynamicProgrammingOptimizer",
    "IDPOptimizer",
    "GreedyOptimizer",
]
