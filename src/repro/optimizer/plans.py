"""Physical plan operators and the cost-annotated plan builder.

Every operator carries its estimated output cardinality, the site it runs
at, and its own operator time under the cost model.  Two cost views
matter:

* :meth:`Plan.response_time` — elapsed time until the full answer is
  available, assuming answers shipped from *other* sites arrive in
  parallel while same-site work serializes.  This is the paper's default
  valuation ("the total time required to execute and transmit the results
  back to the buyer").
* :meth:`Plan.work_time` — total resource-seconds consumed anywhere, the
  basis of monetary valuations.

Plans are immutable; construct them through :class:`PlanBuilder`, which
consults the cardinality estimator and cost model so that every node is
born with consistent estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.cost.estimator import CardinalityEstimator
from repro.cost.model import CostModel, NodeCapabilities
from repro.sql.expr import Column, Comparison, Expr, TRUE, conjoin
from repro.sql.query import Aggregate, SPJQuery
from repro.sql.schema import PartitionScheme, RelationRef

__all__ = [
    "Plan",
    "FragmentScan",
    "HashJoin",
    "NestedLoopJoin",
    "Union",
    "GroupAgg",
    "Sort",
    "Transfer",
    "Purchased",
    "PlanBuilder",
]


@dataclass(frozen=True, slots=True)
class Plan:
    """Base class: a cost-annotated operator tree node."""

    rows: float
    site: str
    op_time: float
    # Memoized cost views (slots-compatible: declared as real fields,
    # excluded from init/repr/eq so plan identity is unaffected).
    _response_time: float | None = field(
        init=False, default=None, repr=False, compare=False
    )
    _work_time: float | None = field(
        init=False, default=None, repr=False, compare=False
    )

    @property
    def children(self) -> tuple["Plan", ...]:
        return ()

    # -- cost views ------------------------------------------------------
    def response_time(self) -> float:
        """Elapsed seconds until this operator's output is complete.

        Children are grouped by execution site: work at one site
        serializes (it competes for the same CPU/disk), while distinct
        sites proceed concurrently, so only the slowest site gates this
        operator.  Work co-located with this operator also serializes
        with it.  Plans are immutable, so the value is memoized.
        """
        cached = self._response_time
        if cached is not None:
            return cached
        per_site: dict[str, float] = {}
        for child in self.children:
            per_site[child.site] = per_site.get(child.site, 0.0) + (
                child.response_time()
            )
        local = per_site.pop(self.site, 0.0)
        remote = max(per_site.values(), default=0.0)
        value = self.op_time + max(local, remote)
        object.__setattr__(self, "_response_time", value)
        return value

    def work_time(self) -> float:
        """Total resource-seconds consumed across all sites (memoized)."""
        cached = self._work_time
        if cached is not None:
            return cached
        value = self.op_time + sum(c.work_time() for c in self.children)
        object.__setattr__(self, "_work_time", value)
        return value

    # -- structure ---------------------------------------------------------
    def aliases(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for child in self.children:
            out |= child.aliases()
        return out

    def operator_count(self) -> int:
        return 1 + sum(c.operator_count() for c in self.children)

    def leaves(self) -> tuple["Plan", ...]:
        if not self.children:
            return (self,)
        out: list[Plan] = []
        for child in self.children:
            out.extend(child.leaves())
        return tuple(out)

    def explain(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self.describe()}"]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return (
            f"{type(self).__name__}"
            f"[site={self.site} rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


@dataclass(frozen=True, slots=True)
class FragmentScan(Plan):
    """Scan locally held fragments of one relation, applying a selection."""

    ref: RelationRef = field(default=None)  # type: ignore[assignment]
    fragment_ids: frozenset[int] = frozenset()
    predicate: Expr = TRUE

    def aliases(self) -> frozenset[str]:
        return frozenset((self.ref.alias,))

    def describe(self) -> str:
        frags = ",".join(str(f) for f in sorted(self.fragment_ids))
        pred = "" if self.predicate is TRUE else f" WHERE {self.predicate.sql()}"
        return (
            f"Scan {self.ref.name} AS {self.ref.alias} frags[{frags}]{pred}"
            f" [site={self.site} rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


@dataclass(frozen=True, slots=True)
class _Binary(Plan):
    left: Plan = field(default=None)  # type: ignore[assignment]
    right: Plan = field(default=None)  # type: ignore[assignment]
    condition: Expr = TRUE

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.left, self.right)

    def describe(self) -> str:
        cond = "" if self.condition is TRUE else f" ON {self.condition.sql()}"
        return (
            f"{type(self).__name__}{cond}"
            f" [site={self.site} rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


@dataclass(frozen=True, slots=True)
class HashJoin(_Binary):
    """Equi-join via hashing; the workhorse join."""


@dataclass(frozen=True, slots=True)
class NestedLoopJoin(_Binary):
    """Fallback join for non-equi conditions and cross products."""


@dataclass(frozen=True, slots=True)
class Union(Plan):
    """Bag/set union of fragment-disjoint partial answers."""

    inputs: tuple[Plan, ...] = ()
    distinct: bool = False

    @property
    def children(self) -> tuple[Plan, ...]:
        return self.inputs

    def describe(self) -> str:
        kind = "UnionDistinct" if self.distinct else "UnionAll"
        return (
            f"{kind}({len(self.inputs)})"
            f" [site={self.site} rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


@dataclass(frozen=True, slots=True)
class GroupAgg(Plan):
    """Hash aggregation: GROUP BY + aggregates (or their re-aggregation)."""

    child: Plan = field(default=None)  # type: ignore[assignment]
    group_by: tuple[Column, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def describe(self) -> str:
        keys = ", ".join(c.sql() for c in self.group_by) or "<scalar>"
        return (
            f"GroupAgg[{keys}]"
            f" [site={self.site} rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


@dataclass(frozen=True, slots=True)
class Sort(Plan):
    """Sort on the ORDER BY keys."""

    child: Plan = field(default=None)  # type: ignore[assignment]
    keys: tuple[Column, ...] = ()

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.child,)


@dataclass(frozen=True, slots=True)
class Transfer(Plan):
    """Ship a child's result from its (source) site to ``dest``.

    The node's ``site`` is the *source*: shipping serializes with the
    producer's work, while transfers from distinct sources to the same
    consumer overlap — mirroring how :class:`Purchased` deliveries
    behave, so traded plans and traditional plans are costed under the
    same physics.
    """

    child: Plan = field(default=None)  # type: ignore[assignment]
    dest: str = ""

    @property
    def children(self) -> tuple[Plan, ...]:
        return (self.child,)

    def describe(self) -> str:
        return (
            f"Transfer {self.site} -> {self.dest}"
            f" [rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


@dataclass(frozen=True, slots=True)
class Purchased(Plan):
    """A query-answer bought from a seller during trading.

    ``op_time`` is the offered *total time* (seller-side execution plus
    shipping to the buyer) — a leaf from the buyer's perspective: what
    happens inside the seller is, in the paper's words, "no concern of
    Athens".  The node's ``site`` is the *seller* (so that purchases from
    different sellers overlap while purchases from the same one
    serialize), and ``delivered_at`` records where the answer lands;
    :meth:`PlanBuilder.collocate` therefore never re-ships it.
    """

    query: SPJQuery = field(default=None)  # type: ignore[assignment]
    seller: str = ""
    coverage: Mapping[str, frozenset[int]] = field(default_factory=dict)
    offer_id: int = -1
    delivered_at: str = ""
    money: float = 0.0  # charged amount from the offer
    freshness: float = 1.0  # offered data freshness

    def aliases(self) -> frozenset[str]:
        return frozenset(self.coverage)

    def describe(self) -> str:
        cov = "; ".join(
            f"{alias}:{sorted(fids)}" for alias, fids in sorted(self.coverage.items())
        )
        return (
            f"Purchased from {self.seller} offer#{self.offer_id} [{cov}]"
            f" [rows={self.rows:.0f} t={self.op_time:.4f}s]"
        )


class PlanBuilder:
    """Factory producing cost-annotated plans.

    Parameters
    ----------
    estimator:
        Cardinality estimator over the federation's statistics.
    cost_model:
        Operator/network cost model.
    capabilities:
        Per-site :class:`NodeCapabilities`; sites not present use
        *default_caps*.
    schemes:
        Partitioning scheme per relation (for fragment row counts).
    """

    def __init__(
        self,
        estimator: CardinalityEstimator,
        cost_model: CostModel,
        capabilities: Mapping[str, NodeCapabilities] | None = None,
        schemes: Mapping[str, PartitionScheme] | None = None,
        default_caps: NodeCapabilities | None = None,
    ):
        self.estimator = estimator
        self.cost_model = cost_model
        self.capabilities = dict(capabilities or {})
        self.schemes = dict(schemes or {})
        self.default_caps = default_caps or NodeCapabilities()

    def caps(self, site: str) -> NodeCapabilities:
        return self.capabilities.get(site, self.default_caps)

    # ------------------------------------------------------------------
    def scan(
        self,
        ref: RelationRef,
        fragment_ids: Iterable[int],
        selection: Expr,
        site: str,
        alias_to_relation: Mapping[str, str],
    ) -> FragmentScan:
        """Scan *fragment_ids* of *ref* at *site* applying *selection*.

        *selection* should NOT repeat the fragment restriction — fragment
        row counts come from the catalog directly.
        """
        scheme = self.schemes[ref.name]
        fragment_ids = frozenset(fragment_ids)
        rows_read = float(
            sum(scheme.fragment(fid).row_count for fid in fragment_ids)
        )
        selectivity = self.estimator.selectivity(selection, alias_to_relation)
        rows = rows_read * selectivity
        caps = self.caps(site)
        op_time = self.cost_model.scan(rows_read, caps)
        if selection is not TRUE:
            op_time += self.cost_model.cpu_pass(rows_read, caps)
        return FragmentScan(
            rows=rows,
            site=site,
            op_time=op_time,
            ref=ref,
            fragment_ids=fragment_ids,
            predicate=selection,
        )

    def join(
        self,
        left: Plan,
        right: Plan,
        conjuncts: Sequence[Expr],
        alias_to_relation: Mapping[str, str],
        site: str | None = None,
    ) -> Plan:
        """Join two sub-plans on *conjuncts* (empty = cross product).

        Children at other sites are wrapped in :class:`Transfer`.  Picks a
        hash join when an equi-join conjunct is available, otherwise a
        nested-loop join.
        """
        site = site or left.site
        left = self.collocate(left, site)
        right = self.collocate(right, site)
        selectivity = 1.0
        equi = False
        for conjunct in conjuncts:
            if isinstance(conjunct, Comparison) and conjunct.is_join:
                selectivity *= self.estimator.join_selectivity(
                    conjunct, alias_to_relation
                )
                if conjunct.op == "=":
                    equi = True
            else:
                selectivity *= self.estimator.selectivity(
                    conjunct, alias_to_relation
                )
        rows = left.rows * right.rows * selectivity
        caps = self.caps(site)
        condition = conjoin(conjuncts)
        if equi:
            op_time = self.cost_model.hash_join(
                left.rows, right.rows, rows, caps
            )
            return HashJoin(
                rows=rows,
                site=site,
                op_time=op_time,
                left=left,
                right=right,
                condition=condition,
            )
        op_time = self.cost_model.nested_loop_join(left.rows, right.rows, caps)
        return NestedLoopJoin(
            rows=rows,
            site=site,
            op_time=op_time,
            left=left,
            right=right,
            condition=condition,
        )

    def union(
        self, inputs: Sequence[Plan], site: str, distinct: bool = False
    ) -> Plan:
        """Union partial answers at *site*."""
        if len(inputs) == 1:
            return self.collocate(inputs[0], site)
        placed = tuple(self.collocate(p, site) for p in inputs)
        rows = sum(p.rows for p in placed)
        caps = self.caps(site)
        op_time = self.cost_model.cpu_pass(rows, caps)
        if distinct:
            op_time += self.cost_model.sort(rows, caps)
        return Union(
            rows=rows,
            site=site,
            op_time=op_time,
            inputs=placed,
            distinct=distinct,
        )

    def aggregate(
        self,
        child: Plan,
        group_by: Sequence[Column],
        aggregates: Sequence[Aggregate],
        alias_to_relation: Mapping[str, str],
        site: str | None = None,
    ) -> GroupAgg:
        site = site or child.site
        child = self.collocate(child, site)
        if group_by:
            groups = 1.0
            for col in group_by:
                groups *= self.estimator.distinct_values(col, alias_to_relation)
            rows = min(child.rows, groups)
        else:
            rows = 1.0
        caps = self.caps(site)
        op_time = self.cost_model.cpu_pass(child.rows, caps)
        return GroupAgg(
            rows=rows,
            site=site,
            op_time=op_time,
            child=child,
            group_by=tuple(group_by),
            aggregates=tuple(aggregates),
        )

    def sort(self, child: Plan, keys: Sequence[Column]) -> Sort:
        caps = self.caps(child.site)
        return Sort(
            rows=child.rows,
            site=child.site,
            op_time=self.cost_model.sort(child.rows, caps),
            child=child,
            keys=tuple(keys),
        )

    def collocate(self, plan: Plan, site: str) -> Plan:
        """Wrap *plan* in a :class:`Transfer` if it runs elsewhere.

        Purchased answers whose delivery site is already *site* are left
        alone — their offered time includes shipping — as are results
        already in flight to *site* via an earlier Transfer.
        """
        if plan.site == site:
            return plan
        if isinstance(plan, Purchased) and plan.delivered_at == site:
            return plan
        if isinstance(plan, Transfer) and plan.dest == site:
            return plan
        source = plan.dest if isinstance(plan, Transfer) else plan.site
        return Transfer(
            rows=plan.rows,
            site=source,
            op_time=self.cost_model.transfer(plan.rows),
            child=plan,
            dest=site,
        )

    def purchased(
        self,
        query: SPJQuery,
        seller: str,
        rows: float,
        total_time: float,
        coverage: Mapping[str, frozenset[int]],
        buyer_site: str,
        offer_id: int = -1,
        money: float = 0.0,
        freshness: float = 1.0,
    ) -> Purchased:
        return Purchased(
            rows=rows,
            site=seller,
            op_time=total_time,
            query=query,
            seller=seller,
            coverage=dict(coverage),
            offer_id=offer_id,
            delivered_at=buyer_site,
            money=money,
            freshness=freshness,
        )
