"""Greedy join-order heuristic.

Used (a) as a standalone scalable optimizer for very wide queries and
(b) as the completion fallback for IDP when beam pruning has removed
every exact way to assemble the full relation set.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.optimizer.dp import (
    DPResult,
    DynamicProgrammingOptimizer,
    _plan_cost,
)
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import Expr
from repro.sql.query import SPJQuery

__all__ = ["GreedyOptimizer", "greedy_join"]


def greedy_join(
    parts: dict[frozenset[str], Plan],
    conjuncts: Sequence[Expr],
    alias_to_relation: Mapping[str, str],
    builder: PlanBuilder,
    site: str,
    graph: JoinGraph | None = None,
) -> tuple[Plan | None, int]:
    """Combine disjoint partial plans into one by repeated cheapest joins.

    *parts* maps disjoint alias subsets to plans that jointly cover the
    query.  Returns the combined plan and the number of join candidates
    evaluated.  Connected joins are preferred; cross products are used
    only when no connected pair exists.  Callers that already hold a
    :class:`JoinGraph` for the query pass it to share its memoized
    connecting-conjunct lookups.
    """
    if not parts:
        return None, 0
    if graph is None:
        universe: set[str] = set()
        for key in parts:
            universe |= key
        graph = JoinGraph(universe, conjuncts)
    working = {graph.mask_of(key): plan for key, plan in parts.items()}
    enumerated = 0
    while len(working) > 1:
        best_key: tuple[int, int] | None = None
        best_plan: Plan | None = None
        best_connected = False
        keys = sorted(working, key=graph.bits)
        for i, left in enumerate(keys):
            for right in keys[i + 1 :]:
                connecting = graph.connecting(left, right)
                joined = builder.join(
                    working[left],
                    working[right],
                    connecting,
                    alias_to_relation,
                    site=site,
                )
                enumerated += 1
                connected = bool(connecting)
                better = best_plan is None or (
                    (connected, -_plan_cost(joined))
                    > (best_connected, -_plan_cost(best_plan))
                )
                if better:
                    best_key = (left, right)
                    best_plan = joined
                    best_connected = connected
        assert best_key is not None and best_plan is not None
        left, right = best_key
        del working[left]
        del working[right]
        working[left | right] = best_plan
    (_, plan), = working.items()
    return plan, enumerated


class GreedyOptimizer(DynamicProgrammingOptimizer):
    """Scans every relation, then greedily joins the cheapest pair."""

    name = "greedy"

    def __init__(self, builder: PlanBuilder):
        super().__init__(builder, max_relations=10_000)

    def optimize(
        self,
        query: SPJQuery,
        site: str,
        coverage=None,
        finish: bool = True,
    ) -> DPResult:
        alias_to_relation = {r.alias: r.name for r in query.relations}
        parts: dict[frozenset[str], Plan] = {}
        enumerated = 0
        from repro.sql.expr import TRUE, conjoin, implies

        for ref in query.relations:
            scheme = self.builder.schemes[ref.name]
            fragment_ids = (
                coverage.get(ref.alias, scheme.fragment_ids)
                if coverage is not None
                else scheme.fragment_ids
            )
            restriction = scheme.restriction_for(ref.alias, fragment_ids)
            selection_parts = [
                c
                for c in query.selection_on(ref.alias).conjuncts()
                if restriction is TRUE or not implies(restriction, c)
            ]
            parts[frozenset((ref.alias,))] = self.builder.scan(
                ref,
                fragment_ids,
                conjoin(selection_parts),
                site,
                alias_to_relation,
            )
            enumerated += 1
        plan, extra = greedy_join(
            parts,
            query.predicate.conjuncts(),
            alias_to_relation,
            self.builder,
            site,
        )
        enumerated += extra
        best = {frozenset(query.aliases): plan} if plan is not None else {}
        best.update(parts)
        if finish:
            plan = self._finish(query, plan, alias_to_relation)
        return DPResult(plan=plan, best=best, enumerated=enumerated)
