"""Bitmask join-graph enumeration core.

Every enumeration-heavy component — the seller's System-R DP (§3.4), IDP
(§3.6), the greedy fallback, the buyer plan generator and the distributed
DP baseline — needs the same three primitives over a query's join graph:

* *connectivity* of an alias subset (cross-product avoidance),
* the *connecting conjuncts* between two disjoint subsets,
* enumeration of the subsets/splits themselves.

The original implementation re-derived all of it per subset from
``frozenset[str]`` values: each ``subset_connected`` call rebuilt an
adjacency map and re-computed every conjunct's ``tables()`` frozenset,
and each split materialized fresh frozensets.  :class:`JoinGraph` interns
the query's aliases to bit positions once, pre-computes a bitmask per
join conjunct and a neighbor mask per alias, and answers all three
primitives over plain ``int`` masks with memoization.  Connected subsets
are enumerated directly, csg-style (Moerkotte & Neumann's
``EnumerateCsg``), instead of generating all ``combinations`` and
filtering.

Determinism contract — the orders observable by consumers are exactly the
orders the original frozenset code produced:

* ``subsets_by_size`` yields, per size, the same sequence as
  ``itertools.combinations(sorted(aliases), size)`` (lexicographic in the
  sorted-alias order), restricted to connected subsets when asked;
* ``splits`` yields ``(left, right)`` pairs in the original nested-loop
  order: ascending ``split_size``, ``combinations`` over the subset's
  members, symmetric splits halved by anchoring the subset's smallest
  member on the left;
* ``connecting`` preserves the conjuncts' original predicate order.

Because ``bool`` is deterministic and every cache is keyed on masks, two
runs over the same query produce bit-identical plans.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.sql.expr import Expr

__all__ = ["JoinGraph"]


class JoinGraph:
    """Interned, memoized view of one query's join graph.

    Parameters
    ----------
    aliases:
        The query's relation aliases (the *universe*).  Bit ``i``
        corresponds to the ``i``-th alias in sorted order.
    conjuncts:
        The query predicate's conjuncts.  Conjuncts referencing fewer
        than two universe aliases are ignored (selections); conjuncts
        referencing aliases outside the universe are ignored entirely
        (they can never be satisfied within it) — this mirrors the
        ``tables <= subset`` guards of the original helpers.
    """

    __slots__ = (
        "aliases",
        "n",
        "full_mask",
        "_index",
        "_join_conjuncts",
        "_neighbor_masks",
        "_hyper_masks",
        "_connected_cache",
        "_connecting_cache",
        "_aliases_cache",
        "_subsets_cache",
        "_split_count_cache",
    )

    def __init__(self, aliases: Iterable[str], conjuncts: Sequence[Expr]):
        self.aliases: tuple[str, ...] = tuple(sorted(set(aliases)))
        self.n = len(self.aliases)
        self.full_mask = (1 << self.n) - 1
        self._index = {alias: i for i, alias in enumerate(self.aliases)}

        # (conjunct, mask) for join conjuncts fully inside the universe,
        # in original predicate order (connecting() output order).
        join_conjuncts: list[tuple[Expr, int]] = []
        neighbor = [0] * self.n
        hyper: list[int] = []
        for conjunct in conjuncts:
            tables = conjunct.tables()
            if len(tables) < 2:
                continue
            mask = 0
            for table in tables:
                i = self._index.get(table)
                if i is None:
                    mask = -1
                    break
                mask |= 1 << i
            if mask < 0:
                continue
            join_conjuncts.append((conjunct, mask))
            if mask.bit_count() == 2:
                # A binary edge: each endpoint neighbors the other.
                m = mask
                lo = m & -m
                hi = m ^ lo
                neighbor[lo.bit_length() - 1] |= hi
                neighbor[hi.bit_length() - 1] |= lo
            else:
                # A hyperedge (e.g. an OR spanning 3+ relations) only
                # exists inside subsets containing *all* its aliases.
                hyper.append(mask)
        self._join_conjuncts = tuple(join_conjuncts)
        self._neighbor_masks = neighbor
        self._hyper_masks = tuple(hyper)

        self._connected_cache: dict[int, bool] = {}
        self._connecting_cache: dict[tuple[int, int], tuple[Expr, ...]] = {}
        self._aliases_cache: dict[int, frozenset[str]] = {}
        self._subsets_cache: dict[bool, dict[int, tuple[int, ...]]] = {}
        self._split_count_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Mask <-> alias conversions
    # ------------------------------------------------------------------
    def mask_of(self, aliases: Iterable[str]) -> int:
        """Bitmask of an alias collection (must be within the universe)."""
        mask = 0
        index = self._index
        for alias in aliases:
            mask |= 1 << index[alias]
        return mask

    def aliases_of(self, mask: int) -> frozenset[str]:
        """The frozenset of aliases a mask denotes (cached)."""
        cached = self._aliases_cache.get(mask)
        if cached is None:
            universe = self.aliases
            cached = frozenset(universe[i] for i in self.bits(mask))
            self._aliases_cache[mask] = cached
        return cached

    def members(self, mask: int) -> tuple[str, ...]:
        """The mask's aliases in sorted order."""
        universe = self.aliases
        return tuple(universe[i] for i in self.bits(mask))

    @staticmethod
    def bits(mask: int) -> tuple[int, ...]:
        """Set bit positions of *mask*, ascending."""
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return tuple(out)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        """Is the whole query's join graph connected?"""
        return self.connected(self.full_mask)

    def connected(self, mask: int) -> bool:
        """Is the join graph induced on *mask* connected?

        Matches ``subset_connected``: only conjuncts whose aliases all lie
        within *mask* contribute edges; subsets of size <= 1 are
        connected.
        """
        cached = self._connected_cache.get(mask)
        if cached is not None:
            return cached
        result = self._connected(mask)
        self._connected_cache[mask] = result
        return result

    def _connected(self, mask: int) -> bool:
        if mask & (mask - 1) == 0:  # zero or one bit set
            return True
        neighbor = self._neighbor_masks
        reach = mask & -mask
        if not self._hyper_masks:
            frontier = reach
            while frontier:
                grown = 0
                m = frontier
                while m:
                    low = m & -m
                    grown |= neighbor[low.bit_length() - 1]
                    m ^= low
                frontier = grown & mask & ~reach
                reach |= frontier
            return reach == mask
        # Rare path: hyperedges connect all their aliases at once, but
        # only when fully contained in the subset.
        hyper = [h for h in self._hyper_masks if h & ~mask == 0]
        while True:
            frontier = reach
            while frontier:
                grown = 0
                m = frontier
                while m:
                    low = m & -m
                    grown |= neighbor[low.bit_length() - 1]
                    m ^= low
                frontier = grown & mask & ~reach
                reach |= frontier
            added = 0
            for h in hyper:
                if h & reach and h & ~reach:
                    added |= h
            if not added:
                return reach == mask
            reach |= added

    def connecting(self, left: int, right: int) -> tuple[Expr, ...]:
        """Join conjuncts between *left* and *right* (memoized).

        Matches ``connecting_conjuncts``: conjuncts fully inside
        ``left | right`` touching both sides, in predicate order.
        """
        key = (left, right)
        cached = self._connecting_cache.get(key)
        if cached is not None:
            return cached
        combined = left | right
        out = tuple(
            conjunct
            for conjunct, mask in self._join_conjuncts
            if mask & ~combined == 0 and mask & left and mask & right
        )
        self._connecting_cache[key] = out
        return out

    # ------------------------------------------------------------------
    # Enumeration
    # ------------------------------------------------------------------
    def subsets_by_size(
        self, connected_only: bool = True
    ) -> dict[int, tuple[int, ...]]:
        """Alias-subset masks of each size from 2 to n (cached).

        With ``connected_only`` (the cross-product-avoidance case) only
        connected subsets appear, enumerated csg-style — disconnected
        subsets are never materialized.  Each size bucket is ordered
        exactly as ``combinations(sorted_aliases, size)`` would order its
        surviving subsets.
        """
        cached = self._subsets_cache.get(connected_only)
        if cached is not None:
            return cached
        by_size: dict[int, list[int]] = {size: [] for size in range(2, self.n + 1)}
        if connected_only:
            for mask in self._enumerate_csg():
                size = mask.bit_count()
                if size >= 2:
                    by_size[size].append(mask)
            for bucket in by_size.values():
                bucket.sort(key=self.bits)
        else:
            indices = range(self.n)
            for size in range(2, self.n + 1):
                for combo in combinations(indices, size):
                    mask = 0
                    for i in combo:
                        mask |= 1 << i
                    by_size[size].append(mask)
        result = {size: tuple(bucket) for size, bucket in by_size.items()}
        self._subsets_cache[connected_only] = result
        return result

    def _enumerate_csg(self) -> Iterator[int]:
        """All connected subgraph masks (EnumerateCsg, any order).

        With hyperedges present, neighbor-mask expansion under-reports
        connectivity, so fall back to filtering all subsets through
        :meth:`connected` (still memoized and allocation-free).
        """
        if self._hyper_masks:
            for i in range(self.n):
                yield 1 << i
            indices = range(self.n)
            for size in range(2, self.n + 1):
                for combo in combinations(indices, size):
                    mask = 0
                    for i in combo:
                        mask |= 1 << i
                    if self.connected(mask):
                        yield mask
            return
        neighbor = self._neighbor_masks
        n = self.n

        def neighborhood(mask: int) -> int:
            grown = 0
            m = mask
            while m:
                low = m & -m
                grown |= neighbor[low.bit_length() - 1]
                m ^= low
            return grown & ~mask

        def recurse(subgraph: int, forbidden: int) -> Iterator[int]:
            hood = neighborhood(subgraph) & ~forbidden
            if not hood:
                return
            # Every non-empty subset of the neighborhood extends the csg.
            extensions = []
            sub = hood
            while sub:
                extensions.append(sub)
                sub = (sub - 1) & hood
            for ext in reversed(extensions):  # ascending, deterministic
                yield subgraph | ext
            blocked = forbidden | hood
            for ext in reversed(extensions):
                yield from recurse(subgraph | ext, blocked)

        for i in range(n - 1, -1, -1):
            start = 1 << i
            yield start
            # Forbid all smaller-indexed vertices: each csg is emitted
            # exactly once, from its minimum vertex.
            yield from recurse(start, (1 << i) - 1)

    def level_masks(
        self, size: int, connected_only: bool = True
    ) -> tuple[int, ...]:
        """The masks of one lattice level, in serial enumeration order.

        Thin accessor over :meth:`subsets_by_size` for the level-at-a-
        time schedulers (sizes outside ``2..n`` are empty levels).
        """
        return self.subsets_by_size(connected_only).get(size, ())

    def total_splits(self, mask: int) -> int:
        """How many ``(left, right)`` pairs :meth:`splits` yields.

        Closed form — ``2**(size-1) - 1`` unordered two-way partitions —
        so callers can budget split-enumeration work without paying it.
        """
        size = mask.bit_count()
        if size < 2:
            return 0
        return (1 << (size - 1)) - 1

    def connected_split_count(self, mask: int) -> int:
        """Splits of *mask* whose sides are both connected (memoized).

        The structural per-subset work estimate of the cost-based
        lattice allocator: joins can only materialize on splits whose
        complement halves are themselves reachable DP states, so this
        count tracks a mask's true join workload far better than the
        raw :meth:`total_splits` count does on sparse join graphs (a
        chain's level-``k`` mask has ``k-1`` connected splits out of
        ``2**(k-1) - 1`` total).
        """
        cached = self._split_count_cache.get(mask)
        if cached is not None:
            return cached
        count = 0
        for left, right in self.splits(mask):
            if self.connected(left) and self.connected(right):
                count += 1
        self._split_count_cache[mask] = count
        return count

    def splits(self, mask: int) -> Iterator[tuple[int, int]]:
        """Two-way partitions of *mask* in the original DP order.

        Ascending ``split_size`` from 1 to ``size // 2``; within a size,
        ``combinations`` order over the subset's sorted members; when both
        sides have equal size, only splits keeping the subset's smallest
        member on the left are yielded (symmetry halving).
        """
        members = self.bits(mask)
        size = len(members)
        anchor_bit = 1 << members[0]
        for split_size in range(1, size // 2 + 1):
            symmetric = size == 2 * split_size
            for combo in combinations(members, split_size):
                left = 0
                for i in combo:
                    left |= 1 << i
                if symmetric and not left & anchor_bit:
                    continue
                yield left, mask ^ left
