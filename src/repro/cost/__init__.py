"""Cost estimation substrate: node/network models and cardinalities.

Sellers price their offers with their *local* optimizer and cost model
(the paper stresses that offers "can be extremely precise, taking into
account the available network resources and the current workload of
sellers").  The same machinery, fed with full-catalog knowledge, powers
the traditional-optimizer baselines so plan costs are comparable.
"""

from repro.cost.model import (
    CostModel,
    NetworkParameters,
    NodeCapabilities,
)
from repro.cost.estimator import (
    AttributeStats,
    CardinalityEstimator,
    StatsCatalog,
    TableStats,
    stats_for_catalog,
)

__all__ = [
    "CostModel",
    "NetworkParameters",
    "NodeCapabilities",
    "AttributeStats",
    "CardinalityEstimator",
    "StatsCatalog",
    "TableStats",
    "stats_for_catalog",
]
