"""Cardinality and selectivity estimation.

Classic System-R style estimation under uniformity and independence
assumptions: per-attribute statistics (distinct count, min/max), constant
selectivities derived from them, join selectivity ``1/max(d1, d2)``.
Fragment restrictions need no special treatment — a fragment predicate is
just another conjunct whose selectivity the estimator prices (for the
synthetic generator's partitions the estimate is exact).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.catalog.catalog import Catalog
from repro.sql.expr import (
    And,
    Column,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    Or,
    TRUE,
    FALSE,
)
from repro.sql.query import SPJQuery
from repro.sql.schema import Relation

__all__ = [
    "AttributeStats",
    "TableStats",
    "StatsCatalog",
    "CardinalityEstimator",
    "stats_for_catalog",
]

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0


@dataclass(frozen=True)
class AttributeStats:
    """Statistics for one attribute: distinct count and value range."""

    distinct: int
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.distinct <= 0:
            raise ValueError("distinct must be positive")


@dataclass(frozen=True)
class TableStats:
    """Statistics for one relation."""

    row_count: int
    attributes: Mapping[str, AttributeStats] = field(default_factory=dict)

    def attribute(self, name: str) -> AttributeStats | None:
        return self.attributes.get(name)


StatsCatalog = Mapping[str, TableStats]


def stats_for_catalog(catalog: Catalog) -> dict[str, TableStats]:
    """Derive statistics for the synthetic generator's schema.

    Knows the shapes produced by :mod:`repro.catalog.datagen`: ``id`` is a
    dense key, ``ref*`` reference a key domain of similar size, ``part``
    has one value per fragment, ``cat`` has low cardinality, ``val`` is a
    continuous payload.  For relations outside that convention a uniform
    default (distinct = rows, unknown range) is used.
    """
    stats: dict[str, TableStats] = {}
    for name in catalog.relation_names():
        relation = catalog.relation(name)
        scheme = catalog.scheme(name)
        rows = max(1, scheme.total_rows)
        fragments = len(scheme.fragments)
        attrs: dict[str, AttributeStats] = {}
        for attribute in relation.attributes:
            if attribute.name == "id":
                attrs["id"] = AttributeStats(rows, 0, rows - 1)
            elif attribute.name.startswith("ref"):
                attrs[attribute.name] = AttributeStats(rows, 0, rows - 1)
            elif attribute.name == "part":
                attrs["part"] = AttributeStats(fragments, 0, fragments - 1)
            elif attribute.name == "cat":
                from repro.catalog.datagen import CATEGORY_CARDINALITY

                attrs["cat"] = AttributeStats(
                    CATEGORY_CARDINALITY, 0, CATEGORY_CARDINALITY - 1
                )
            elif attribute.dtype == "str":
                attrs[attribute.name] = AttributeStats(max(1, rows // 10))
            else:
                attrs[attribute.name] = AttributeStats(rows, 0.0, 1.0)
        stats[name] = TableStats(rows, attrs)
    return stats


class CardinalityEstimator:
    """Estimates row counts of (sub)queries under a stats catalog."""

    def __init__(self, stats: StatsCatalog, schemas: Mapping[str, Relation]):
        self._stats = stats
        self._schemas = schemas

    # ------------------------------------------------------------------
    def table_rows(self, relation: str) -> int:
        stats = self._stats.get(relation)
        return stats.row_count if stats else 1000

    def _attr_stats(self, relation: str, attr: str) -> AttributeStats | None:
        stats = self._stats.get(relation)
        return stats.attribute(attr) if stats else None

    # ------------------------------------------------------------------
    def selectivity(
        self, expr: Expr, alias_to_relation: Mapping[str, str]
    ) -> float:
        """Fraction of tuples satisfying *expr* (selections only).

        Join conjuncts should be priced with :meth:`join_selectivity`;
        passing them here treats them at the default equality selectivity.
        """
        if expr is TRUE:
            return 1.0
        if expr is FALSE:
            return 0.0
        if isinstance(expr, And):
            sel = 1.0
            for child in expr.children:
                sel *= self.selectivity(child, alias_to_relation)
            return sel
        if isinstance(expr, Or):
            keep = 1.0
            for child in expr.children:
                keep *= 1.0 - self.selectivity(child, alias_to_relation)
            return 1.0 - keep
        if isinstance(expr, Not):
            return 1.0 - self.selectivity(expr.child, alias_to_relation)
        if isinstance(expr, InList):
            stats = self._column_stats(expr.col, alias_to_relation)
            if stats is None:
                return min(1.0, DEFAULT_EQ_SELECTIVITY * len(expr.values))
            return min(1.0, len(expr.values) / stats.distinct)
        if isinstance(expr, Comparison):
            return self._comparison_selectivity(expr, alias_to_relation)
        return DEFAULT_EQ_SELECTIVITY

    def _column_stats(
        self, col: Column, alias_to_relation: Mapping[str, str]
    ) -> AttributeStats | None:
        relation = alias_to_relation.get(col.table, col.table)
        return self._attr_stats(relation, col.name)

    def _comparison_selectivity(
        self, cmp: Comparison, alias_to_relation: Mapping[str, str]
    ) -> float:
        norm = cmp.normalized()
        if norm.is_join:
            return self.join_selectivity(norm, alias_to_relation)
        if not isinstance(norm.left, Column) or not isinstance(
            norm.right, Literal
        ):
            return DEFAULT_EQ_SELECTIVITY
        stats = self._column_stats(norm.left, alias_to_relation)
        value = norm.right.value
        if norm.op == "=":
            return 1.0 / stats.distinct if stats else DEFAULT_EQ_SELECTIVITY
        if norm.op == "!=":
            return (
                1.0 - 1.0 / stats.distinct if stats else 1 - DEFAULT_EQ_SELECTIVITY
            )
        # Range operators.
        if (
            stats is None
            or stats.low is None
            or stats.high is None
            or not isinstance(value, (int, float))
            or stats.high <= stats.low
        ):
            return DEFAULT_RANGE_SELECTIVITY
        span = stats.high - stats.low
        if norm.op in ("<", "<="):
            fraction = (value - stats.low) / span
        else:
            fraction = (stats.high - value) / span
        return min(1.0, max(0.0, fraction))

    def join_selectivity(
        self, cmp: Comparison, alias_to_relation: Mapping[str, str]
    ) -> float:
        """Selectivity of an equi-join conjunct: ``1/max(d_left, d_right)``."""
        if not (
            isinstance(cmp.left, Column) and isinstance(cmp.right, Column)
        ):
            return DEFAULT_EQ_SELECTIVITY
        left = self._column_stats(cmp.left, alias_to_relation)
        right = self._column_stats(cmp.right, alias_to_relation)
        d1 = left.distinct if left else 100
        d2 = right.distinct if right else 100
        if cmp.op != "=":
            return DEFAULT_RANGE_SELECTIVITY
        return 1.0 / max(d1, d2, 1)

    # ------------------------------------------------------------------
    def query_rows(
        self,
        query: SPJQuery,
        base_rows: Mapping[str, float] | None = None,
    ) -> float:
        """Estimated output cardinality of an SPJ(+aggregate) query.

        *base_rows* overrides the per-alias input cardinalities (used when
        a query ranges over a fragment subset whose size is known exactly
        from the catalog rather than via predicate selectivity).
        """
        alias_to_relation = {r.alias: r.name for r in query.relations}
        card = 1.0
        for ref in query.relations:
            if base_rows and ref.alias in base_rows:
                card *= max(base_rows[ref.alias], 0.0)
            else:
                card *= self.table_rows(ref.name)
        for conjunct in query.predicate.conjuncts():
            card *= self.selectivity(conjunct, alias_to_relation)
        card = max(card, 0.0)
        if query.group_by:
            groups = 1.0
            for col in query.group_by:
                stats = self._column_stats(col, alias_to_relation)
                groups *= stats.distinct if stats else 10
            card = min(card, groups)
        elif query.has_aggregates:
            card = 1.0  # scalar aggregate
        return card

    def distinct_values(
        self, col: Column, alias_to_relation: Mapping[str, str]
    ) -> int:
        stats = self._column_stats(col, alias_to_relation)
        return stats.distinct if stats else 10
