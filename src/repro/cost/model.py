"""Node, network, and operator cost models.

Costs are expressed in (simulated) seconds.  Each node has its own
processing capabilities and a *load* factor — the paper emphasises that a
seller's offer reflects "the available network resources and the current
workload of sellers", and the competitive experiments (E8) rely on load
moving prices.

The model is deliberately simple and fully deterministic:

* sequential scan:      rows_read / io_rate
* predicate/projection: rows / cpu_rate
* hash join:            (left + right + output) / cpu_rate
* nested-loop join:     (left × right) / cpu_rate  (what DP must avoid)
* sort:                 n·log2(n) / cpu_rate
* group/aggregate:      rows / cpu_rate
* union/merge:          rows / cpu_rate
* network transfer:     latency + rows·row_bytes / bandwidth

A load factor ``l`` scales effective node speed by ``1/(1+l)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["NodeCapabilities", "NetworkParameters", "CostModel"]


@dataclass(frozen=True)
class NodeCapabilities:
    """Processing profile of one node."""

    cpu_rate: float = 2e6  # tuples/second through CPU-bound operators
    io_rate: float = 5e5  # tuples/second off storage
    load: float = 0.0  # queued-work factor; 0 = idle
    price_per_second: float = 1.0  # for monetary valuations

    def __post_init__(self) -> None:
        if self.cpu_rate <= 0 or self.io_rate <= 0:
            raise ValueError("rates must be positive")
        if self.load < 0:
            raise ValueError("load cannot be negative")

    @property
    def slowdown(self) -> float:
        return 1.0 + self.load

    def with_load(self, load: float) -> "NodeCapabilities":
        return replace(self, load=load)


@dataclass(frozen=True)
class NetworkParameters:
    """Shared network fabric parameters."""

    latency: float = 0.02  # seconds per message
    bandwidth: float = 1.25e7  # bytes/second (100 Mbit)
    row_bytes: int = 100  # serialized tuple size
    control_message_bytes: int = 1024  # RFBs, offers, awards

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("invalid network parameters")


class CostModel:
    """Computes operator times for a node/network configuration."""

    def __init__(self, network: NetworkParameters | None = None):
        self.network = network or NetworkParameters()

    # -- local operators -------------------------------------------------
    def scan(self, rows_read: float, caps: NodeCapabilities) -> float:
        return rows_read / caps.io_rate * caps.slowdown

    def cpu_pass(self, rows: float, caps: NodeCapabilities) -> float:
        """One CPU pass over *rows* (filter, project, union, aggregate)."""
        return rows / caps.cpu_rate * caps.slowdown

    def hash_join(
        self,
        left_rows: float,
        right_rows: float,
        output_rows: float,
        caps: NodeCapabilities,
    ) -> float:
        return (
            (left_rows + right_rows + output_rows)
            / caps.cpu_rate
            * caps.slowdown
        )

    def nested_loop_join(
        self, left_rows: float, right_rows: float, caps: NodeCapabilities
    ) -> float:
        return left_rows * right_rows / caps.cpu_rate * caps.slowdown

    def sort(self, rows: float, caps: NodeCapabilities) -> float:
        if rows <= 1:
            return 1.0 / caps.cpu_rate
        return rows * math.log2(rows) / caps.cpu_rate * caps.slowdown

    # -- network -----------------------------------------------------------
    def transfer(self, rows: float) -> float:
        """Shipping *rows* result tuples across the network."""
        return self.network.latency + rows * self.network.row_bytes / (
            self.network.bandwidth
        )

    def control_message(self) -> float:
        """Shipping one negotiation message (RFB, offer, award, ...)."""
        return (
            self.network.latency
            + self.network.control_message_bytes / self.network.bandwidth
        )

    def result_bytes(self, rows: float) -> float:
        return rows * self.network.row_bytes

    # -- money ---------------------------------------------------------------
    def monetary(self, seconds: float, caps: NodeCapabilities) -> float:
        return seconds * caps.price_per_second
