"""Query model substrate: expressions, schemas, SPJ queries, parsing, rewriting.

This package implements the relational query model that the Query-Trading
(QT) optimizer negotiates over: select-project-join queries with optional
grouping/aggregation, conjunctive predicates, horizontal-fragment
restrictions, and the two query-level algorithms of the paper —

* the seller-side *query rewrite* algorithm of Section 3.4 (restrict a query
  to locally available fragments, dropping non-local relations), and
* the *answering-queries-using-views* machinery of Sections 3.5/3.6 used by
  the seller predicates analyser and the buyer plan generator.
"""

from repro.sql.expr import (
    TRUE,
    FALSE,
    And,
    Column,
    Comparison,
    DomainConstraint,
    Expr,
    InList,
    Literal,
    Not,
    Or,
    analyze_conjunction,
    column,
    conjoin,
    eq,
    ge,
    gt,
    implies,
    in_list,
    le,
    lit,
    lt,
    ne,
)
from repro.sql.schema import (
    Attribute,
    Fragment,
    PartitionScheme,
    Relation,
    RelationRef,
)
from repro.sql.query import Aggregate, SPJQuery, Star
from repro.sql.parser import parse_query, ParseError

__all__ = [
    "TRUE",
    "FALSE",
    "And",
    "Column",
    "Comparison",
    "DomainConstraint",
    "Expr",
    "InList",
    "Literal",
    "Not",
    "Or",
    "analyze_conjunction",
    "column",
    "conjoin",
    "eq",
    "ge",
    "gt",
    "implies",
    "in_list",
    "le",
    "lit",
    "lt",
    "ne",
    "Attribute",
    "Fragment",
    "PartitionScheme",
    "Relation",
    "RelationRef",
    "Aggregate",
    "SPJQuery",
    "Star",
    "parse_query",
    "ParseError",
]
