"""The seller-side query rewrite algorithm of Section 3.4.

When a seller node receives a Request-For-Bids for a query it generally
cannot answer it whole: it may lack entire relations, and for the
relations it does hold it may store only some horizontal fragments.  The
paper's algorithm "removes all non-local relations and restricts the
base-relation extents to those partitions available locally".  This module
implements exactly that, returning both the rewritten query and a precise
*coverage* description (which fragments of which relation the rewritten
query ranges over) — the coverage is what the buyer plan generator later
uses to stitch offers into a complete plan.

The rewrite also decides whether the original projections (possibly
containing aggregates) survive: a partial aggregate is only offered when
it is sound to union partial results, i.e. when every partially covered
relation is partitioned on a GROUP BY column (the telecom example: partial
``SUM(charge) GROUP BY office`` per office fragment is exact).  Otherwise
the rewritten query degrades to ``SELECT *`` and the buyer re-aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sql.expr import (
    FALSE,
    Column,
    Expr,
    conjoin,
    normalize_conjunction,
    restriction_overlaps,
    satisfiable,
)
from repro.sql.query import Aggregate, SPJQuery, Star
from repro.sql.schema import PartitionScheme, Relation

__all__ = ["RewrittenQuery", "rewrite_query", "coverage_restriction"]

# Aggregates whose partial results can be re-combined by the buyer.
_DECOMPOSABLE_AGGS = frozenset(("sum", "count", "min", "max"))


@dataclass(frozen=True)
class RewrittenQuery:
    """Result of rewriting a query against one node's holdings.

    Attributes
    ----------
    query:
        The locally answerable query, with fragment restrictions folded
        into the WHERE clause.
    coverage:
        ``alias -> frozenset(fragment_id)`` — which fragments of each
        surviving relation the query ranges over.
    dropped:
        Aliases of relations the node could not contribute to.
    exact_projections:
        True when the rewritten query kept the original projections
        (including aggregates); False when it degraded to ``SELECT *``.
    """

    query: SPJQuery
    coverage: Mapping[str, frozenset[int]]
    dropped: frozenset[str]
    exact_projections: bool

    @property
    def is_total(self) -> bool:
        """Does the rewrite cover the original query completely?"""
        return not self.dropped and self.exact_projections


def coverage_restriction(
    query: SPJQuery,
    schemes: Mapping[str, PartitionScheme],
    coverage: Mapping[str, frozenset[int]],
) -> Expr:
    """The WHERE-clause conjunct pinning *query* to *coverage*'s fragments."""
    parts: list[Expr] = []
    for alias in sorted(coverage):
        ref = query.relation_for(alias)
        scheme = schemes[ref.name]
        parts.append(scheme.restriction_for(alias, coverage[alias]))
    return conjoin(parts)


def _aggregates_survive(
    query: SPJQuery,
    schemes: Mapping[str, PartitionScheme],
    coverage: Mapping[str, frozenset[int]],
) -> bool:
    """May the original (aggregate) projections be kept on this coverage?

    Safe iff every aggregate function is decomposable and every partially
    covered relation is partitioned on an attribute that appears in the
    GROUP BY list (so each output group draws rows from exactly one
    fragment, making the union of partial answers exact).
    """
    for item in query.projections:
        if isinstance(item, Aggregate) and item.func not in _DECOMPOSABLE_AGGS:
            return False
    group_cols = set(query.group_by)
    for alias, fragment_ids in coverage.items():
        ref = query.relation_for(alias)
        scheme = schemes[ref.name]
        if fragment_ids == scheme.fragment_ids:
            continue  # fully covered: no partiality introduced
        if scheme.attribute is None:
            return False
        if Column(alias, scheme.attribute) not in group_cols:
            return False
    return True


def rewrite_query(
    query: SPJQuery,
    schemas: Mapping[str, Relation],
    schemes: Mapping[str, PartitionScheme],
    held: Mapping[str, frozenset[int]],
) -> RewrittenQuery | None:
    """Rewrite *query* to what a node holding *held* can answer locally.

    Parameters
    ----------
    query:
        The query from the buyer's RFB.
    schemas:
        Relation schemas (shared data dictionary; the paper assumes nodes
        agree on the schema even though data placement is unknown).
    schemes:
        Partitioning scheme per relation name.
    held:
        ``relation name -> fragment ids`` physically present at the node.

    Returns ``None`` when the node can contribute nothing: it holds no
    referenced relation, or its fragments are disjoint from the query's
    own selection (e.g. the node stores only ``office='Athens'`` rows
    while the query asks for Corfu and Myconos).
    """
    coverage: dict[str, frozenset[int]] = {}
    dropped: set[str] = set()
    for ref in query.relations:
        local_fragments = held.get(ref.name, frozenset())
        if not local_fragments:
            dropped.add(ref.alias)
            continue
        scheme = schemes[ref.name]
        selection = query.selection_on(ref.alias)
        compatible = frozenset(
            fid
            for fid in local_fragments
            if restriction_overlaps(
                selection, scheme.fragment(fid).restriction_for(ref.alias)
            )
        )
        if compatible:
            coverage[ref.alias] = compatible
        else:
            dropped.add(ref.alias)
    if not coverage:
        return None

    if dropped:
        base = query.subquery_on(coverage.keys())
        assert base is not None
        exact = False
    else:
        base = query
        exact = True
        if query.has_aggregates or query.group_by:
            if not _aggregates_survive(query, schemes, coverage):
                base = SPJQuery(
                    relations=query.relations,
                    predicate=query.predicate,
                    projections=(Star(),),
                    distinct=query.distinct,
                )
                exact = False

    restriction = coverage_restriction(base, schemes, coverage)
    predicate = normalize_conjunction(conjoin([base.predicate, restriction]))
    if predicate is FALSE or not satisfiable(predicate):
        return None
    rewritten = SPJQuery(
        relations=base.relations,
        predicate=predicate,
        projections=base.projections,
        group_by=base.group_by,
        order_by=base.order_by,
        distinct=base.distinct,
    )
    return RewrittenQuery(
        query=rewritten,
        coverage=coverage,
        dropped=frozenset(dropped),
        exact_projections=exact,
    )
