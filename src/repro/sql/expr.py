"""Boolean predicate expressions over relational tuples.

The QT optimizer constantly manipulates conjunctive predicates: it restricts
queries to horizontal fragments, tests whether one restriction implies
another (fragment subsumption, view matching), detects contradictions
(a seller holding only ``office='Myconos'`` cannot contribute to
``office='Corfu'``), and simplifies the predicates it ships in RFBs and
offers.

The expression algebra is deliberately small — columns, literals, the six
comparison operators, IN-lists, AND/OR/NOT — because the paper's framework
(like ours) is scoped to select-project-join queries.  On top of the algebra
sit three analysis utilities that the rest of the system relies on:

* :func:`analyze_conjunction` — compile a conjunction into per-column
  :class:`DomainConstraint` objects plus residual (join) conjuncts,
* :func:`implies` — sound (not complete) implication test between
  conjunctions, and
* :meth:`Expr.simplify` — constant folding and contradiction detection.

All expression objects are immutable and hashable so they can be used as
dictionary keys throughout the optimizer.  Compound nodes cache their
structural hash and their ``columns()`` set after the first computation
(recursive recomputation otherwise dominates the dict-keyed hot paths in
the buyer DP and the seller offer cache); the caches are dropped when an
expression is pickled, because ``hash(str)`` is salted per process and a
shipped hash would be wrong in the receiving worker.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "Expr",
    "Column",
    "Literal",
    "Comparison",
    "InList",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "column",
    "lit",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "in_list",
    "conjoin",
    "DomainConstraint",
    "analyze_conjunction",
    "implies",
]

# Values that may appear in literals and IN-lists.
Value = Any

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NEGATED_OP = {"=": "!=", "!=": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_FLIPPED_OP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


#: Per-instance memo attributes that must never travel across processes:
#: cached hashes embed salted string hashes, and the columns frozenset is
#: cheaper to rebuild than to ship.
_EXPR_CACHE_ATTRS = ("_hash_memo", "_columns_memo")


class Expr:
    """Base class for all boolean/scalar expressions."""

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def columns(self) -> frozenset["Column"]:
        """All columns referenced anywhere in this expression."""
        raise NotImplementedError

    def _columns(self) -> frozenset["Column"]:
        """Memoizing wrapper used by the compound nodes' ``columns()``."""
        memo = self.__dict__.get("_columns_memo")
        if memo is None:
            memo = self._compute_columns()
            object.__setattr__(self, "_columns_memo", memo)
        return memo

    def _compute_columns(self) -> frozenset["Column"]:
        raise NotImplementedError

    def _hash(self, parts: tuple) -> int:
        """Memoizing hash helper; *parts* must mirror the eq fields."""
        memo = self.__dict__.get("_hash_memo")
        if memo is None:
            memo = hash(parts)
            object.__setattr__(self, "_hash_memo", memo)
        return memo

    def __getstate__(self):
        state = dict(self.__dict__)
        for attr in _EXPR_CACHE_ATTRS:
            state.pop(attr, None)
        return state

    def tables(self) -> frozenset[str]:
        """Aliases of all relations referenced in this expression."""
        return frozenset(c.table for c in self.columns())

    def conjuncts(self) -> tuple["Expr", ...]:
        """Flatten a conjunction into its top-level factors.

        For non-AND expressions this is the expression itself; ``TRUE``
        flattens to the empty tuple.
        """
        if self is TRUE:
            return ()
        return (self,)

    def rename_tables(self, mapping: Mapping[str, str]) -> "Expr":
        """Return a copy with table aliases substituted via *mapping*."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, row: Mapping["Column", Value]) -> bool:
        """Evaluate against a row binding ``Column -> value``.

        Used by the execution engine and by the property-based tests that
        check simplification soundness.  Missing bindings raise ``KeyError``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def simplify(self) -> "Expr":
        """Constant-fold and prune; returns ``FALSE`` on detected contradiction.

        Simplification is *sound*: the returned expression is logically
        equivalent to the original.  It is not *complete* — some
        unsatisfiable expressions survive (completeness would require a
        full theory solver, which the optimizer does not need).
        """
        return self

    def negate(self) -> "Expr":
        """Logical negation, pushed through the operators where cheap."""
        return Not(self)

    def __and__(self, other: "Expr") -> "Expr":
        return conjoin([self, other])

    def __or__(self, other: "Expr") -> "Expr":
        if self is TRUE or other is TRUE:
            return TRUE
        if self is FALSE:
            return other
        if other is FALSE:
            return self
        return Or(_flatten(Or, [self, other]))

    def __invert__(self) -> "Expr":
        return self.negate()

    # Rendering ---------------------------------------------------------
    def sql(self) -> str:
        """Render as a SQL-ish string (parseable by :mod:`repro.sql.parser`)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.sql()})"


@dataclass(frozen=True, order=True)
class Column(Expr):
    """A column reference, qualified by the *alias* of a relation ref."""

    table: str
    name: str

    def columns(self) -> frozenset["Column"]:
        return frozenset((self,))

    def rename_tables(self, mapping: Mapping[str, str]) -> "Column":
        if self.table in mapping:
            return Column(mapping[self.table], self.name)
        return self

    def evaluate(self, row: Mapping["Column", Value]) -> Value:
        return row[self]

    def sql(self) -> str:
        return f"{self.table}.{self.name}"


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (int, float, str, or bool)."""

    value: Value

    def columns(self) -> frozenset[Column]:
        return frozenset()

    def rename_tables(self, mapping: Mapping[str, str]) -> "Literal":
        return self

    def evaluate(self, row: Mapping[Column, Value]) -> Value:
        return self.value

    def sql(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return repr(self.value)


@dataclass(frozen=True)
class Comparison(Expr):
    """``left op right`` where op is one of = != < <= > >=.

    By convention :meth:`normalized` puts the column on the left when
    comparing a column with a literal, and orders column-column comparisons
    lexicographically, so that structurally equal predicates compare equal.
    """

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def __hash__(self) -> int:
        return self._hash(("Comparison", self.op, self.left, self.right))

    def columns(self) -> frozenset[Column]:
        return self._columns()

    def _compute_columns(self) -> frozenset[Column]:
        return self.left.columns() | self.right.columns()

    def rename_tables(self, mapping: Mapping[str, str]) -> "Comparison":
        return Comparison(
            self.op,
            self.left.rename_tables(mapping),
            self.right.rename_tables(mapping),
        )

    def evaluate(self, row: Mapping[Column, Value]) -> bool:
        return _OPS[self.op](self.left.evaluate(row), self.right.evaluate(row))

    def normalized(self) -> "Comparison":
        """Canonical operand order (column-vs-literal → column first)."""
        left, right, op = self.left, self.right, self.op
        flip = False
        if isinstance(left, Literal) and isinstance(right, Column):
            flip = True
        elif isinstance(left, Column) and isinstance(right, Column):
            if (right.table, right.name) < (left.table, left.name):
                flip = True
        if flip:
            return Comparison(_FLIPPED_OP[op], right, left)
        return self

    def simplify(self) -> Expr:
        norm = self.normalized()
        if isinstance(norm.left, Literal) and isinstance(norm.right, Literal):
            try:
                return TRUE if norm.evaluate({}) else FALSE
            except TypeError:
                return norm
        if norm.left == norm.right:
            return TRUE if norm.op in ("=", "<=", ">=") else FALSE
        return norm

    def negate(self) -> Expr:
        return Comparison(_NEGATED_OP[self.op], self.left, self.right)

    def sql(self) -> str:
        return f"{self.left.sql()} {self.op} {self.right.sql()}"

    @property
    def is_join(self) -> bool:
        """True when this compares columns of two distinct relations."""
        return (
            isinstance(self.left, Column)
            and isinstance(self.right, Column)
            and self.left.table != self.right.table
        )


@dataclass(frozen=True)
class InList(Expr):
    """``column IN (v1, v2, ...)`` — the common list-partition restriction."""

    col: Column
    values: frozenset[Value]

    def __post_init__(self) -> None:
        if not isinstance(self.values, frozenset):
            object.__setattr__(self, "values", frozenset(self.values))

    def __hash__(self) -> int:
        return self._hash(("InList", self.col, self.values))

    def columns(self) -> frozenset[Column]:
        return self._columns()

    def _compute_columns(self) -> frozenset[Column]:
        return frozenset((self.col,))

    def rename_tables(self, mapping: Mapping[str, str]) -> "InList":
        return InList(self.col.rename_tables(mapping), self.values)

    def evaluate(self, row: Mapping[Column, Value]) -> bool:
        return row[self.col] in self.values

    def simplify(self) -> Expr:
        if not self.values:
            return FALSE
        if len(self.values) == 1:
            (v,) = self.values
            return Comparison("=", self.col, Literal(v))
        return self

    def negate(self) -> Expr:
        return Not(self)

    def sql(self) -> str:
        items = ", ".join(Literal(v).sql() for v in sorted(self.values, key=repr))
        return f"{self.col.sql()} IN ({items})"


def _flatten(kind: type, children: Iterable[Expr]) -> tuple[Expr, ...]:
    out: list[Expr] = []
    for child in children:
        if isinstance(child, kind):
            out.extend(child.children)
        else:
            out.append(child)
    return tuple(out)


@dataclass(frozen=True)
class And(Expr):
    """N-ary conjunction."""

    children: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _flatten(And, self.children))

    def __hash__(self) -> int:
        return self._hash(("And", self.children))

    def columns(self) -> frozenset[Column]:
        return self._columns()

    def _compute_columns(self) -> frozenset[Column]:
        cols: frozenset[Column] = frozenset()
        for child in self.children:
            cols |= child.columns()
        return cols

    def conjuncts(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        for child in self.children:
            out.extend(child.conjuncts())
        return tuple(out)

    def rename_tables(self, mapping: Mapping[str, str]) -> "Expr":
        return And(tuple(c.rename_tables(mapping) for c in self.children))

    def evaluate(self, row: Mapping[Column, Value]) -> bool:
        return all(c.evaluate(row) for c in self.children)

    def simplify(self) -> Expr:
        kept: list[Expr] = []
        seen: set[Expr] = set()
        for child in self.children:
            s = child.simplify()
            if s is FALSE:
                return FALSE
            if s is TRUE or s in seen:
                continue
            seen.add(s)
            kept.append(s)
        if not kept:
            return TRUE
        # Contradiction detection via per-column domain analysis.
        constraints, _residual, ok = analyze_conjunction(kept)
        if not ok:
            return FALSE
        for constraint in constraints.values():
            if constraint.is_empty():
                return FALSE
        if len(kept) == 1:
            return kept[0]
        return And(tuple(kept))

    def negate(self) -> Expr:
        return Or(tuple(c.negate() for c in self.children))

    def sql(self) -> str:
        return " AND ".join(
            f"({c.sql()})" if isinstance(c, Or) else c.sql() for c in self.children
        )


@dataclass(frozen=True)
class Or(Expr):
    """N-ary disjunction."""

    children: tuple[Expr, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", _flatten(Or, self.children))

    def __hash__(self) -> int:
        return self._hash(("Or", self.children))

    def columns(self) -> frozenset[Column]:
        return self._columns()

    def _compute_columns(self) -> frozenset[Column]:
        cols: frozenset[Column] = frozenset()
        for child in self.children:
            cols |= child.columns()
        return cols

    def rename_tables(self, mapping: Mapping[str, str]) -> "Expr":
        return Or(tuple(c.rename_tables(mapping) for c in self.children))

    def evaluate(self, row: Mapping[Column, Value]) -> bool:
        return any(c.evaluate(row) for c in self.children)

    def simplify(self) -> Expr:
        kept: list[Expr] = []
        seen: set[Expr] = set()
        for child in self.children:
            s = child.simplify()
            if s is TRUE:
                return TRUE
            if s is FALSE or s in seen:
                continue
            seen.add(s)
            kept.append(s)
        if not kept:
            return FALSE
        if len(kept) == 1:
            return kept[0]
        return Or(tuple(kept))

    def negate(self) -> Expr:
        return And(tuple(c.negate() for c in self.children))

    def sql(self) -> str:
        return " OR ".join(
            f"({c.sql()})" if isinstance(c, (And, Or)) else c.sql()
            for c in self.children
        )


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation for operands without a cheap negated form."""

    child: Expr

    def __hash__(self) -> int:
        return self._hash(("Not", self.child))

    def columns(self) -> frozenset[Column]:
        return self._columns()

    def _compute_columns(self) -> frozenset[Column]:
        return self.child.columns()

    def rename_tables(self, mapping: Mapping[str, str]) -> "Not":
        return Not(self.child.rename_tables(mapping))

    def evaluate(self, row: Mapping[Column, Value]) -> bool:
        return not self.child.evaluate(row)

    def simplify(self) -> Expr:
        inner = self.child.simplify()
        if inner is TRUE:
            return FALSE
        if inner is FALSE:
            return TRUE
        if isinstance(inner, Not):
            return inner.child
        if isinstance(inner, (Comparison, And, Or)):
            return inner.negate().simplify()
        return Not(inner)

    def negate(self) -> Expr:
        return self.child

    def sql(self) -> str:
        return f"NOT ({self.child.sql()})"


class _Bool(Expr):
    """The TRUE/FALSE singletons."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = value

    def columns(self) -> frozenset[Column]:
        return frozenset()

    def conjuncts(self) -> tuple[Expr, ...]:
        return () if self.value else (self,)

    def rename_tables(self, mapping: Mapping[str, str]) -> "Expr":
        return self

    def evaluate(self, row: Mapping[Column, Value]) -> bool:
        return self.value

    def negate(self) -> Expr:
        return FALSE if self.value else TRUE

    def sql(self) -> str:
        return "TRUE" if self.value else "FALSE"

    def __hash__(self) -> int:
        return hash(("_Bool", self.value))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Bool) and other.value == self.value

    def __reduce__(self):
        # TRUE/FALSE are singletons compared with ``is`` throughout the
        # optimizer; unpickling must hand back the process-local
        # singleton, never a fresh _Bool (a copy would silently change
        # costing decisions like ``selection is not TRUE`` in workers).
        return (_bool_singleton, (self.value,))


def _bool_singleton(value: bool) -> "_Bool":
    return TRUE if value else FALSE


TRUE = _Bool(True)
FALSE = _Bool(False)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def column(table: str, name: str) -> Column:
    """Shorthand for :class:`Column`."""
    return Column(table, name)


def lit(value: Value) -> Literal:
    """Shorthand for :class:`Literal`."""
    return Literal(value)


def _cmp(op: str, left: Expr | Value, right: Expr | Value) -> Comparison:
    if not isinstance(left, Expr):
        left = Literal(left)
    if not isinstance(right, Expr):
        right = Literal(right)
    return Comparison(op, left, right).normalized()


def eq(left: Expr | Value, right: Expr | Value) -> Comparison:
    return _cmp("=", left, right)


def ne(left: Expr | Value, right: Expr | Value) -> Comparison:
    return _cmp("!=", left, right)


def lt(left: Expr | Value, right: Expr | Value) -> Comparison:
    return _cmp("<", left, right)


def le(left: Expr | Value, right: Expr | Value) -> Comparison:
    return _cmp("<=", left, right)


def gt(left: Expr | Value, right: Expr | Value) -> Comparison:
    return _cmp(">", left, right)


def ge(left: Expr | Value, right: Expr | Value) -> Comparison:
    return _cmp(">=", left, right)


def in_list(col: Column, values: Iterable[Value]) -> InList:
    return InList(col, frozenset(values))


def conjoin(exprs: Iterable[Expr]) -> Expr:
    """Conjunction of *exprs* with TRUE/FALSE short-circuiting.

    Unlike :meth:`Expr.simplify` this performs no contradiction analysis;
    it is the cheap structural combinator used on hot paths.
    """
    kept: list[Expr] = []
    for e in exprs:
        if e is TRUE:
            continue
        if e is FALSE:
            return FALSE
        kept.extend(e.conjuncts())
    if not kept:
        return TRUE
    if len(kept) == 1:
        return kept[0]
    return And(tuple(kept))


# ----------------------------------------------------------------------
# Per-column domain analysis
# ----------------------------------------------------------------------
_NEG_INF = object()
_POS_INF = object()


@dataclass
class DomainConstraint:
    """The set of values a single column may take under a conjunction.

    Tracks an interval (with open/closed bounds), an optional allowed
    IN-set, and a set of excluded values.  Supports emptiness testing,
    intersection, and subset testing — exactly what fragment subsumption
    and view matching need.
    """

    low: Value = _NEG_INF
    low_open: bool = False
    high: Value = _POS_INF
    high_open: bool = False
    allowed: frozenset[Value] | None = None  # None means "no IN restriction"
    excluded: frozenset[Value] = field(default_factory=frozenset)

    # -- construction --------------------------------------------------
    @staticmethod
    def from_comparison(op: str, value: Value) -> "DomainConstraint":
        if op == "=":
            return DomainConstraint(allowed=frozenset((value,)))
        if op == "!=":
            return DomainConstraint(excluded=frozenset((value,)))
        if op == "<":
            return DomainConstraint(high=value, high_open=True)
        if op == "<=":
            return DomainConstraint(high=value)
        if op == ">":
            return DomainConstraint(low=value, low_open=True)
        if op == ">=":
            return DomainConstraint(low=value)
        raise ValueError(f"unknown operator {op!r}")

    # -- predicates ----------------------------------------------------
    def admits(self, value: Value) -> bool:
        """Does *value* satisfy this constraint?"""
        if value in self.excluded:
            return False
        if self.allowed is not None and value not in self.allowed:
            return False
        try:
            if self.low is not _NEG_INF:
                if self.low_open:
                    if not value > self.low:
                        return False
                elif not value >= self.low:
                    return False
            if self.high is not _POS_INF:
                if self.high_open:
                    if not value < self.high:
                        return False
                elif not value <= self.high:
                    return False
        except TypeError:
            # Incomparable types (e.g. str bound, int value): treat as
            # not admitted — the predicate would raise at runtime anyway.
            return False
        return True

    def is_empty(self) -> bool:
        """True when provably no value satisfies the constraint."""
        if self.allowed is not None:
            return not any(self.admits(v) for v in self.allowed)
        if self.low is not _NEG_INF and self.high is not _POS_INF:
            try:
                if self.low > self.high:
                    return True
                if self.low == self.high and (self.low_open or self.high_open):
                    return True
                # Integer-tight empty open interval like (3, 4).
                if (
                    self.low_open
                    and self.high_open
                    and isinstance(self.low, int)
                    and isinstance(self.high, int)
                    and self.high - self.low <= 1
                ):
                    return True
                if (
                    self.low == self.high
                    and not self.low_open
                    and not self.high_open
                    and self.low in self.excluded
                ):
                    return True
            except TypeError:
                return True
        return False

    # -- algebra ---------------------------------------------------------
    def intersect(self, other: "DomainConstraint") -> "DomainConstraint":
        """The conjunction of two constraints on the same column."""
        low, low_open = self.low, self.low_open
        if other.low is not _NEG_INF:
            if low is _NEG_INF:
                low, low_open = other.low, other.low_open
            else:
                try:
                    if other.low > low or (other.low == low and other.low_open):
                        low, low_open = other.low, other.low_open
                except TypeError:
                    return _EMPTY_CONSTRAINT
        high, high_open = self.high, self.high_open
        if other.high is not _POS_INF:
            if high is _POS_INF:
                high, high_open = other.high, other.high_open
            else:
                try:
                    if other.high < high or (other.high == high and other.high_open):
                        high, high_open = other.high, other.high_open
                except TypeError:
                    return _EMPTY_CONSTRAINT
        if self.allowed is None:
            allowed = other.allowed
        elif other.allowed is None:
            allowed = self.allowed
        else:
            allowed = self.allowed & other.allowed
        return DomainConstraint(
            low=low,
            low_open=low_open,
            high=high,
            high_open=high_open,
            allowed=allowed,
            excluded=self.excluded | other.excluded,
        )

    def subsumes(self, other: "DomainConstraint") -> bool:
        """Sound test that every value admitted by *other* is admitted here.

        Used to decide whether a fragment restriction (``other``) lies
        inside a requested restriction (``self``).  Returns ``False`` when
        unsure.
        """
        if other.is_empty():
            return True
        if other.allowed is not None:
            return all(self.admits(v) for v in other.allowed if other.admits(v))
        if self.allowed is not None:
            # self is a finite set but other is an interval: only subsumes
            # if other is empty, handled above.
            return False
        # Interval containment; excluded values of self must be excluded
        # (or out of range) in other.
        try:
            if self.low is not _NEG_INF:
                if other.low is _NEG_INF:
                    return False
                if other.low < self.low:
                    return False
                if other.low == self.low and self.low_open and not other.low_open:
                    return False
            if self.high is not _POS_INF:
                if other.high is _POS_INF:
                    return False
                if other.high > self.high:
                    return False
                if other.high == self.high and self.high_open and not other.high_open:
                    return False
        except TypeError:
            return False
        return all(not other.admits(v) for v in self.excluded)

    def to_expr(self, col: Column) -> Expr:
        """Render back into an expression (used for residual predicates)."""
        parts: list[Expr] = []
        if self.allowed is not None:
            admitted = frozenset(v for v in self.allowed if self.admits(v))
            return InList(col, admitted).simplify()
        if self.low is not _NEG_INF:
            parts.append(
                Comparison(">" if self.low_open else ">=", col, Literal(self.low))
            )
        if self.high is not _POS_INF:
            parts.append(
                Comparison("<" if self.high_open else "<=", col, Literal(self.high))
            )
        for v in sorted(self.excluded, key=repr):
            parts.append(Comparison("!=", col, Literal(v)))
        return conjoin(parts)


_EMPTY_CONSTRAINT = DomainConstraint(allowed=frozenset())


def analyze_conjunction(
    conjuncts: Sequence[Expr],
) -> tuple[dict[Column, DomainConstraint], tuple[Expr, ...], bool]:
    """Split a conjunction into per-column constraints and a residual.

    Returns ``(constraints, residual, ok)`` where *constraints* maps each
    restricted column to its :class:`DomainConstraint`, *residual* holds
    the conjuncts that are not single-column restrictions (joins, ORs,
    NOTs, ...), and *ok* is ``False`` only when the conjunction is provably
    unsatisfiable for structural reasons outside the constraint analysis.
    """
    constraints: dict[Column, DomainConstraint] = {}
    residual: list[Expr] = []
    for conjunct in conjuncts:
        constraint: DomainConstraint | None = None
        col: Column | None = None
        if isinstance(conjunct, Comparison):
            norm = conjunct.normalized()
            if isinstance(norm.left, Column) and isinstance(norm.right, Literal):
                col = norm.left
                constraint = DomainConstraint.from_comparison(
                    norm.op, norm.right.value
                )
        elif isinstance(conjunct, InList):
            col = conjunct.col
            constraint = DomainConstraint(allowed=conjunct.values)
        elif conjunct is FALSE:
            return {}, (), False
        if constraint is None or col is None:
            residual.append(conjunct)
            continue
        if col in constraints:
            constraints[col] = constraints[col].intersect(constraint)
        else:
            constraints[col] = constraint
    return constraints, tuple(residual), True


def implies(premise: Expr, conclusion: Expr) -> bool:
    """Sound implication test between two conjunctive predicates.

    ``implies(p, q)`` returns ``True`` only when every row satisfying *p*
    is guaranteed to satisfy *q*.  The test handles per-column domain
    constraints exactly and falls back to syntactic containment for
    residual conjuncts (joins etc.).  It answers ``False`` when unsure,
    which is always safe for the callers (they will simply not exploit an
    optimization opportunity).
    """
    p = premise.simplify()
    q = conclusion.simplify()
    if p is FALSE or q is TRUE:
        return True
    if p is TRUE:
        return q is TRUE
    p_constraints, p_residual, p_ok = analyze_conjunction(p.conjuncts())
    q_constraints, q_residual, q_ok = analyze_conjunction(q.conjuncts())
    if not p_ok:
        return True
    if not q_ok:
        return False
    p_residual_set = set(p_residual)
    for conjunct in q_residual:
        if conjunct not in p_residual_set:
            return False
    for col, q_constraint in q_constraints.items():
        p_constraint = p_constraints.get(col)
        if p_constraint is None:
            return False
        if not q_constraint.subsumes(p_constraint):
            return False
    return True


def normalize_conjunction(expr: Expr) -> Expr:
    """Simplify a conjunction by merging per-column restrictions.

    This is the "simplifying the expression in the WHERE part" step of the
    paper's rewrite example: ``office IN ('Corfu','Myconos') AND
    office = 'Myconos'`` becomes ``office = 'Myconos'``.  Non-conjunctive
    expressions are returned via plain :meth:`Expr.simplify`.
    """
    simplified = expr.simplify()
    if simplified in (TRUE, FALSE):
        return simplified
    conjuncts = simplified.conjuncts()
    constraints, residual, ok = analyze_conjunction(conjuncts)
    if not ok:
        return FALSE
    parts: list[Expr] = []
    for col in sorted(constraints):
        constraint = constraints[col]
        if constraint.is_empty():
            return FALSE
        rendered = constraint.to_expr(col)
        if rendered is FALSE:
            return FALSE
        parts.append(rendered)
    parts.extend(residual)
    return conjoin(parts)


def _dnf(expr: Expr, cap: int = 64) -> list[tuple[Expr, ...]] | None:
    """Disjunctive normal form as a list of conjunct tuples.

    Returns ``None`` when the expansion would exceed *cap* disjuncts (the
    caller must then fall back to a weaker test).  NOT nodes are treated
    as opaque atoms.
    """
    if isinstance(expr, Or):
        out: list[tuple[Expr, ...]] = []
        for child in expr.children:
            child_dnf = _dnf(child, cap)
            if child_dnf is None:
                return None
            out.extend(child_dnf)
            if len(out) > cap:
                return None
        return out
    if isinstance(expr, And):
        product: list[tuple[Expr, ...]] = [()]
        for child in expr.children:
            child_dnf = _dnf(child, cap)
            if child_dnf is None:
                return None
            product = [
                existing + disjunct
                for existing in product
                for disjunct in child_dnf
            ]
            if len(product) > cap:
                return None
        return product
    if expr is TRUE:
        return [()]
    if expr is FALSE:
        return []
    return [(expr,)]


def satisfiable(expr: Expr) -> bool:
    """Sound emptiness test: ``False`` only when provably unsatisfiable.

    Expands through ORs (bounded DNF) and checks each disjunct's
    per-column domain constraints, so contradictions like
    ``custid >= 200 AND custid < 400 AND (custid < 200 OR custid >= 400)``
    are detected.  Residual conjuncts (joins, NOTs) are assumed
    satisfiable.
    """
    simplified = expr.simplify()
    if simplified is FALSE:
        return False
    disjuncts = _dnf(simplified)
    if disjuncts is None:
        return True  # too wide to expand: assume satisfiable
    for conjuncts in disjuncts:
        constraints, _residual, ok = analyze_conjunction(list(conjuncts))
        if not ok:
            continue
        if all(not c.is_empty() for c in constraints.values()):
            return True
    return False


def restriction_overlaps(a: Expr, b: Expr) -> bool:
    """Sound satisfiability test for ``a AND b``.

    Returns ``False`` only when the conjunction is *provably* empty (e.g.
    ``office='Corfu' AND office='Myconos'``); ``True`` means "may overlap".
    Fragment pruning and union-disjointness checks rely on this.
    """
    return satisfiable(conjoin([a, b]))


def enumerate_assignments(
    cols: Sequence[Column], values: Sequence[Value]
) -> Iterable[dict[Column, Value]]:
    """All assignments of *values* to *cols* (testing helper)."""
    for combo in itertools.product(values, repeat=len(cols)):
        yield dict(zip(cols, combo))
