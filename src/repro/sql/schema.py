"""Logical schemas, horizontal fragments, and partition schemes.

The paper's motivating setting is a federation whose relations are
*horizontally partitioned and/or replicated* across autonomous nodes
(Section 1: the telecom company's ``customer`` and ``invoiceline`` tables
split across regional offices).  This module models that world:

* :class:`Relation` — a named logical relation with typed attributes,
* :class:`Fragment` — one horizontal fragment, defined by a restriction
  predicate over the relation's tuples,
* :class:`PartitionScheme` — the full set of fragments for one relation,
  with list/range/hash/single constructors.

Which node physically stores which fragment (and its replicas) is the
catalog's business (:mod:`repro.catalog`); this module is purely logical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sql.expr import (
    TRUE,
    Column,
    Expr,
    InList,
    Value,
    conjoin,
    ge,
    lt,
)

__all__ = [
    "Attribute",
    "Relation",
    "RelationRef",
    "Fragment",
    "PartitionScheme",
]

_DTYPES = ("int", "float", "str")


@dataclass(frozen=True)
class Attribute:
    """A typed attribute of a relation."""

    name: str
    dtype: str = "int"

    def __post_init__(self) -> None:
        if self.dtype not in _DTYPES:
            raise ValueError(
                f"dtype must be one of {_DTYPES}, got {self.dtype!r}"
            )


@dataclass(frozen=True)
class Relation:
    """A logical relation: name plus ordered, uniquely named attributes."""

    name: str
    attributes: tuple[Attribute, ...]

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in {self.name}: {names}")
        if not self.attributes:
            raise ValueError(f"relation {self.name} has no attributes")

    @staticmethod
    def of(name: str, *attrs: str | tuple[str, str]) -> "Relation":
        """Build a relation from ``"attr"`` (int) or ``("attr", dtype)`` specs."""
        built = tuple(
            Attribute(a) if isinstance(a, str) else Attribute(*a) for a in attrs
        )
        return Relation(name, built)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def attribute(self, name: str) -> Attribute:
        for a in self.attributes:
            if a.name == name:
                return a
        raise KeyError(f"{self.name} has no attribute {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(a.name == name for a in self.attributes)


@dataclass(frozen=True, order=True)
class RelationRef:
    """An occurrence of a relation in a query's FROM list (name + alias)."""

    name: str
    alias: str

    @staticmethod
    def of(name: str, alias: str | None = None) -> "RelationRef":
        return RelationRef(name, alias or name)

    def column(self, attr: str) -> Column:
        return Column(self.alias, attr)


@dataclass(frozen=True)
class Fragment:
    """One horizontal fragment of a relation.

    ``predicate`` restricts the relation's tuples *in terms of a reference
    aliased as the relation name itself* — callers rename it onto specific
    query aliases via :meth:`restriction_for`.
    """

    relation: str
    fragment_id: int
    predicate: Expr
    row_count: int = 0

    def restriction_for(self, alias: str) -> Expr:
        """The fragment predicate expressed against *alias*."""
        if alias == self.relation:
            return self.predicate
        return self.predicate.rename_tables({self.relation: alias})

    @property
    def key(self) -> tuple[str, int]:
        return (self.relation, self.fragment_id)


@dataclass(frozen=True)
class PartitionScheme:
    """The complete horizontal partitioning of one relation.

    Fragments must be pairwise disjoint and jointly cover the relation;
    the constructors below guarantee this by building fragments from a
    partition of the partitioning attribute's domain.  A relation that is
    not partitioned uses :meth:`single`.
    """

    relation: str
    attribute: str | None
    fragments: tuple[Fragment, ...]

    def __post_init__(self) -> None:
        if not self.fragments:
            raise ValueError(f"partition scheme for {self.relation} has no fragments")
        ids = [f.fragment_id for f in self.fragments]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate fragment ids for {self.relation}")

    # -- constructors ----------------------------------------------------
    @staticmethod
    def single(relation: str, row_count: int = 0) -> "PartitionScheme":
        """A relation stored whole (one fragment with predicate TRUE)."""
        return PartitionScheme(
            relation,
            None,
            (Fragment(relation, 0, TRUE, row_count),),
        )

    @staticmethod
    def by_list(
        relation: str,
        attribute: str,
        value_groups: Sequence[Iterable[Value]],
        row_counts: Sequence[int] | None = None,
    ) -> "PartitionScheme":
        """List partitioning: fragment *i* holds rows whose *attribute* is
        in ``value_groups[i]`` (e.g. ``office IN ('Corfu',)``)."""
        col = Column(relation, attribute)
        fragments = []
        for i, group in enumerate(value_groups):
            values = frozenset(group)
            if not values:
                raise ValueError("empty value group in list partitioning")
            pred: Expr = InList(col, values).simplify()
            rows = row_counts[i] if row_counts else 0
            fragments.append(Fragment(relation, i, pred, rows))
        return PartitionScheme(relation, attribute, tuple(fragments))

    @staticmethod
    def by_range(
        relation: str,
        attribute: str,
        boundaries: Sequence[Value],
        row_counts: Sequence[int] | None = None,
    ) -> "PartitionScheme":
        """Range partitioning with ``len(boundaries)+1`` fragments.

        Fragment 0 is ``attr < b0``, fragment i is ``b(i-1) <= attr < b(i)``,
        the last is ``attr >= b(last)``.
        """
        if not boundaries:
            raise ValueError("range partitioning needs at least one boundary")
        if list(boundaries) != sorted(boundaries):
            raise ValueError("range boundaries must be sorted")
        col = Column(relation, attribute)
        fragments = []
        count = len(boundaries) + 1
        for i in range(count):
            parts: list[Expr] = []
            if i > 0:
                parts.append(ge(col, boundaries[i - 1]))
            if i < len(boundaries):
                parts.append(lt(col, boundaries[i]))
            rows = row_counts[i] if row_counts else 0
            fragments.append(Fragment(relation, i, conjoin(parts), rows))
        return PartitionScheme(relation, attribute, tuple(fragments))

    # -- accessors --------------------------------------------------------
    @property
    def fragment_ids(self) -> frozenset[int]:
        return frozenset(f.fragment_id for f in self.fragments)

    def fragment(self, fragment_id: int) -> Fragment:
        for f in self.fragments:
            if f.fragment_id == fragment_id:
                return f
        raise KeyError(f"{self.relation} has no fragment {fragment_id}")

    @property
    def total_rows(self) -> int:
        return sum(f.row_count for f in self.fragments)

    def restriction_for(self, alias: str, fragment_ids: Iterable[int]) -> Expr:
        """Predicate selecting the union of the given fragments of *alias*.

        For list partitions this merges IN-lists; otherwise it ORs the
        individual fragment predicates.  Selecting *all* fragments yields
        ``TRUE``.
        """
        wanted = frozenset(fragment_ids)
        if wanted == self.fragment_ids:
            return TRUE
        preds = [self.fragment(i).restriction_for(alias) for i in sorted(wanted)]
        if not preds:
            raise ValueError("empty fragment selection")
        if len(preds) == 1:
            return preds[0]
        # Merge sibling IN-lists on the same column where possible.
        merged: Expr | None = None
        if self.attribute is not None:
            col = Column(alias, self.attribute)
            values: set[Value] = set()
            mergeable = True
            for pred in preds:
                if isinstance(pred, InList) and pred.col == col:
                    values |= pred.values
                elif (
                    hasattr(pred, "op")
                    and getattr(pred, "op", None) == "="
                    and getattr(pred, "left", None) == col
                ):
                    values.add(pred.right.value)  # type: ignore[attr-defined]
                else:
                    mergeable = False
                    break
            if mergeable:
                merged = InList(col, frozenset(values)).simplify()
        if merged is not None:
            return merged
        result: Expr = preds[0]
        for pred in preds[1:]:
            result = result | pred
        return result
