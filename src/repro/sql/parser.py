"""A small SQL parser for the SPJ+aggregate subset traded by QT.

Grammar (case-insensitive keywords)::

    query      := SELECT [DISTINCT] items FROM tables [WHERE pred]
                  [GROUP BY cols] [ORDER BY cols]
    items      := item ("," item)*          | "*"
    item       := col | AGG "(" (col|"*") ")" [AS name]
    tables     := table ("," table)*
    table      := name [alias]
    pred       := disj
    disj       := conj (OR conj)*
    conj       := factor (AND factor)*
    factor     := "(" pred ")" | NOT factor | cond
    cond       := col op (literal|col) | col IN "(" literal ("," literal)* ")"
    col        := name "." name | name          (unqualified resolved later)
    literal    := number | "'string'"

Unqualified column names are resolved against the FROM list using the
relation schemas passed to :func:`parse_query`; ambiguity is an error.
The parser exists for the examples, tests, and README quickstart — the
optimizer itself works on :class:`~repro.sql.query.SPJQuery` objects.
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence

from repro.sql.expr import (
    TRUE,
    And,
    Column,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.sql.query import Aggregate, SPJQuery, Star
from repro.sql.schema import Relation, RelationRef

__all__ = ["parse_query", "ParseError"]


class ParseError(ValueError):
    """Raised on any syntactic or name-resolution error."""


_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*'          # string literal
      | \d+\.\d+                # float
      | \d+                     # int
      | <= | >= | != | <> | = | < | >
      | [A-Za-z_][A-Za-z_0-9]*  # identifier / keyword
      | [().,*]
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "group",
    "order",
    "by",
    "and",
    "or",
    "not",
    "in",
    "as",
    "true",
    "false",
}
_AGGS = {"sum", "count", "min", "max", "avg"}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            if text[pos:].strip() == "":
                break
            raise ParseError(f"unexpected character at {text[pos:pos+10]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], schemas: Mapping[str, Relation]):
        self.tokens = tokens
        self.pos = 0
        self.schemas = schemas
        self.refs: list[RelationRef] = []

    # -- token plumbing ------------------------------------------------
    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_kw(self) -> str | None:
        tok = self.peek()
        return tok.lower() if tok is not None else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, keyword: str) -> None:
        tok = self.next()
        if tok.lower() != keyword:
            raise ParseError(f"expected {keyword.upper()!r}, got {tok!r}")

    def accept(self, keyword: str) -> bool:
        if self.peek_kw() == keyword:
            self.pos += 1
            return True
        return False

    # -- name resolution -------------------------------------------------
    def resolve_column(self, first: str, second: str | None) -> Column:
        if second is not None:
            if not any(r.alias == first for r in self.refs):
                raise ParseError(f"unknown alias {first!r}")
            ref = next(r for r in self.refs if r.alias == first)
            schema = self.schemas.get(ref.name)
            if schema is not None and not schema.has_attribute(second):
                raise ParseError(f"{ref.name} has no attribute {second!r}")
            return Column(first, second)
        owners = []
        for ref in self.refs:
            schema = self.schemas.get(ref.name)
            if schema is not None and schema.has_attribute(first):
                owners.append(ref)
        if not owners:
            raise ParseError(f"cannot resolve column {first!r}")
        if len(owners) > 1:
            raise ParseError(
                f"ambiguous column {first!r} "
                f"(in {[o.alias for o in owners]})"
            )
        return Column(owners[0].alias, first)

    # -- grammar ---------------------------------------------------------
    def parse(self) -> SPJQuery:
        self.expect("select")
        distinct = self.accept("distinct")
        items_start = self.pos
        # FROM must be parsed before projections resolve, so scan ahead.
        depth = 0
        while True:
            tok = self.peek_kw()
            if tok is None:
                raise ParseError("missing FROM clause")
            if tok == "(":
                depth += 1
            elif tok == ")":
                depth -= 1
            elif tok == "from" and depth == 0:
                break
            self.pos += 1
        self.expect("from")
        self.refs = self.parse_tables()
        from_end = self.pos
        # Re-parse the projection list now that refs are known.
        self.pos = items_start
        projections = self.parse_items()
        self.pos = from_end

        predicate: Expr = TRUE
        if self.accept("where"):
            predicate = self.parse_disjunction()
        group_by: tuple[Column, ...] = ()
        if self.accept("group"):
            self.expect("by")
            group_by = tuple(self.parse_column_list())
        order_by: tuple[Column, ...] = ()
        if self.accept("order"):
            self.expect("by")
            order_by = tuple(self.parse_column_list())
        if self.peek() is not None:
            raise ParseError(f"trailing tokens at {self.peek()!r}")
        return SPJQuery(
            relations=tuple(self.refs),
            predicate=predicate,
            projections=tuple(projections),
            group_by=group_by,
            order_by=order_by,
            distinct=distinct,
        )

    def parse_tables(self) -> list[RelationRef]:
        refs: list[RelationRef] = []
        while True:
            name = self.next()
            if name.lower() in _KEYWORDS:
                raise ParseError(f"expected table name, got {name!r}")
            if name not in self.schemas:
                raise ParseError(f"unknown relation {name!r}")
            alias = name
            tok = self.peek()
            if (
                tok is not None
                and tok.lower() not in _KEYWORDS
                and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", tok)
            ):
                alias = self.next()
            refs.append(RelationRef(name, alias))
            if not self.accept(","):
                break
        aliases = [r.alias for r in refs]
        if len(set(aliases)) != len(aliases):
            raise ParseError(f"duplicate aliases: {aliases}")
        return refs

    def parse_items(self) -> list[Column | Aggregate | Star]:
        if self.peek() == "*":
            self.next()
            return [Star()]
        items: list[Column | Aggregate | Star] = []
        while True:
            tok = self.peek()
            if tok is None:
                raise ParseError("unexpected end of projection list")
            low = tok.lower()
            follows = (
                self.tokens[self.pos + 1]
                if self.pos + 1 < len(self.tokens)
                else None
            )
            if low in _AGGS and follows == "(":
                self.next()  # aggregate name
                self.next()  # (
                arg: Column | None = None
                if self.peek() == "*":
                    self.next()
                    if low != "count":
                        raise ParseError(f"{low.upper()}(*) is not valid")
                else:
                    arg = self.parse_column()
                if self.next() != ")":
                    raise ParseError("expected ')' after aggregate argument")
                alias = None
                if self.accept("as"):
                    alias = self.next()
                items.append(Aggregate(low, arg, alias))
            else:
                items.append(self.parse_column())
            if not self.accept(","):
                break
        return items

    def parse_column(self) -> Column:
        first = self.next()
        if (
            not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", first)
            or first.lower() in _KEYWORDS
        ):
            raise ParseError(f"expected column name, got {first!r}")
        second = None
        if self.peek() == ".":
            self.next()
            second = self.next()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", second):
                raise ParseError(f"expected attribute name, got {second!r}")
        return self.resolve_column(first, second)

    def parse_column_list(self) -> list[Column]:
        cols = [self.parse_column()]
        while self.accept(","):
            cols.append(self.parse_column())
        return cols

    def parse_disjunction(self) -> Expr:
        left = self.parse_conjunction()
        terms = [left]
        while self.accept("or"):
            terms.append(self.parse_conjunction())
        if len(terms) == 1:
            return terms[0]
        return Or(tuple(terms))

    def parse_conjunction(self) -> Expr:
        left = self.parse_factor()
        terms = [left]
        while self.accept("and"):
            terms.append(self.parse_factor())
        if len(terms) == 1:
            return terms[0]
        return And(tuple(terms))

    def parse_factor(self) -> Expr:
        if self.accept("not"):
            return Not(self.parse_factor())
        if self.peek() == "(":
            self.next()
            inner = self.parse_disjunction()
            if self.next() != ")":
                raise ParseError("expected ')'")
            return inner
        if self.accept("true"):
            return TRUE
        return self.parse_condition()

    def parse_condition(self) -> Expr:
        col = self.parse_column()
        if self.accept("in"):
            if self.next() != "(":
                raise ParseError("expected '(' after IN")
            values = [self.parse_literal()]
            while self.accept(","):
                values.append(self.parse_literal())
            if self.next() != ")":
                raise ParseError("expected ')' after IN list")
            return InList(col, frozenset(v.value for v in values))
        op = self.next()
        if op == "<>":
            op = "!="
        if op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ParseError(f"expected comparison operator, got {op!r}")
        tok = self.peek()
        if tok is None:
            raise ParseError("missing right-hand side of comparison")
        if tok.startswith("'") or re.fullmatch(r"\d+(\.\d+)?", tok):
            rhs: Expr = self.parse_literal()
        else:
            rhs = self.parse_column()
        return Comparison(op, col, rhs).normalized()

    def parse_literal(self) -> Literal:
        tok = self.next()
        if tok.startswith("'"):
            return Literal(tok[1:-1].replace("''", "'"))
        if re.fullmatch(r"\d+\.\d+", tok):
            return Literal(float(tok))
        if re.fullmatch(r"\d+", tok):
            return Literal(int(tok))
        raise ParseError(f"expected literal, got {tok!r}")


def parse_query(
    text: str, schemas: Mapping[str, Relation] | Sequence[Relation]
) -> SPJQuery:
    """Parse SQL *text* against *schemas* into an :class:`SPJQuery`.

    *schemas* may be a mapping ``name -> Relation`` or a sequence of
    relations.  Raises :class:`ParseError` on bad syntax, unknown
    relations/attributes, or ambiguous unqualified columns.
    """
    if not isinstance(schemas, Mapping):
        schemas = {r.name: r for r in schemas}
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty query text")
    return _Parser(tokens, schemas).parse()
