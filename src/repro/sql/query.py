"""Select-project-join queries with optional grouping and aggregation.

A :class:`SPJQuery` is the unit of trade in the QT framework: buyers put
them in Requests-For-Bids, sellers rewrite and price them, and the buyer
plan generator stitches offered queries back into an execution plan for
the original one.  Queries are immutable and hashable, with a canonical
form so that structurally equivalent queries (same relations, same
conjuncts in any order) compare equal — crucial for the iterative
algorithm's "did the query set Q change?" termination test (step B6/B7 of
the paper's Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.sql.expr import (
    TRUE,
    FALSE,
    And,
    Column,
    Comparison,
    Expr,
    conjoin,
)
from repro.sql.schema import Relation, RelationRef

__all__ = ["Aggregate", "Star", "SPJQuery"]

_AGG_FUNCS = ("sum", "count", "min", "max", "avg")


@dataclass(frozen=True)
class Star:
    """``SELECT *`` — project every attribute of every relation."""

    def sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate output item, e.g. ``SUM(i.charge) AS total``.

    ``COUNT(*)`` is expressed with ``arg=None``.
    """

    func: str
    arg: Column | None
    alias: str | None = None

    def __post_init__(self) -> None:
        func = self.func.lower()
        if func not in _AGG_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        object.__setattr__(self, "func", func)
        if self.arg is None and func != "count":
            raise ValueError(f"{func} requires an argument")

    def columns(self) -> frozenset[Column]:
        return frozenset() if self.arg is None else frozenset((self.arg,))

    def rename_tables(self, mapping: Mapping[str, str]) -> "Aggregate":
        if self.arg is None:
            return self
        return Aggregate(self.func, self.arg.rename_tables(mapping), self.alias)

    def sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.sql()
        base = f"{self.func.upper()}({inner})"
        if self.alias:
            base += f" AS {self.alias}"
        return base


OutputItem = Column | Aggregate | Star


@dataclass(frozen=True)
class SPJQuery:
    """A select-project-join query over aliased base relations.

    Attributes
    ----------
    relations:
        The FROM list; aliases must be unique.
    predicate:
        A (usually conjunctive) boolean expression combining selections and
        join conditions.
    projections:
        Output items: columns, aggregates, or a single :class:`Star`.
    group_by:
        GROUP BY columns (empty for scalar aggregates / plain SPJ).
    order_by:
        ORDER BY columns — the paper's buyer predicates analyser adds and
        removes sort requirements when deriving new tradable queries.
    distinct:
        SELECT DISTINCT flag (relevant for the union-redundancy analysis of
        Section 3.7).
    """

    relations: tuple[RelationRef, ...]
    predicate: Expr = TRUE
    projections: tuple[OutputItem, ...] = (Star(),)
    group_by: tuple[Column, ...] = ()
    order_by: tuple[Column, ...] = ()
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.relations:
            raise ValueError("a query needs at least one relation")
        aliases = [r.alias for r in self.relations]
        if len(set(aliases)) != len(aliases):
            raise ValueError(f"duplicate aliases in FROM list: {aliases}")
        if not self.projections:
            raise ValueError("a query needs at least one output item")
        known = set(aliases)
        for col in self.predicate.columns():
            if col.table not in known:
                raise ValueError(
                    f"predicate references unknown alias {col.table!r}"
                )
        for item in self.projections:
            if isinstance(item, Star):
                continue
            for col in item.columns():
                if col.table not in known:
                    raise ValueError(
                        f"projection references unknown alias {col.table!r}"
                    )
        for col in self.group_by + self.order_by:
            if col.table not in known:
                raise ValueError(
                    f"group/order by references unknown alias {col.table!r}"
                )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> frozenset[str]:
        return frozenset(r.alias for r in self.relations)

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset(r.name for r in self.relations)

    def relation_for(self, alias: str) -> RelationRef:
        for r in self.relations:
            if r.alias == alias:
                return r
        raise KeyError(f"no relation aliased {alias!r}")

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(p, Aggregate) for p in self.projections)

    @property
    def is_star(self) -> bool:
        return any(isinstance(p, Star) for p in self.projections)

    def join_conjuncts(self) -> tuple[Comparison, ...]:
        """The equi-join (column-to-column, cross-relation) conjuncts."""
        return tuple(
            c
            for c in self.predicate.conjuncts()
            if isinstance(c, Comparison) and c.is_join
        )

    def selection_conjuncts(self) -> tuple[Expr, ...]:
        """All non-join conjuncts (single-relation restrictions)."""
        joins = set(self.join_conjuncts())
        return tuple(c for c in self.predicate.conjuncts() if c not in joins)

    def selection_on(self, alias: str) -> Expr:
        """Conjunction of selection conjuncts touching only *alias*."""
        parts = [
            c
            for c in self.selection_conjuncts()
            if c.tables() <= frozenset((alias,))
        ]
        return conjoin(parts)

    def output_columns(
        self, schemas: Mapping[str, Relation] | None = None
    ) -> tuple[Column, ...]:
        """The base columns produced, expanding ``*`` via *schemas*."""
        cols: list[Column] = []
        for item in self.projections:
            if isinstance(item, Star):
                if schemas is None:
                    raise ValueError("need schemas to expand SELECT *")
                for ref in self.relations:
                    rel = schemas[ref.name]
                    cols.extend(Column(ref.alias, a.name) for a in rel.attributes)
            elif isinstance(item, Column):
                cols.append(item)
            else:
                if item.arg is not None:
                    cols.append(item.arg)
        return tuple(cols)

    # ------------------------------------------------------------------
    # Derivation (the operations the QT modules perform on queries)
    # ------------------------------------------------------------------
    def restrict(self, extra: Expr) -> "SPJQuery":
        """Add a conjunct to the WHERE clause (fragment restriction etc.)."""
        return replace(self, predicate=conjoin([self.predicate, extra]))

    def with_projections(self, projections: Sequence[OutputItem]) -> "SPJQuery":
        return replace(self, projections=tuple(projections))

    def without_order(self) -> "SPJQuery":
        return replace(self, order_by=())

    def with_order(self, cols: Sequence[Column]) -> "SPJQuery":
        return replace(self, order_by=tuple(cols))

    def subquery_on(
        self,
        aliases: Iterable[str],
        schemas: Mapping[str, Relation] | None = None,
    ) -> "SPJQuery | None":
        """Project this query onto a subset of its relations.

        Keeps the relations in *aliases*, the conjuncts that touch only
        those aliases, and produces a ``SELECT *`` sub-query (the safe
        choice: every column possibly needed upstream is kept).  Returns
        ``None`` if the subset is empty.  This is the building block of
        the seller's modified-DP offer generation (Section 3.4): each
        optimal k-way partial result becomes a tradable sub-query.
        """
        wanted = frozenset(aliases)
        if not wanted or not wanted <= self.aliases:
            return None
        relations = tuple(r for r in self.relations if r.alias in wanted)
        conjuncts = [
            c for c in self.predicate.conjuncts() if c.tables() <= wanted
        ]
        return SPJQuery(
            relations=relations,
            predicate=conjoin(conjuncts),
            projections=(Star(),),
        )

    # ------------------------------------------------------------------
    # Canonical form & identity
    # ------------------------------------------------------------------
    def canonical(self) -> "SPJQuery":
        """Order-insensitive canonical form (sorted FROM list & conjuncts)."""
        relations = tuple(sorted(self.relations))
        conjuncts = sorted(
            (
                c.normalized() if isinstance(c, Comparison) else c
                for c in self.predicate.conjuncts()
            ),
            key=lambda c: c.sql(),
        )
        projections = self.projections
        if not self.is_star and not self.has_aggregates:
            projections = tuple(
                sorted(projections, key=lambda p: p.sql())  # type: ignore[union-attr]
            )
        return replace(
            self,
            relations=relations,
            predicate=conjoin(conjuncts),
            projections=projections,
        )

    def key(self) -> str:
        """A canonical string identity; equal iff canonically equal.

        Canonicalization re-sorts the FROM list and every conjunct, so
        the result is memoized — the trading layers key caches and
        dedupe sets on it in hot loops.
        """
        memo = self.__dict__.get("_key_memo")
        if memo is None:
            memo = self.canonical().sql()
            object.__setattr__(self, "_key_memo", memo)
        return memo

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_key_memo", None)
        return state

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def sql(self) -> str:
        select = ", ".join(p.sql() for p in self.projections)
        if self.distinct:
            select = "DISTINCT " + select
        from_items = []
        for r in self.relations:
            from_items.append(
                r.name if r.alias == r.name else f"{r.name} {r.alias}"
            )
        parts = [f"SELECT {select}", f"FROM {', '.join(from_items)}"]
        if self.predicate is not TRUE:
            parts.append(f"WHERE {self.predicate.sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(c.sql() for c in self.group_by))
        if self.order_by:
            parts.append("ORDER BY " + ", ".join(c.sql() for c in self.order_by))
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SPJQuery<{self.sql()}>"

    @property
    def is_unsatisfiable(self) -> bool:
        """True when the predicate is provably contradictory."""
        return self.predicate.simplify() is FALSE
