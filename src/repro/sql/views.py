"""Materialized views and view matching (Section 3.5).

The seller predicates analyser looks for materialized views that can
answer — or cheaply approximate — a requested query.  The paper's example:
a view pre-aggregating invoice charges per (office, custid) can answer the
manager's coarser per-office SUM, so the seller "offers it in small value".

Full answering-queries-using-views is NP-complete; following the paper we
implement a sound, conservative matcher that handles the cases the
framework actually trades:

* **Exact/filter match** — the view contains a superset of the query's
  rows over the same join (view predicate implied by query predicate);
  the residual selection is applied on top of the view.
* **Rollup match** — both are grouped aggregates, the query's grouping is
  coarser than (a subset of) the view's grouping, and every aggregate can
  be re-aggregated from the view's partial aggregates (SUM of SUM, SUM of
  COUNT, MIN of MIN, MAX of MAX).

A successful match never changes the *semantics* of the offered query —
it only changes the seller's cost: scanning a small view beats recomputing
a join over base fragments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sql.expr import Column, Expr, TRUE, conjoin, implies
from repro.sql.query import Aggregate, SPJQuery, Star
from repro.sql.schema import Relation

__all__ = ["MaterializedView", "ViewMatch", "match_view"]

# Aggregates that re-aggregate losslessly from finer groups: SUM of SUMs,
# SUM of COUNTs, MIN of MINs, MAX of MAXs.  AVG is not decomposable.
_ROLLUP_SAFE = frozenset(("sum", "count", "min", "max"))


@dataclass(frozen=True)
class MaterializedView:
    """A named, pre-computed query result stored at some node.

    ``freshness`` reflects how up-to-date the materialization is
    (1 = refreshed continuously); it flows into the freshness dimension
    of any offer priced from this view, so staleness-averse buyers can
    discount it.
    """

    name: str
    query: SPJQuery
    row_count: int
    freshness: float = 1.0

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be non-negative")
        if not (0.0 <= self.freshness <= 1.0):
            raise ValueError("freshness must be in [0, 1]")


@dataclass(frozen=True)
class ViewMatch:
    """How a view answers a query.

    Attributes
    ----------
    view:
        The matched view.
    residual:
        Selection to apply on top of the view's rows (``TRUE`` when the
        view's predicate already equals the query's).
    needs_rollup:
        True for the rollup case — the buyer-requested aggregate is
        recomputed by re-aggregating the view's finer groups.
    """

    view: MaterializedView
    residual: Expr
    needs_rollup: bool


def _alias_mapping(query: SPJQuery, view: SPJQuery) -> dict[str, str] | None:
    """Map view aliases onto query aliases by relation name (bijective).

    Self-joins (two refs of the same relation) are conservatively skipped:
    the mapping would be ambiguous.
    """
    if len(query.relations) != len(view.relations):
        return None
    query_by_name: dict[str, list[str]] = {}
    for ref in query.relations:
        query_by_name.setdefault(ref.name, []).append(ref.alias)
    mapping: dict[str, str] = {}
    for ref in view.relations:
        aliases = query_by_name.get(ref.name, [])
        if len(aliases) != 1:
            return None
        mapping[ref.alias] = aliases[0]
    if len(set(mapping.values())) != len(mapping):
        return None
    return mapping


def _view_output_columns(view: SPJQuery) -> set[Column] | None:
    """Base columns available from the view's output (None = all)."""
    if view.is_star:
        return None
    cols: set[Column] = set()
    for item in view.projections:
        if isinstance(item, Column):
            cols.add(item)
    cols.update(view.group_by)
    return cols


def match_view(
    query: SPJQuery,
    view: MaterializedView,
    schemas: Mapping[str, Relation],
) -> ViewMatch | None:
    """Sound test that *view* can produce the answer of *query*.

    Returns the match description, or ``None`` when the matcher cannot
    prove the view usable (false negatives are allowed; false positives
    are not).
    """
    vq = view.query
    mapping = _alias_mapping(query, vq)
    if mapping is None:
        return None
    view_pred = vq.predicate.rename_tables(mapping)
    # The view must contain every row the query needs.
    if not implies(query.predicate, view_pred):
        return None
    # Residual = query conjuncts not already guaranteed by the view.
    residual_parts = [
        c for c in query.predicate.conjuncts() if not implies(view_pred, c)
    ]
    residual = conjoin(residual_parts)

    view_group_by = tuple(c.rename_tables(mapping) for c in vq.group_by)
    view_has_aggs = vq.has_aggregates

    if not query.has_aggregates and not query.group_by:
        # Plain SPJ query: the view must not have collapsed rows, and must
        # expose every column the query projects or filters on.
        if view_has_aggs or vq.group_by or vq.distinct != query.distinct:
            return None
        available = _view_output_columns(vq)
        if available is not None:
            available = {c.rename_tables(mapping) for c in available}
            needed = set(query.output_columns(schemas))
            needed.update(residual.columns())
            if not needed <= available:
                return None
        return ViewMatch(view, residual, needs_rollup=False)

    if not view_has_aggs:
        # Query aggregates over a non-aggregated view: fine, the view acts
        # as a base table; require the needed columns to be exposed.
        available = _view_output_columns(vq)
        if vq.group_by or vq.distinct:
            return None
        if available is not None:
            available = {c.rename_tables(mapping) for c in available}
            needed = set(query.output_columns(schemas))
            needed.update(residual.columns())
            if not needed <= available:
                return None
        return ViewMatch(view, residual, needs_rollup=False)

    # Rollup case: both sides aggregate.
    if residual_parts:
        # Residual selections over an aggregated view are only sound on
        # grouping columns.
        if not set(residual.columns()) <= set(view_group_by):
            return None
    if not set(query.group_by) <= set(view_group_by):
        return None
    # Every query aggregate must be derivable from some view aggregate.
    view_aggs = {
        (item.func, item.arg.rename_tables(mapping) if item.arg else None)
        for item in vq.projections
        if isinstance(item, Aggregate)
    }
    for item in query.projections:
        if isinstance(item, (Column, Star)):
            if isinstance(item, Star):
                return None
            if item not in set(view_group_by):
                return None
            continue
        derivable = (item.func, item.arg) in view_aggs
        if not derivable:
            return None
    exact_grouping = set(query.group_by) == set(view_group_by)
    if not exact_grouping:
        # A genuine rollup: every query aggregate must be rollup-safe.
        for item in query.projections:
            if isinstance(item, Aggregate) and item.func not in _ROLLUP_SAFE:
                return None
    return ViewMatch(view, residual, needs_rollup=not exact_grouping)
