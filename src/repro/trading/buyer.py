"""The buyer node: plan generator and predicates analyser (§3.6–3.7).

**Plan generation** is an answering-queries-using-views problem: combine
purchased query-answers (each covering a subset of the query's relations
restricted to a set of horizontal fragments) into a plan computing the
original query.  Full generality is NP-complete; like the paper we search
the *fragment-aligned* space with dynamic programming:

* an **entry** is a plan producing the rows of an alias subset ``S``
  restricted to a fragment *rectangle* (one fragment set per alias);
* two entries over disjoint subsets **join** (the original query's
  connecting conjuncts apply);
* two entries over the same subset **union** when their rectangles agree
  everywhere except one alias, where they are disjoint — join distributes
  over union, so the result is the rectangle with that alias's fragment
  sets merged;
* an entry is **final** when its rows are already the query's answer
  shape (a seller shipped the original projections — e.g. fragment-
  aligned partial aggregates); raw entries get the buyer's own
  aggregation/sort glue on top.

The buyer-side DP can also run in IDP-M(2, m) mode ("after evaluating all
2-way join sub-plans, it keeps the best five of them"), the paper's
scalable variant.

**The predicates analyser** enriches the next round's query set Q: it
asks the market for the *complements* of partially covered relations,
de-overlaps redundant offers (the paper's union-redundancy example), and
emits sort-free variants of ORDER BY queries.
"""

from __future__ import annotations

import copy
import heapq
import pickle
from dataclasses import dataclass, field
from itertools import count
from typing import Iterable, Mapping, Sequence

from repro.obs.tracer import CAT_PARALLEL, NULL_TRACER, Tracer
from repro.optimizer.joingraph import JoinGraph
from repro.optimizer.plans import Plan, PlanBuilder, Purchased
from repro.sql.expr import Expr, TRUE, conjoin, restriction_overlaps
from repro.sql.query import Aggregate, SPJQuery
from repro.sql.schema import PartitionScheme
from repro.trading.commodity import (
    AnswerProperties,
    CoverageKey,
    Offer,
    coverage_key as _coverage_key,
)
from repro.trading.valuation import Valuation, WeightedValuation

__all__ = [
    "BuyerPlanGenerator",
    "BuyerPredicatesAnalyser",
    "CandidatePlan",
    "PlanGenResult",
]

RAW = "raw"
FINAL = "final"


@dataclass
class _Entry:
    plan: Plan
    coverage: dict[str, frozenset[int]]
    form: str  # RAW or FINAL
    complete: bool = False  # covers every required fragment of its aliases
    _key_memo: tuple[CoverageKey, str] | None = None

    def key(self) -> tuple[CoverageKey, str]:
        # Coverage dicts are never mutated after construction (merges
        # build fresh dicts), so the sorted key is computed once.
        if self._key_memo is None:
            self._key_memo = (_coverage_key(self.coverage), self.form)
        return self._key_memo


@dataclass(frozen=True)
class CandidatePlan:
    """A complete execution plan for the original query."""

    plan: Plan
    properties: AnswerProperties
    value: float

    def purchased(self) -> tuple[Purchased, ...]:
        return tuple(
            leaf for leaf in self.plan.leaves() if isinstance(leaf, Purchased)
        )


@dataclass
class PlanGenResult:
    """Outcome of one plan-generation pass."""

    best: CandidatePlan | None
    candidates: list[CandidatePlan] = field(default_factory=list)
    enumerated: int = 0

    @property
    def found(self) -> bool:
        return self.best is not None


class BuyerPlanGenerator:
    """Combines winning offers into candidate execution plans."""

    def __init__(
        self,
        builder: PlanBuilder,
        buyer_site: str,
        valuation: Valuation | None = None,
        mode: str = "dp",
        idp_m: int = 5,
        max_entries_per_subset: int = 32,
        max_join_fanin: int = 12,
        union_budget: int = 400,
        seconds_per_plan: float = 5e-5,
        workers: int = 1,
        parallel_threshold: int = 512,
    ):
        if mode not in ("dp", "idp"):
            raise ValueError("mode must be 'dp' or 'idp'")
        if workers < 1:
            raise ValueError("workers must be positive")
        self.builder = builder
        self.buyer_site = buyer_site
        self.valuation = valuation or WeightedValuation()
        self.mode = mode
        self.idp_m = idp_m
        self.max_entries_per_subset = max_entries_per_subset
        self.max_join_fanin = max_join_fanin
        self.union_budget = union_budget
        self.seconds_per_plan = seconds_per_plan
        #: Process-pool fan-out of the whole subset lattice: every DP
        #: level's masks are cost-partitioned (LPT over estimated join
        #: pairs) across workers and merged back in serial mask order,
        #: so results are byte-identical to serial at any worker count.
        #: The threshold (estimated join pairs per level) keeps small
        #: levels off the IPC tax entirely.
        self.workers = workers
        self.parallel_threshold = parallel_threshold
        #: Observability hook; the trader attaches its network tracer.
        self.tracer: Tracer = NULL_TRACER

    # ------------------------------------------------------------------
    def required_coverage(self, query: SPJQuery) -> dict[str, frozenset[int]]:
        """Fragments per alias that the answer must draw from.

        Fragments provably disjoint from the query's own selection are
        not required (no seller will—or need—cover them).
        """
        required: dict[str, frozenset[int]] = {}
        for ref in query.relations:
            scheme = self.builder.schemes[ref.name]
            selection = query.selection_on(ref.alias)
            required[ref.alias] = frozenset(
                fragment.fragment_id
                for fragment in scheme.fragments
                if restriction_overlaps(
                    selection, fragment.restriction_for(ref.alias)
                )
            )
        return required

    # ------------------------------------------------------------------
    def generate(self, query: SPJQuery, offers: Sequence[Offer]) -> PlanGenResult:
        tracer = self.tracer
        if not tracer.enabled:
            return self._generate(query, offers)
        with tracer.span(
            "buyer.plangen", "trading", site=self.buyer_site,
            mode=self.mode, offers=len(offers),
        ) as span:
            result = self._generate(query, offers)
            span.set(
                enumerated=result.enumerated,
                candidates=len(result.candidates),
                found=result.found,
            )
            return result

    def _generate(
        self, query: SPJQuery, offers: Sequence[Offer]
    ) -> PlanGenResult:
        aliases = frozenset(query.aliases)
        alias_to_relation = {r.alias: r.name for r in query.relations}
        required = self.required_coverage(query)
        if any(not fids for fids in required.values()):
            return PlanGenResult(best=None)  # unsatisfiable selection
        conjuncts = query.predicate.conjuncts()
        graph = JoinGraph(aliases, conjuncts)
        enumerated = 0

        # Seed entries from offers.  An entry is FINAL only when the
        # offered answer carries the *original* query's output shape —
        # `exact_projections` alone is relative to the offer's own
        # request, which for analyser-derived sub-queries is a SELECT *
        # part, not the original aggregate.
        needs_final_shape = (
            query.has_aggregates or query.group_by or query.distinct
        )
        subsets: dict[int, dict[tuple, _Entry]] = {}
        for offer in offers:
            if not offer.aliases or not offer.aliases <= aliases:
                continue
            coverage = {
                alias: frozenset(fids) & required[alias]
                for alias, fids in offer.coverage.items()
            }
            if any(not fids for fids in coverage.values()):
                continue
            form = RAW
            if (
                needs_final_shape
                and offer.exact_projections
                and offer.aliases == aliases
                and set(offer.query.projections) == set(query.projections)
                and set(offer.query.group_by) == set(query.group_by)
            ):
                form = FINAL
            plan = self.builder.purchased(
                offer.query,
                offer.seller,
                rows=offer.properties.rows,
                total_time=offer.properties.total_time,
                coverage=coverage,
                buyer_site=self.buyer_site,
                offer_id=offer.offer_id,
                money=offer.properties.money,
                freshness=offer.properties.freshness,
            )
            entry = _Entry(
                plan=plan,
                coverage=coverage,
                form=form,
                complete=_is_complete(coverage, required),
            )
            self._add_entry(subsets, graph.mask_of(offer.aliases), entry)
            enumerated += 1

        # Union closure at seed level.
        for subset in list(subsets):
            enumerated += self._union_closure(subsets, subset, query, required)

        # Join DP over alias subsets.  For connected queries, only
        # connected subsets are enumerated (cross-product avoidance); when
        # the query graph itself is disconnected, every subset is visited
        # and cross products are allowed where unavoidable.
        query_connected = graph.is_connected
        for size in range(2, graph.n + 1):
            masks = graph.level_masks(size, connected_only=query_connected)
            done_parallel = None
            if self.workers > 1 and masks:
                done_parallel = self._parallel_level(
                    subsets, size, masks, graph, query, required,
                    alias_to_relation, query_connected,
                )
            if done_parallel is not None:
                enumerated += done_parallel
            else:
                for mask in masks:
                    enumerated += self._level_block(
                        subsets, mask, graph, query, required,
                        alias_to_relation, query_connected,
                    )
            if self.mode == "idp" and size == 2:
                self._idp_prune(subsets, size)

        # Assemble candidates at the full subset with full coverage.
        candidates: list[CandidatePlan] = []
        for entry in subsets.get(graph.full_mask, {}).values():
            if not entry.complete:
                continue
            plan = entry.plan
            if entry.form == RAW:
                plan = self._finish(query, plan, alias_to_relation)
            elif query.order_by:
                plan = self.builder.sort(
                    self.builder.collocate(plan, self.buyer_site),
                    query.order_by,
                )
            candidates.append(self._candidate(plan))
        candidates.sort(key=lambda c: c.value)
        best = candidates[0] if candidates else None
        return PlanGenResult(best=best, candidates=candidates, enumerated=enumerated)

    # ------------------------------------------------------------------
    def _level_block(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        mask: int,
        graph: JoinGraph,
        query: SPJQuery,
        required: Mapping[str, frozenset[int]],
        alias_to_relation: Mapping[str, str],
        query_connected: bool,
    ) -> int:
        """One mask's DP step: joins over splits, union closure, prune.

        At a given level the masks are independent — each reads only
        strictly smaller buckets and writes only its own — which is what
        the full-lattice parallel scheduler (:meth:`_parallel_level`)
        exploits.  Returns plans enumerated.
        """
        enumerated = 0
        allow_cross = not (query_connected or graph.connected(mask))
        for left, right in graph.splits(mask):
            left_entries = subsets.get(left)
            right_entries = subsets.get(right)
            if not left_entries or not right_entries:
                continue
            connecting = graph.connecting(left, right)
            if not connecting and not allow_cross:
                continue
            for le in self._join_participants(left_entries):
                for re_ in self._join_participants(right_entries):
                    joined = self.builder.join(
                        le.plan,
                        re_.plan,
                        connecting,
                        alias_to_relation,
                        site=self.buyer_site,
                    )
                    enumerated += 1
                    coverage = {**le.coverage, **re_.coverage}
                    entry = _Entry(
                        plan=joined,
                        coverage=coverage,
                        form=RAW,
                        complete=_is_complete(coverage, required),
                    )
                    self._add_entry(subsets, mask, entry)
        enumerated += self._union_closure(subsets, mask, query, required)
        self._prune(subsets, mask)
        return enumerated

    def _level_weights(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        masks: Sequence[int],
        graph: JoinGraph,
        query_connected: bool,
    ) -> list[int]:
        """Estimated work per mask of one lattice level.

        A mask's dominant cost is its join pairs: for every split whose
        sides both hold RAW entries (and are connected or allowed to
        cross-product), the DP step builds ``min(|left|, fanin) *
        min(|right|, fanin)`` join plans — exactly what
        :meth:`_join_participants` admits.  Pre-seeded buckets add their
        entry count for the union-closure pass.  Masks that weigh zero
        are provably no-ops (no joins, no bucket to close or prune) and
        are skipped by the scheduler.
        """
        fanin = self.max_join_fanin
        raw_counts: dict[int, int] = {}

        def raw_count(m: int) -> int:
            cached = raw_counts.get(m)
            if cached is None:
                bucket = subsets.get(m)
                cached = 0
                if bucket:
                    cached = min(
                        sum(1 for e in bucket.values() if e.form == RAW),
                        fanin,
                    )
                raw_counts[m] = cached
            return cached

        weights = []
        for mask in masks:
            allow_cross = not (query_connected or graph.connected(mask))
            pairs = 0
            for left, right in graph.splits(mask):
                n_left = raw_count(left)
                if not n_left:
                    continue
                n_right = raw_count(right)
                if not n_right:
                    continue
                if not allow_cross and not graph.connecting(left, right):
                    continue
                pairs += n_left * n_right
            seeded = subsets.get(mask)
            weights.append(pairs + (len(seeded) if seeded else 0))
        return weights

    def _parallel_level(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        size: int,
        masks: Sequence[int],
        graph: JoinGraph,
        query: SPJQuery,
        required: Mapping[str, frozenset[int]],
        alias_to_relation: Mapping[str, str],
        query_connected: bool,
    ) -> int | None:
        """Fan one full lattice level across worker processes.

        Masks within a level are independent — each reads only strictly
        smaller buckets and writes its own — so the level is partitioned
        into cost-balanced chunks (LPT over :meth:`_level_weights`
        estimates, replacing PR 3's round-robin deal of level 2 only)
        and shipped whole to the fork pool: one task per chunk, so the
        shared ``PlanBuilder`` and the lower lattice pickle once per
        chunk.  Returns the enumerated-plan count, or ``None`` to signal
        "run serially" (level below the threshold, nothing to balance,
        or pool failure).  The parent merges worker buckets back in the
        level's own serial mask order, so ``subsets`` ends up with
        exactly the serial dict — same entries, same insertion order
        (``_idp_prune``'s stable sort depends on it).
        """
        weights = self._level_weights(subsets, masks, graph, query_connected)
        total = sum(weights)
        if total < self.parallel_threshold:
            return None
        scheduled = [i for i, weight in enumerate(weights) if weight > 0]
        if len(scheduled) < 2:
            return None
        # The generator shipped to workers must not drag an enabled
        # tracer along: one bound to a live simulator does not pickle,
        # and a silent pool failure here would disable buyer parallelism
        # exactly when someone is profiling it.
        shipped = self
        try:
            from repro.parallel.partition import (
                bucket_loads,
                imbalance_ratio,
                lpt_partition,
            )
            from repro.parallel.pool import run_chunks

            chunk_indices = lpt_partition(
                [weights[i] for i in scheduled], self.workers
            )
            chunks = [
                [masks[scheduled[j]] for j in group] for group in chunk_indices
            ]
            if self.tracer.enabled:
                shipped = copy.copy(self)
                shipped.tracer = NULL_TRACER
                loads = bucket_loads(
                    chunk_indices, [weights[i] for i in scheduled]
                )
                self.tracer.event(
                    "buyer.level_partition", CAT_PARALLEL,
                    site=self.buyer_site, level=size, masks=len(scheduled),
                    pairs=total, chunks=len(chunks),
                    # Closed-form split budget of the level — what a
                    # structure-blind allocator would balance against;
                    # the gap to ``pairs`` is what the cost model prunes.
                    splits_total=sum(graph.total_splits(m) for m in masks),
                    bucket_costs=[float(load) for load in loads],
                    imbalance=round(imbalance_ratio(loads), 4),
                )
            # Every chunk reads the same lower lattice, so the shared
            # state (generator, lower buckets, level seeds, graph,
            # query) is pickled ONCE per level into a blob that ships
            # to each task as plain bytes — the parent's serialization
            # cost stays constant as workers grow, instead of paying
            # one lattice pickle per chunk (the Amdahl serial fraction
            # that capped PR 3's speedup).
            seed = {
                m: bucket
                for m, bucket in subsets.items()
                if m.bit_count() < size
            }
            for i in scheduled:
                seeded = subsets.get(masks[i])
                if seeded:
                    seed[masks[i]] = seeded
            blob = pickle.dumps(
                (
                    shipped, seed, graph, query, required,
                    alias_to_relation, query_connected,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            merged: dict[int, tuple[dict, int]] = {}
            for result in run_chunks(
                self.workers,
                _level_chunk_worker,
                [(blob, chunk) for chunk in chunks],
            ):
                merged.update(result)
        except Exception:
            return None
        enumerated = 0
        for mask in masks:
            got = merged.get(mask)
            if got is None:
                continue  # zero-weight mask: a no-op serially too
            bucket, count_ = got
            enumerated += count_
            if bucket:
                subsets[mask] = bucket
        return enumerated

    # ------------------------------------------------------------------
    def _candidate(self, plan: Plan) -> CandidatePlan:
        properties = _plan_properties(plan)
        return CandidatePlan(
            plan=plan, properties=properties, value=self.valuation(properties)
        )

    def _entry_score(self, entry: "_Entry") -> float:
        """Valuation-driven ranking of competing entries.

        Entries with identical coverage may come from different sellers
        (replicas) with different prices and freshness; ranking them
        under the buyer's own valuation keeps e.g. staleness-averse
        buyers from locking in cheap-but-stale purchases during plan
        generation."""
        return self.valuation(_plan_properties(entry.plan))

    def _finish(
        self,
        query: SPJQuery,
        plan: Plan,
        alias_to_relation: Mapping[str, str],
    ) -> Plan:
        plan = self.builder.collocate(plan, self.buyer_site)
        if query.has_aggregates or query.group_by:
            aggregates = tuple(
                p for p in query.projections if isinstance(p, Aggregate)
            )
            plan = self.builder.aggregate(
                plan,
                query.group_by,
                aggregates,
                alias_to_relation,
                site=self.buyer_site,
            )
        if query.order_by:
            plan = self.builder.sort(plan, query.order_by)
        return plan

    # ------------------------------------------------------------------
    # Bucket helpers.  *subsets* is keyed by alias-subset bitmask in the
    # production path (see JoinGraph); the helpers never inspect the key,
    # so the frozenset-keyed reference path reuses them unchanged.
    def _add_entry(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        subset: int,
        entry: _Entry,
    ) -> bool:
        bucket = subsets.setdefault(subset, {})
        key = entry.key()
        current = bucket.get(key)
        if current is None or self._entry_score(entry) < self._entry_score(
            current
        ):
            bucket[key] = entry
            return True
        return False

    def _join_participants(self, bucket: dict[tuple, _Entry]) -> list[_Entry]:
        """Raw entries worth joining: complete ones first, then cheapest."""
        raws = [e for e in bucket.values() if e.form == RAW]
        raws.sort(key=lambda e: (not e.complete, self._entry_score(e)))
        return raws[: self.max_join_fanin]

    def _union_closure(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        subset: int,
        query: SPJQuery,
        required: Mapping[str, frozenset[int]],
    ) -> int:
        """Bounded best-first merging of fragment-rectangle entries.

        Cheapest entries are expanded first, orientation is canonical
        (the side with the smaller minimum fragment on the differing
        alias is always the left operand) so each merged rectangle is
        built once, and the exploration budget caps worst-case work.  A
        greedy completion pass afterwards guarantees that a *complete*
        entry exists whenever the bucket's pieces can cover the required
        fragments at all.
        """
        bucket = subsets.get(subset)
        if not bucket or len(bucket) < 2:
            return 0
        enumerated = 0
        counter = count()
        heap: list[tuple[float, int, _Entry]] = [
            (self._entry_score(e), next(counter), e) for e in bucket.values()
        ]
        heapq.heapify(heap)
        pops = 0
        while heap and pops < self.union_budget:
            _cost, _seq, a = heapq.heappop(heap)
            if bucket.get(a.key()) is not a:
                continue  # evicted or superseded
            pops += 1
            for b in list(bucket.values()):
                if b is a or b.form != a.form:
                    continue
                merged = _union_coverage(a.coverage, b.coverage)
                if merged is None:
                    continue
                differing, coverage = merged
                if min(a.coverage[differing]) > min(b.coverage[differing]):
                    continue  # canonical orientation only
                entry = self._union_entry(a, b, coverage, query, required)
                enumerated += 1
                if self._add_entry(subsets, subset, entry):
                    heapq.heappush(
                        heap,
                        (self._entry_score(entry), next(counter), entry),
                    )
            if len(bucket) > self.max_entries_per_subset * 4:
                self._prune(subsets, subset, cap=self.max_entries_per_subset * 2)
                bucket = subsets[subset]
        enumerated += self._greedy_complete(subsets, subset, query, required)
        return enumerated

    def _union_entry(
        self,
        a: _Entry,
        b: _Entry,
        coverage: dict[str, frozenset[int]],
        query: SPJQuery,
        required: Mapping[str, frozenset[int]],
    ) -> _Entry:
        distinct = a.form == FINAL and query.distinct
        plan = self.builder.union(
            [a.plan, b.plan], self.buyer_site, distinct=distinct
        )
        return _Entry(
            plan=plan,
            coverage=coverage,
            form=a.form,
            complete=_is_complete(coverage, required),
        )

    def _greedy_complete(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        subset: int,
        query: SPJQuery,
        required: Mapping[str, frozenset[int]],
    ) -> int:
        """Ensure a complete entry exists per form when pieces allow it.

        Starting from each of the cheapest seeds, repeatedly merge the
        cheapest unionable entry until complete or stuck.
        """
        bucket = subsets.get(subset)
        if not bucket:
            return 0
        enumerated = 0
        for form in (RAW, FINAL):
            if any(e.complete for e in bucket.values() if e.form == form):
                continue
            pieces = sorted(
                (e for e in bucket.values() if e.form == form),
                key=self._entry_score,
            )
            if not pieces:
                continue
            for seed in pieces[:4]:
                current = seed
                stuck = False
                while not current.complete and not stuck:
                    stuck = True
                    for piece in pieces:
                        merged = _union_coverage(current.coverage, piece.coverage)
                        if merged is None:
                            continue
                        _differing, coverage = merged
                        current = self._union_entry(
                            current, piece, coverage, query, required
                        )
                        enumerated += 1
                        stuck = False
                        break
                if current.complete:
                    self._add_entry(subsets, subset, current)
                    break
        return enumerated

    def _prune(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        subset: int,
        cap: int | None = None,
    ) -> None:
        """Cap a bucket, protecting *complete* entries.

        Complete entries (full required coverage for their aliases) are
        the spine of every final plan: joins of complete entries stay
        complete, so keeping them guarantees the generator finds a plan
        whenever the offers cover the query at all.  Incomplete entries
        are building material; only the cheapest survive the cap.
        """
        cap = cap if cap is not None else self.max_entries_per_subset
        bucket = subsets.get(subset)
        if not bucket or len(bucket) <= cap:
            return
        complete = {k: e for k, e in bucket.items() if e.complete}
        incomplete = sorted(
            (item for item in bucket.items() if not item[1].complete),
            key=lambda kv: self._entry_score(kv[1]),
        )
        room = max(0, cap - len(complete))
        kept = dict(complete)
        kept.update(dict(incomplete[:room]))
        subsets[subset] = kept

    def _idp_prune(
        self,
        subsets: dict[int, dict[tuple, _Entry]],
        size: int,
    ) -> None:
        """IDP-M(2, m): keep only the best *m* two-way entries overall.

        Complete entries (full required coverage for their aliases) are
        exempt — Kossmann & Stocker's pruning assumes unpartitioned
        single-site tables where every sub-plan is trivially "complete";
        with horizontal fragments, discarding the coverage spine would
        make whole queries unanswerable rather than merely suboptimal.
        """
        level = [
            (subset, key, entry)
            for subset, bucket in subsets.items()
            if subset.bit_count() == size
            for key, entry in bucket.items()
            if not entry.complete
        ]
        if len(level) <= self.idp_m:
            return
        level.sort(key=lambda item: self._entry_score(item[2]))
        for subset, key, _entry in level[self.idp_m :]:
            del subsets[subset][key]


def _level_chunk_worker(
    blob: bytes,
    masks: Sequence[int],
) -> dict[int, tuple[dict[tuple, _Entry], int]]:
    """Worker-side slice of one lattice level.

    *blob* is the level's shared state — ``(generator, seed, graph,
    query, required, alias_to_relation, query_connected)`` — pickled
    once by the parent and decoded here, in the worker, where the cost
    parallelizes.  Each mask's block reads only strictly smaller
    buckets (plus its own seeded bucket) and writes only its own, so
    masks within a chunk cannot interact; the result per mask is
    exactly what the serial loop would have left in ``subsets[mask]``.
    """
    (
        generator, seed, graph, query, required,
        alias_to_relation, query_connected,
    ) = pickle.loads(blob)
    subsets = dict(seed)
    out: dict[int, tuple[dict[tuple, _Entry], int]] = {}
    for mask in masks:
        enumerated = generator._level_block(
            subsets, mask, graph, query, required,
            alias_to_relation, query_connected,
        )
        out[mask] = (subsets.get(mask, {}), enumerated)
    return out


def _plan_properties(plan: Plan) -> AnswerProperties:
    """Aggregate a plan's answer properties: response time, purchased
    payments summed, freshness as the weakest purchased input."""
    money = 0.0
    freshness = 1.0
    for leaf in plan.leaves():
        if isinstance(leaf, Purchased):
            money += leaf.money
            freshness = min(freshness, leaf.freshness)
    return AnswerProperties(
        total_time=plan.response_time(),
        rows=plan.rows,
        money=money,
        freshness=freshness,
    )


def _is_complete(
    coverage: Mapping[str, frozenset[int]],
    required: Mapping[str, frozenset[int]],
) -> bool:
    """Does *coverage* include every required fragment of its aliases?"""
    return all(coverage[alias] >= required[alias] for alias in coverage)


def _union_coverage(
    a: Mapping[str, frozenset[int]],
    b: Mapping[str, frozenset[int]],
) -> tuple[str, dict[str, frozenset[int]]] | None:
    """``(differing_alias, merged_rectangle)`` if *a* and *b* differ on
    exactly one alias with disjoint fragment sets there; ``None``
    otherwise.  Join distributes over union only under this condition."""
    if a.keys() != b.keys():
        return None
    differing: str | None = None
    for alias in a:
        if a[alias] != b[alias]:
            if differing is not None:
                return None
            differing = alias
    if differing is None:
        return None  # identical rectangles: union would double-count
    if a[differing] & b[differing]:
        return None  # overlapping fragments: union would duplicate rows
    merged = dict(a)
    merged[differing] = a[differing] | b[differing]
    return differing, merged


class BuyerPredicatesAnalyser:
    """Derives the next round's query set Q (step B5/B6 of Figure 2)."""

    def __init__(self, schemes: Mapping[str, PartitionScheme]):
        self.schemes = schemes

    def derive(
        self,
        query: SPJQuery,
        offers: Sequence[Offer],
        required: Mapping[str, frozenset[int]],
    ) -> list[SPJQuery]:
        """New tradable queries suggested by the current market state."""
        derived: dict[str, SPJQuery] = {}

        def add(candidate: SPJQuery | None) -> None:
            if candidate is None or candidate.is_unsatisfiable:
                return
            derived.setdefault(candidate.key(), candidate)

        # 1. Complements: for each partially covered alias, ask for the
        #    missing fragments so other sellers can bid on them.
        for offer in offers:
            for alias, fids in offer.coverage.items():
                if alias not in required:
                    continue
                missing = required[alias] - fids
                if not missing or missing == required[alias]:
                    continue
                add(self._fragment_query(query, alias, missing))

        # 2. Per-relation parts: single-relation sub-queries of the
        #    original (lets fragment holders bid even when they returned
        #    nothing useful for the joins).
        if len(query.relations) > 1:
            for ref in query.relations:
                add(query.subquery_on((ref.alias,)))

        # 3. De-overlap redundant offers (the paper's union-redundancy
        #    example): two offers on the same aliases whose rectangles
        #    overlap on one alias spawn the difference queries.
        by_aliases: dict[frozenset[str], list[Offer]] = {}
        for offer in offers:
            by_aliases.setdefault(offer.aliases, []).append(offer)
        for group in by_aliases.values():
            for i, first in enumerate(group):
                for second in group[i + 1 :]:
                    for alias in first.coverage:
                        overlap = (
                            first.coverage[alias] & second.coverage[alias]
                        )
                        a_only = first.coverage[alias] - overlap
                        b_only = second.coverage[alias] - overlap
                        if not overlap or not (a_only or b_only):
                            continue
                        if a_only:
                            add(self._fragment_query(query, alias, a_only))
                        if b_only:
                            add(self._fragment_query(query, alias, b_only))

        # 4. Sort variants: trade the unsorted answer separately.
        if query.order_by:
            add(query.without_order())
        return list(derived.values())

    def _fragment_query(
        self, query: SPJQuery, alias: str, fragments: frozenset[int]
    ) -> SPJQuery | None:
        sub = query.subquery_on((alias,))
        if sub is None:
            return None
        ref = query.relation_for(alias)
        scheme = self.schemes[ref.name]
        restriction = scheme.restriction_for(alias, fragments)
        if restriction is TRUE:
            return sub
        return sub.restrict(restriction)
