"""Negotiation protocols: bidding, Vickrey auction, bargaining (§2, §3.2).

A protocol choreographs one *round* of the trading negotiation over the
discrete-event network: the buyer solicits, sellers compute offers (their
optimization effort is booked on their own compute timeline, so
independent sellers overlap — the root of QT's scalability), and replies
flow back.  Winner notification (`award`) is a separate step the trader
performs once the final plan is chosen.

* :class:`BiddingProtocol` — single sealed-bid round (the paper's
  default): RFB out, offers back.  2 messages per contacted seller.
* :class:`VickreyAuctionProtocol` — same message flow; the award step
  reprices each won request at the second-best competing offer
  (truth-inducing in the competitive setting).
* :class:`BargainingProtocol` — up to *k* counter-offer rounds: the buyer
  starts from an aggressive reservation and relaxes it toward the
  cheapest counter until some seller accepts.  Strictly more messages
  than bidding — matching the paper's remark that nesting bargaining
  "will only increase the number of exchanged messages".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.net.messages import Message, MessageKind
from repro.net.simulator import Network
from repro.trading.commodity import Offer, RequestForBids
from repro.trading.seller import SellerAgent
from repro.trading.valuation import Valuation, WeightedValuation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.offer_farm import OfferFarm

__all__ = [
    "NegotiationProtocol",
    "BiddingProtocol",
    "VickreyAuctionProtocol",
    "BargainingProtocol",
]

#: Serialized size of one offer / one RFB query beyond the base message.
OFFER_ITEM_BYTES = 256
QUERY_ITEM_BYTES = 128


def rfb_size(network: Network, rfb: RequestForBids) -> int:
    return (
        network.cost_model.network.control_message_bytes
        + QUERY_ITEM_BYTES * len(rfb.queries)
    )


def offers_size(network: Network, offers: Sequence[Offer]) -> int:
    return (
        network.cost_model.network.control_message_bytes
        + OFFER_ITEM_BYTES * len(offers)
    )


@dataclass
class SolicitResult:
    """Offers gathered in one negotiation round, with timing.

    ``timeouts_fired``/``retries`` only move for deadline-aware
    protocols (a :class:`BiddingProtocol` constructed with a timeout):
    how many round deadlines expired, and how many times an all-silent
    round was re-issued.
    """

    offers: list[Offer]
    started_at: float
    finished_at: float
    timeouts_fired: int = 0
    retries: int = 0
    #: Distinct sellers that answered with at least one offer — the
    #: response side of the RFB fanout/response ratio the live per-site
    #: registry aggregates.
    responded: int = 0

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class NegotiationProtocol:
    """Base: registers transient actors on the network per round."""

    name = "abstract"

    #: Optional :class:`~repro.parallel.offer_farm.OfferFarm` — when
    #: attached, rounds precompute seller offers in worker processes.
    farm: "OfferFarm | None" = None

    def attach_farm(self, farm: "OfferFarm | None") -> "NegotiationProtocol":
        """Attach (or detach with ``None``) a parallel offer farm."""
        self.farm = farm
        return self

    def solicit(
        self,
        network: Network,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        rfb: RequestForBids,
    ) -> SolicitResult:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def award(
        self,
        network: Network,
        buyer: str,
        winning: Sequence[Offer],
        losing: Sequence[Offer],
        sellers: Mapping[str, SellerAgent],
    ) -> list[Offer]:
        """Notify winners (AWARD) and losers (REJECT); returns the final
        (possibly repriced) winning offers."""
        tracer = network.tracer
        if not tracer.enabled:
            return self._award(network, buyer, winning, losing, sellers)
        with tracer.span(
            "trade.award", "trading", site=buyer,
            winning=len(winning), losing=len(losing), protocol=self.name,
        ):
            return self._award(network, buyer, winning, losing, sellers)

    def _award(
        self,
        network: Network,
        buyer: str,
        winning: Sequence[Offer],
        losing: Sequence[Offer],
        sellers: Mapping[str, SellerAgent],
    ) -> list[Offer]:
        self._ensure_registered(network, buyer, sellers)
        final = self.settle_prices(winning, losing)
        tracer = network.tracer
        if tracer.enabled:
            # Award decisions with *settled* prices (a Vickrey protocol
            # reprices between winning and final).  An amortized MQO
            # seed offer carries its sharer count so the award records
            # show this price is one session's share of a split cost.
            for offer in final:
                tracer.event(
                    "ledger.award", "decision", site=buyer,
                    offer=offer.offer_id, seller=offer.seller,
                    query=offer.query.key(), request=offer.request_key,
                    price=offer.properties.money, protocol=self.name,
                    **(
                        {"shared": offer.shared_by}
                        if offer.shared_by
                        else {}
                    ),
                )
        for offer in final:
            network.send(
                Message(MessageKind.AWARD, buyer, offer.seller, offer)
            )
        notified = {(o.seller, o.offer_id) for o in final}
        rejected_sellers = set()
        for offer in losing:
            if (offer.seller, offer.offer_id) in notified:
                continue
            rejected_sellers.add(offer.seller)
            if tracer.enabled:
                tracer.event(
                    "ledger.reject", "decision", site=buyer,
                    offer=offer.offer_id, seller=offer.seller,
                    request=offer.request_key,
                )
        for seller in sorted(rejected_sellers):
            network.send(Message(MessageKind.REJECT, buyer, seller, None))
        network.run()
        won_by_seller: dict[str, set[str]] = {}
        lost_by_seller: dict[str, set[str]] = {}
        for offer in final:
            won_by_seller.setdefault(offer.seller, set()).add(offer.request_key)
        for offer in losing:
            lost_by_seller.setdefault(offer.seller, set()).add(
                offer.request_key
            )
        for node, agent in sellers.items():
            won = won_by_seller.get(node, set())
            lost = lost_by_seller.get(node, set()) - won
            agent.record_outcomes(won, lost)
        return final

    def settle_prices(
        self, winning: Sequence[Offer], losing: Sequence[Offer]
    ) -> list[Offer]:
        """Payment rule; first-price by default (pay what was offered)."""
        return list(winning)

    # ------------------------------------------------------------------
    @staticmethod
    def _ensure_registered(
        network: Network, buyer: str, sellers: Mapping[str, SellerAgent]
    ) -> None:
        def _sink(_net: Network, _msg: Message) -> None:
            return None

        for node in list(sellers) + [buyer]:
            try:
                network.register(node, _sink)
            except ValueError:
                pass  # already registered


class BiddingProtocol(NegotiationProtocol):
    """One sealed-bid round: RFB broadcast, offers collected.

    With ``timeout=None`` (the default) the round simply runs until the
    network quiesces — the historical, fault-free behavior.  With a
    timeout, the buyer attaches a *deadline* to the round via a
    cancellable simulator timer: the round closes on the deadline with
    whatever bids arrived (late offers are discarded), the timer is
    cancelled early when every contacted seller answered, and a round in
    which *no* seller answered at all is re-issued with exponential
    backoff (``timeout × backoff^attempt``) up to ``max_retries`` times.
    In a fault-free run every seller answers, the deadline timer is
    cancelled without firing, and behavior — timings, messages, offers —
    is identical to the no-timeout path.
    """

    name = "bidding"

    def __init__(
        self,
        timeout: float | None = None,
        max_retries: int = 2,
        backoff: float = 2.0,
        farm: "OfferFarm | None" = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.farm = farm

    def solicit(
        self,
        network: Network,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        rfb: RequestForBids,
    ) -> SolicitResult:
        tracer = network.tracer
        if not tracer.enabled:
            return self._solicit(network, buyer, sellers, rfb)
        with tracer.span(
            "protocol.solicit", "trading", site=buyer,
            protocol=self.name, round=rfb.round_number,
            queries=len(rfb.queries),
            sellers=sum(1 for node in sellers if node != buyer),
        ) as span:
            result = self._solicit(network, buyer, sellers, rfb)
            span.set(
                offers=len(result.offers),
                timeouts=result.timeouts_fired,
                retries=result.retries,
                responded=result.responded,
            )
            return result

    def _solicit(
        self,
        network: Network,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        rfb: RequestForBids,
    ) -> SolicitResult:
        started = network.now
        collected: list[Offer] = []
        expected = sorted(node for node in sellers if node != buyer)
        responded: set[str] = set()
        state = {"closed": False, "timer": None, "timeouts": 0, "retries": 0}
        # Precompute seller work in worker processes (wall-clock only —
        # simulated timing and message flow are untouched).  ``None``
        # means this round runs fully serially.
        prefetch = (
            self.farm.prepare(sellers, rfb, exclude=buyer)
            if self.farm is not None
            else None
        )

        def seller_handler(net: Network, message: Message) -> None:
            if message.kind is not MessageKind.RFB:
                return
            agent = sellers[message.recipient]
            batch = (
                prefetch.consume(message.recipient, agent, message.payload)
                if prefetch is not None
                else None
            )
            if batch is not None:
                offers, work = batch
            else:
                offers, work = agent.prepare_offers(message.payload)
            done = net.compute(message.recipient, work)
            if net.tracer.enabled:
                # The booked optimization effort as a span on the
                # seller's busy timeline (identical whether the offers
                # came from the farm prefetch or a serial call).
                net.tracer.interval(
                    "seller.compute", "trading", site=message.recipient,
                    sim_start=done - work, sim_end=done,
                    work=work, offers=len(offers),
                    cause=message.mid,
                )
            if offers:
                net.send(
                    Message(
                        MessageKind.OFFER,
                        message.recipient,
                        buyer,
                        offers,
                        size_bytes=offers_size(net, offers),
                    ),
                    earliest=done,
                )
            else:
                net.send(
                    Message(
                        MessageKind.NO_OFFER, message.recipient, buyer, None
                    ),
                    earliest=done,
                )

        def buyer_handler(net: Network, message: Message) -> None:
            if state["closed"]:
                return  # round already closed on its deadline
            if message.kind is MessageKind.OFFER:
                collected.extend(message.payload)
                responded.add(message.sender)
            elif message.kind is MessageKind.NO_OFFER:
                responded.add(message.sender)
            else:
                return
            if self.timeout is not None and responded >= set(expected):
                # Everyone answered: close early, cancel the deadline.
                state["closed"] = True
                if state["timer"] is not None:
                    state["timer"].cancel()

        def issue(attempt: int) -> None:
            deadline = None
            if self.timeout is not None:
                deadline = self.timeout * (self.backoff**attempt)
                state["timer"] = network.sim.schedule_cancellable(
                    deadline, on_deadline
                )
            if not network.tracer.enabled:
                for node in expected:
                    network.send(
                        Message(
                            MessageKind.RFB,
                            buyer,
                            node,
                            rfb,
                            size_bytes=rfb_size(network, rfb),
                        )
                    )
                return
            with network.tracer.span(
                "rfb.fanout", "trading", site=buyer,
                attempt=attempt, sellers=len(expected),
                round=rfb.round_number,
                **({"deadline": deadline} if deadline is not None else {}),
            ):
                for node in expected:
                    network.send(
                        Message(
                            MessageKind.RFB,
                            buyer,
                            node,
                            rfb,
                            size_bytes=rfb_size(network, rfb),
                        )
                    )

        def on_deadline() -> None:
            state["timeouts"] += 1
            tracer = network.tracer
            timeout_id = -1
            if tracer.enabled:
                # The timeout itself is a causal node: re-issued RFBs
                # descend from it, not from the original fanout.
                timeout_id = network.next_causal_id()
                tracer.event(
                    "round.timeout", "trading", site=buyer,
                    responded=len(responded), expected=len(expected),
                    mid=timeout_id,
                )
            if not responded and state["retries"] < self.max_retries:
                # All sellers silent: re-issue with exponential backoff.
                state["retries"] += 1
                network.stats.retried += len(expected)
                if tracer.enabled:
                    tracer.event(
                        "round.retry", "trading", site=buyer,
                        attempt=state["retries"], mid=timeout_id,
                    )
                    prior = tracer.cause
                    tracer.cause = timeout_id
                    try:
                        issue(state["retries"])
                    finally:
                        tracer.cause = prior
                else:
                    issue(state["retries"])
            else:
                state["closed"] = True

        self._swap_handlers(network, buyer, sellers, buyer_handler, seller_handler)
        issue(0)
        network.run()
        state["closed"] = True
        if prefetch is not None:
            prefetch.discard()
        return SolicitResult(
            offers=collected,
            started_at=started,
            finished_at=network.now,
            timeouts_fired=state["timeouts"],
            retries=state["retries"],
            responded=len(responded),
        )

    @staticmethod
    def _swap_handlers(network, buyer, sellers, buyer_handler, seller_handler):
        for node in sellers:
            network.unregister(node)
            network.register(node, seller_handler)
        network.unregister(buyer)
        network.register(buyer, buyer_handler)


class VickreyAuctionProtocol(BiddingProtocol):
    """Bidding with second-price settlement per requested query.

    For every request key the winner pays the *second-lowest* competing
    monetary bid (or its own when unchallenged) — removing the incentive
    to shade bids in the competitive experiments.
    """

    name = "vickrey"

    def settle_prices(
        self, winning: Sequence[Offer], losing: Sequence[Offer]
    ) -> list[Offer]:
        by_request: dict[str, list[float]] = {}
        for offer in list(winning) + list(losing):
            by_request.setdefault(offer.request_key, []).append(
                offer.properties.money
            )
        final = []
        for offer in winning:
            competing = sorted(by_request.get(offer.request_key, []))
            price = offer.properties.money
            higher = [p for p in competing if p > price + 1e-12]
            if higher:
                price = higher[0]
            final.append(
                replace(offer, properties=offer.properties.with_money(price))
            )
        return final


class BargainingProtocol(NegotiationProtocol):
    """Alternating-offers bargaining, up to *max_rounds* per RFB.

    Round 1 announces the buyer's (aggressive) reservations.  Sellers
    priced out of a request respond with a COUNTER_OFFER at their best
    price instead of an OFFER; the buyer relaxes each reservation toward
    the cheapest counter by *concession* per round and re-solicits.  The
    final round drops reservations entirely so a plan can always form.
    """

    name = "bargaining"

    def __init__(
        self,
        max_rounds: int = 3,
        concession: float = 0.5,
        timeout: float | None = None,
        max_retries: int = 2,
        backoff: float = 2.0,
        farm: "OfferFarm | None" = None,
    ):
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if not (0.0 < concession <= 1.0):
            raise ValueError("concession must be in (0, 1]")
        self.max_rounds = max_rounds
        self.concession = concession
        self._bidding = BiddingProtocol(
            timeout=timeout, max_retries=max_retries, backoff=backoff,
            farm=farm,
        )
        self.farm = farm

    def attach_farm(self, farm: "OfferFarm | None") -> "BargainingProtocol":
        # Each bargaining round is one bidding round underneath; the
        # farm must sit on the protocol that actually contacts sellers.
        self.farm = farm
        self._bidding.attach_farm(farm)
        return self

    def solicit(
        self,
        network: Network,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        rfb: RequestForBids,
    ) -> SolicitResult:
        tracer = network.tracer
        if not tracer.enabled:
            return self._solicit(network, buyer, sellers, rfb)
        with tracer.span(
            "protocol.solicit", "trading", site=buyer,
            protocol=self.name, round=rfb.round_number,
            queries=len(rfb.queries),
            sellers=sum(1 for node in sellers if node != buyer),
        ) as span:
            result = self._solicit(network, buyer, sellers, rfb)
            span.set(
                offers=len(result.offers),
                timeouts=result.timeouts_fired,
                retries=result.retries,
                responded=result.responded,
            )
            return result

    def _solicit(
        self,
        network: Network,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        rfb: RequestForBids,
    ) -> SolicitResult:
        started = network.now
        reservations = dict(rfb.reservations)
        collected: dict[tuple, Offer] = {}
        valuation: Valuation = WeightedValuation()
        timeouts_fired = 0
        retries = 0
        for round_number in range(self.max_rounds):
            if round_number == self.max_rounds - 1:
                reservations = {}
            current = RequestForBids(
                buyer=rfb.buyer,
                queries=rfb.queries,
                reservations=dict(reservations),
                round_number=rfb.round_number,
            )
            result = self._bidding.solicit(network, buyer, sellers, current)
            timeouts_fired += result.timeouts_fired
            retries += result.retries
            got_new = False
            for offer in result.offers:
                key = (offer.seller, offer.query.key(), offer.exact_projections)
                current_best = collected.get(key)
                if current_best is None or valuation(
                    offer.properties
                ) < valuation(current_best.properties):
                    collected[key] = offer
                    got_new = True
            # Relax reservations toward observed prices.
            by_request: dict[str, float] = {}
            for offer in result.offers:
                cost = offer.properties.total_time
                key = offer.request_key
                if key not in by_request or cost < by_request[key]:
                    by_request[key] = cost
            satisfied = all(
                key in by_request for key in reservations
            ) and bool(result.offers)
            if satisfied or not reservations:
                break
            for key in list(reservations):
                observed = by_request.get(key)
                if observed is None:
                    reservations[key] = reservations[key] * (
                        1.0 + self.concession
                    )
                else:
                    reservations[key] += self.concession * max(
                        0.0, observed - reservations[key]
                    )
            if not got_new and round_number > 0:
                break
        return SolicitResult(
            offers=list(collected.values()),
            started_at=started,
            finished_at=network.now,
            timeouts_fired=timeouts_fired,
            retries=retries,
        )
