"""Contracts: the agreements struck at the end of a trading negotiation."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.trading.commodity import AnswerProperties, Offer

__all__ = ["Contract"]


@dataclass(frozen=True)
class Contract:
    """A struck deal: the buyer will receive the offered query-answer.

    ``agreed`` may differ from the offer's original properties when the
    protocol's payment rule repriced it (e.g. Vickrey second-price).
    ``voided`` marks a contract the buyer rescinded before delivery —
    e.g. because the selling node crashed — and hence owes nothing on;
    voided contracts are kept (in the resilience summary) for
    accounting, never in a result's active contract list.
    """

    buyer: str
    offer: Offer
    agreed: AnswerProperties
    voided: bool = False

    def void(self) -> "Contract":
        return replace(self, voided=True)

    @property
    def seller(self) -> str:
        return self.offer.seller

    @property
    def surplus(self) -> float:
        """Seller surplus: payment received minus true cost incurred."""
        return self.agreed.money - self.offer.true_cost

    def describe(self) -> str:
        return (
            f"{self.buyer} buys {self.offer.describe()} "
            f"for {self.agreed.money:.4f} (surplus {self.surplus:+.4f})"
        )
