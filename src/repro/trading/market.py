"""Market dynamics: load feedback across repeated trades.

The paper stresses that offers reflect "the available network resources
and the current workload of sellers".  When trades repeat, that coupling
becomes a market-based load balancer: a seller that keeps winning
accumulates queued work, its subsequent offers get slower/dearer, and the
buyer's next trade flows to an idle replica holder — no coordinator
involved.

:class:`Marketplace` wraps a :class:`~repro.trading.trader.QueryTrader`
and closes the loop: after each optimization it books the contracted
execution work onto the winning nodes' load factors (which the shared
:class:`~repro.optimizer.plans.PlanBuilder` capabilities feed straight
into every later cost estimate) and decays everyone's load by the
simulated time that passed, modelling work being drained between trades.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.optimizer.plans import PlanBuilder
from repro.sql.query import SPJQuery
from repro.trading.trader import QueryTrader, TradingResult

__all__ = ["Marketplace"]


@dataclass
class Marketplace:
    """Repeated trading with load feedback.

    Parameters
    ----------
    trader:
        The buyer-side driver (its sellers/builder are shared here).
    load_per_second:
        How much load one second of contracted execution work adds to
        the winning node.
    drain_rate:
        Load units drained per simulated second between trades.
    """

    trader: QueryTrader
    load_per_second: float = 5.0
    drain_rate: float = 0.05
    contract_counts: dict[str, int] = field(default_factory=dict)
    _last_drain: float = 0.0

    @property
    def builder(self) -> PlanBuilder:
        return self.trader.plan_generator.builder

    # ------------------------------------------------------------------
    def loads(self) -> dict[str, float]:
        return {
            node: caps.load
            for node, caps in self.builder.capabilities.items()
        }

    def _drain(self) -> None:
        now = self.trader.network.now
        elapsed = max(0.0, now - self._last_drain)
        self._last_drain = now
        if elapsed <= 0:
            return
        for node, caps in list(self.builder.capabilities.items()):
            drained = max(0.0, caps.load - self.drain_rate * elapsed)
            self.builder.capabilities[node] = caps.with_load(drained)

    def _book(self, result: TradingResult) -> None:
        for contract in result.contracts:
            node = contract.seller
            self.contract_counts[node] = self.contract_counts.get(node, 0) + 1
            caps = self.builder.caps(node)
            self.builder.capabilities[node] = caps.with_load(
                caps.load + self.load_per_second * contract.offer.true_cost
            )

    # ------------------------------------------------------------------
    def trade(self, query: SPJQuery) -> TradingResult:
        """One optimization with load drain before and booking after."""
        self._drain()
        result = self.trader.optimize(query)
        if result.found:
            self._book(result)
        return result

    def trade_many(
        self, query: SPJQuery, times: int
    ) -> list[TradingResult]:
        """Repeat the same query; winners rotate as load accumulates."""
        return [self.trade(query) for _ in range(times)]
