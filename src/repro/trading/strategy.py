"""Buyer and seller strategy modules.

Section 2: entities choose actions based on "the strategy they follow ...
and the expected surplus (utility) from this action"; strategies are
"classified as either cooperative or competitive".  In the cooperative
case sellers reveal true costs (maximizing joint surplus — the corporate
federation of the motivating example); in the competitive case each
seller marks its price up and adapts the margin to market feedback, and
may decline unprofitable requests.

Prices here are the *monetary* dimension of an offer; the time dimension
is the seller's genuine engineering estimate either way (a seller that
lies about delivery time is caught by the buyer's own experience — we
model the honest-time, strategic-price world the paper assumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cost.model import NodeCapabilities
from repro.trading.commodity import AnswerProperties

__all__ = [
    "SellerContext",
    "SellerStrategy",
    "CooperativeSellerStrategy",
    "CompetitiveSellerStrategy",
    "AdaptiveMarginStrategy",
    "BuyerStrategy",
]


@dataclass(frozen=True)
class SellerContext:
    """What a seller knows when pricing one offer."""

    query_key: str
    reservation: float | None  # buyer's announced value estimate, if any
    round_number: int
    caps: NodeCapabilities


class SellerStrategy:
    """Interface: turn true costs into offered prices (or decline)."""

    def price(
        self,
        properties: AnswerProperties,
        true_seconds: float,
        ctx: SellerContext,
    ) -> AnswerProperties | None:
        """Final offered properties; ``None`` declines to offer."""
        raise NotImplementedError

    def record_outcome(self, query_key: str, won: bool) -> None:
        """Feedback after winner determination (adaptive strategies)."""


@dataclass
class CooperativeSellerStrategy(SellerStrategy):
    """Truthful pricing: charge exactly the cost of the work performed.

    This maximizes joint surplus — the right strategy inside a single
    organization's distributed database.
    """

    def price(
        self,
        properties: AnswerProperties,
        true_seconds: float,
        ctx: SellerContext,
    ) -> AnswerProperties | None:
        return properties.with_money(
            true_seconds * ctx.caps.price_per_second
        )


@dataclass
class CompetitiveSellerStrategy(SellerStrategy):
    """Fixed-margin profit seeking, load-aware.

    The offered price is ``cost × (1 + margin + load_coefficient·load)``:
    a busy node is an expensive node.  When the buyer announced a
    reservation value, the seller shades its price down to just below it
    if that still clears cost (classic reservation undercutting) and
    declines when even the bare cost exceeds the reservation.
    """

    margin: float = 0.3
    load_coefficient: float = 0.5
    undercut: float = 0.99

    def price(
        self,
        properties: AnswerProperties,
        true_seconds: float,
        ctx: SellerContext,
    ) -> AnswerProperties | None:
        cost = true_seconds * ctx.caps.price_per_second
        markup = 1.0 + self.margin + self.load_coefficient * ctx.caps.load
        price = cost * markup
        if ctx.reservation is not None:
            ceiling = ctx.reservation * self.undercut
            if price > ceiling:
                if cost > ceiling:
                    return None  # unprofitable: decline
                price = ceiling
        return properties.with_money(price)


@dataclass
class AdaptiveMarginStrategy(CompetitiveSellerStrategy):
    """Competitive pricing with a win/loss-adaptive margin.

    Losing bids signal an overpriced seller (margin shrinks); winning
    bids signal headroom (margin grows), bounded to
    ``[min_margin, max_margin]`` — a standard multiplicative-adjustment
    bidding heuristic.
    """

    step: float = 0.15
    min_margin: float = 0.02
    max_margin: float = 1.0

    def record_outcome(self, query_key: str, won: bool) -> None:
        if won:
            self.margin = min(self.max_margin, self.margin * (1.0 + self.step))
        else:
            self.margin = max(self.min_margin, self.margin * (1.0 - self.step))


@dataclass
class BuyerStrategy:
    """The buyer's strategic value estimation (step B1 of Figure 2).

    The buyer announces, for each query in the RFB, the value it claims
    the query is worth.  Announcing a fraction (*pressure* < 1) of its
    best current estimate pushes competitive sellers to shade their
    margins; announcing nothing (``pressure=None``-like behaviour with
    ``announce=False``) reveals no information.
    """

    pressure: float = 0.9
    announce: bool = True
    initial_value: float = 0.0  # the paper's v0 for unknown queries

    def reservation(self, current_estimate: float | None) -> float | None:
        if not self.announce:
            return None
        if current_estimate is None or current_estimate <= 0:
            return self.initial_value if self.initial_value > 0 else None
        return current_estimate * self.pressure

    def accepts(self, value: float, reservation: float | None) -> bool:
        """Would the buyer accept an offer of *value* given its target?"""
        if reservation is None:
            return True
        return value <= reservation * 1.5  # tolerance band
