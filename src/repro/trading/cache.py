"""Seller-side offer/pricing cache.

Sellers re-price the same canonical subquery over and over: every bidding
round re-asks refined variants of round-one queries, repeated trades of
one query hit identical RFBs, and the experiment worlds sweep workloads
whose sub-queries overlap heavily.  The optimization a seller runs for a
given (canonical query, coverage, site) triple is deterministic, so its
:class:`~repro.optimizer.dp.DPResult` can be reused.

Simulated time stays honest: a cache hit is charged a configurable
fraction (:attr:`OfferCache.hit_work_fraction`) of the original simulated
optimization effort — a cached price still needs validating against
current statistics, but not a full re-enumeration.  The node's
:class:`~repro.cost.model.NodeCapabilities` are part of the key, so any
capability change (e.g. marketplace load feedback) is automatically a
miss and nothing stale is ever served.  Hit/miss counters follow the
``NetworkStats`` snapshot/delta idiom so callers can report per-trade
deltas.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.cost.model import NodeCapabilities
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sql.query import SPJQuery
from repro.trading.commodity import coverage_key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.dp import DPResult

__all__ = [
    "CacheStats",
    "InternTable",
    "OfferCache",
    "DEFAULT_HIT_WORK_FRACTION",
]

#: Fraction of the original simulated optimization effort charged on a hit.
DEFAULT_HIT_WORK_FRACTION = 0.1

CacheKey = tuple[str, tuple[tuple[str, tuple[int, ...]], ...], str, NodeCapabilities, str]


@dataclass
class CacheStats:
    """Hit/miss counters, reportable as per-interval deltas.

    ``intern_hits`` counts the subset of hits served from entries pinned
    in an :class:`InternTable` — commodities priced once per MQO epoch
    and reused by later sharers.  Zero whenever no intern table is
    attached, so non-MQO accounting is unchanged.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    intern_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def add(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.intern_hits += other.intern_hits

    def snapshot(self) -> "CacheStats":
        return CacheStats(
            self.hits, self.misses, self.evictions, self.intern_hits
        )

    def delta_since(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.intern_hits - earlier.intern_hits,
        )


class InternTable:
    """Cross-session registry of epoch-priced (interned) cache keys.

    The MQO epoch scheduler pins here every cache key its shared-pricing
    prepass stored, tagged with the epoch that priced it.  The owning
    :class:`OfferCache` consults the table on every hit (to count
    ``intern_hits``) and on eviction (pinned entries are evicted last,
    so a shared commodity stays warm for its sharers).  Session views
    and per-site worker snapshots share the one table — losing it in a
    clone silently drops intern provenance from worker stats.
    """

    def __init__(self):
        self._keys: dict[CacheKey, str] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def __getstate__(self):
        # Shipped to offer-farm workers inside cache snapshots.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def pin(self, key: CacheKey, tag: str) -> None:
        """Mark *key* as an interned (epoch-priced) commodity."""
        with self._lock:
            self._keys[key] = tag

    def contains(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._keys

    def tag(self, key: CacheKey) -> str | None:
        with self._lock:
            return self._keys.get(key)


class OfferCache:
    """Deterministic memo of seller optimization results.

    Parameters
    ----------
    hit_work_fraction:
        Fraction of the original enumeration effort charged on a hit
        (1.0 disables the simulated-time benefit while still skipping
        real re-enumeration work).
    max_entries:
        FIFO capacity bound; the oldest entry is evicted when full.

    A cache may be private to one seller or shared by all sellers of a
    federation world; lookups are keyed by site, so sharing never mixes
    results across nodes — it only pools capacity and statistics.

    Concurrency: entry and counter mutations are guarded by a lock so
    broker sessions running on separate threads can share one cache
    without corrupting hit/miss stats or tearing the FIFO eviction.
    Single-session paths pay one uncontended acquire per lookup/store.
    For per-session accounting under sharing, take a
    :meth:`session_view` — same entries and lock, private stats/tracer.
    """

    def __init__(
        self,
        hit_work_fraction: float = DEFAULT_HIT_WORK_FRACTION,
        max_entries: int = 4096,
    ):
        if not 0.0 <= hit_work_fraction <= 1.0:
            raise ValueError("hit_work_fraction must be in [0, 1]")
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.hit_work_fraction = hit_work_fraction
        self.max_entries = max_entries
        self.stats = CacheStats()
        #: Observability hook (off by default; the trader attaches its
        #: network tracer, the offer farm a worker-local one).
        self.tracer: Tracer = NULL_TRACER
        #: Cross-session intern table (``None`` outside MQO epochs).
        #: Shared — like the entry dict — by session views and per-site
        #: snapshots, so intern-hit attribution survives every path.
        self.interns: InternTable | None = None
        self._entries: dict[CacheKey, "DPResult"] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __getstate__(self):
        # Locks don't pickle; the offer farm ships site-sliced snapshots
        # to worker processes, which recreate a fresh lock on unpickle.
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @staticmethod
    def key_for(
        query: SPJQuery,
        coverage: Mapping[str, frozenset[int]],
        site: str,
        caps: NodeCapabilities,
        optimizer_name: str,
    ) -> CacheKey:
        """Canonical cache key for one local optimization request."""
        return (query.key(), coverage_key(coverage), site, caps, optimizer_name)

    def lookup(self, key: CacheKey) -> "DPResult | None":
        """The cached result for *key*, counting the hit or miss."""
        interned = False
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
                if self.interns is not None and self.interns.contains(key):
                    interned = True
                    self.stats.intern_hits += 1
        if result is None:
            if self.tracer.enabled:
                self.tracer.event(
                    "cache.miss", "cache", site=key[2], optimizer=key[4]
                )
        elif self.tracer.enabled:
            self.tracer.event(
                "cache.hit", "cache", site=key[2], optimizer=key[4],
                **({"interned": True} if interned else {}),
            )
        return result

    def store(self, key: CacheKey, result: "DPResult") -> None:
        evicted: CacheKey | None = None
        with self._lock:
            if key in self._entries:
                self._entries[key] = result
                return
            if len(self._entries) >= self.max_entries:
                # Interned (epoch-priced) entries are evicted last: a
                # shared commodity must stay warm for the sharers that
                # have not traded yet.  With no intern table this is
                # exactly the historical FIFO choice.
                evicted = next(
                    (
                        k
                        for k in self._entries
                        if self.interns is None
                        or not self.interns.contains(k)
                    ),
                    None,
                )
                if evicted is None:
                    evicted = next(iter(self._entries))
                del self._entries[evicted]
                self.stats.evictions += 1
            self._entries[key] = result
        if evicted is not None and self.tracer.enabled:
            self.tracer.event("cache.evict", "cache", site=evicted[2])

    def keys(self) -> list[CacheKey]:
        """The cached keys, in store order (the MQO epoch scheduler
        diffs this around its shared-pricing prepass to learn which
        keys to pin in the intern table)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def session_view(self) -> "OfferCache":
        """A per-session facade over this cache.

        The view shares the entry dict, lock, capacity policy, and hit
        discount — results cached by any session serve every other —
        but keeps **private** :class:`CacheStats` and tracer, so each
        broker session reports only its own hits/misses and traces only
        its own cache events.  Views of views share the same base.
        """
        view = OfferCache.__new__(OfferCache)
        view.hit_work_fraction = self.hit_work_fraction
        view.max_entries = self.max_entries
        view.stats = CacheStats()
        view.tracer = NULL_TRACER
        view.interns = self.interns
        view._entries = self._entries
        view._lock = self._lock
        return view

    # ------------------------------------------------------------------
    # Parallel-worker support (see repro.parallel.offer_farm)
    # ------------------------------------------------------------------
    def snapshot_for_site(self, site: str) -> "OfferCache":
        """An independent copy holding only *site*'s entries.

        Keys embed the seller site (index 2), so this is the exact slice
        of the cache one seller can ever touch.  The copy is effectively
        unbounded: workers never evict — capacity policy is enforced by
        the parent when it replays the worker's stores.

        The intern table rides along: a worker hit on an epoch-priced
        key must count as an intern hit exactly as the serial path
        would, including when the capacity guard later demotes the
        round to serial and recounts on the parent view — otherwise the
        stats-delta replay silently drops intern provenance.
        """
        clone = OfferCache(
            hit_work_fraction=self.hit_work_fraction,
            max_entries=2**31,
        )
        clone.interns = self.interns
        with self._lock:
            clone._entries = {
                key: result
                for key, result in self._entries.items()
                if key[2] == site
            }
        return clone

    def new_entries_since(
        self, snapshot: "OfferCache"
    ) -> list[tuple[CacheKey, "DPResult"]]:
        """Entries stored after *snapshot* was taken, in store order.

        Stores only ever happen after a miss (the key was absent), so the
        delta is exactly the keys not present in the snapshot; dict
        insertion order preserves the store order the parent must replay.
        """
        with self._lock:
            return [
                (key, result)
                for key, result in self._entries.items()
                if key not in snapshot._entries
            ]
