"""The seller node: partial query constructor, cost estimator, and
seller predicates analyser (Sections 3.4–3.5).

On receiving an RFB the seller:

1. **rewrites** each requested query to its local holdings (dropping
   non-local relations, restricting extents to local fragments),
2. runs its **local optimizer** — the modified dynamic programming
   algorithm — obtaining a precise plan/cost for the rewritten query *and*
   the optimal 2-way, 3-way, ... partial results, each of which becomes
   an additional offered query,
3. lets the **predicates analyser** search its materialized views for
   cheap ways to answer the request (exact match, filter, or rollup of a
   finer-grained aggregate view),
4. asks its **strategy** to price every candidate offer (competitive
   sellers may shade or decline).

The returned ``work_seconds`` is the simulated local optimization effort
(enumerated plans × per-plan cost), which the network simulator charges
to the seller's compute timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.catalog.catalog import LocalCatalog
from repro.cost.model import NodeCapabilities
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.optimizer.dp import DPResult, DynamicProgrammingOptimizer
from repro.optimizer.plans import Plan, PlanBuilder
from repro.sql.expr import TRUE
from repro.sql.query import SPJQuery
from repro.sql.rewrite import RewrittenQuery, rewrite_query
from repro.sql.views import match_view
from repro.trading.cache import OfferCache
from repro.trading.commodity import (
    AnswerProperties,
    Offer,
    RequestForBids,
    coverage_label,
)
from repro.trading.strategy import (
    CooperativeSellerStrategy,
    SellerContext,
    SellerStrategy,
)

__all__ = ["SellerAgent"]

#: Simulated seconds of optimizer work per enumerated (sub-)plan.
DEFAULT_SECONDS_PER_PLAN = 5e-5
#: Simulated seconds per view-match attempt.
SECONDS_PER_VIEW_MATCH = 2e-5


class SellerAgent:
    """One autonomous selling node.

    Parameters
    ----------
    local:
        The node's local catalog (schemas, schemes, held fragments, views).
    builder:
        Plan factory whose capabilities map includes this node.
    strategy:
        Pricing strategy (cooperative by default).
    offer_partials:
        Include the modified-DP partial results as extra offers
        (disabling this reduces message size but starves the buyer plan
        generator — an ablation the benchmarks exercise).
    max_partial_size:
        Cap on the relation-subset size of exported partials.
    offer_fragment_granularity:
        Additionally offer each locally held fragment of each relation as
        its own single-fragment commodity.  Overlapping holdings across
        sellers (node A holds {0,1}, node B holds {1,2}) often admit no
        *disjoint* exact cover at held-set granularity; per-fragment
        offers make round-one assembly the common case.
    join_capable:
        Autonomy also means heterogeneous *query capabilities* (paper
        §1): a node that cannot evaluate joins (a thin store, a
        key-value façade) only ever offers single-relation parts.
    use_views:
        Enable the seller predicates analyser (materialized views).
    subcontractor:
        Optional :class:`~repro.trading.subcontract.Subcontractor` — the
        extension Section 3.5 sketches and defers: a seller missing some
        of the requested data may *purchase* it from third nodes and
        offer the combined (e.g. pre-joined) answer itself.
    offer_cache:
        A shared :class:`~repro.trading.cache.OfferCache`; by default the
        agent creates a private one.  Pass ``use_offer_cache=False`` to
        disable caching entirely (every request re-optimizes).
    """

    def __init__(
        self,
        local: LocalCatalog,
        builder: PlanBuilder,
        strategy: SellerStrategy | None = None,
        optimizer: DynamicProgrammingOptimizer | None = None,
        offer_partials: bool = True,
        max_partial_size: int | None = 3,
        offer_fragment_granularity: bool = True,
        join_capable: bool = True,
        use_views: bool = True,
        seconds_per_plan: float = DEFAULT_SECONDS_PER_PLAN,
        subcontractor=None,
        freshness: float = 1.0,
        offer_cache: OfferCache | None = None,
        use_offer_cache: bool = True,
    ):
        self.node = local.node
        self.local = local
        self.builder = builder
        self.strategy = strategy or CooperativeSellerStrategy()
        self.optimizer = optimizer or DynamicProgrammingOptimizer(builder)
        self.offer_partials = offer_partials
        self.max_partial_size = max_partial_size
        self.offer_fragment_granularity = offer_fragment_granularity
        self.join_capable = join_capable
        self.use_views = use_views
        self.seconds_per_plan = seconds_per_plan
        self.subcontractor = subcontractor
        if not (0.0 <= freshness <= 1.0):
            raise ValueError("freshness must be in [0, 1]")
        self.freshness = freshness
        if offer_cache is not None:
            self.offer_cache: OfferCache | None = offer_cache
        else:
            self.offer_cache = OfferCache() if use_offer_cache else None
        #: Observability hook; the trader attaches its network tracer,
        #: the offer farm a fresh worker-local tracer whose records ship
        #: back with the offer batch.
        self.tracer: Tracer = NULL_TRACER
        #: Cache lineage of the most recent :meth:`optimize_cached` call
        #: ("hit" / "miss" / "none"), read by the decision-ledger
        #: instrumentation right after the call.
        self._last_cache_lineage: str = "none"
        #: Nominal optimizer effort accumulated for the query currently
        #: being priced: ``enumerated × seconds_per_plan`` summed over
        #: the :meth:`optimize_cached` calls it triggered.  Unlike the
        #: *charged* work (which shrinks to ``hit_work_fraction`` on an
        #: offer-cache hit, so shared-cache interleaving makes it racy
        #: across sessions), the nominal effort is a pure function of
        #: the query and the seller's catalog — the deterministic
        #: per-offer ``effort`` the decision ledger records.
        self._nominal_effort: float = 0.0

    # ------------------------------------------------------------------
    def prepare_offers(
        self, rfb: RequestForBids
    ) -> tuple[list[Offer], float]:
        """All offers for *rfb*, plus the simulated optimization effort."""
        tracer = self.tracer
        if not tracer.enabled:
            return self._prepare(rfb)
        with tracer.span(
            "seller.prepare_offers", "trading", site=self.node,
            round=rfb.round_number, queries=len(rfb.queries),
        ) as span:
            offers, work = self._prepare(rfb)
            span.set(offers=len(offers), work=work)
            return offers, work

    def _prepare(self, rfb: RequestForBids) -> tuple[list[Offer], float]:
        offers: list[Offer] = []
        work = 0.0
        lineage: dict[str, str] = {}
        efforts: dict[str, float] = {}
        for query in rfb.queries:
            self._last_cache_lineage = "none"
            self._nominal_effort = 0.0
            new_offers, query_work = self._offers_for(
                query, rfb.reservation_for(query), rfb.round_number
            )
            lineage[query.key()] = self._last_cache_lineage
            efforts[query.key()] = self._nominal_effort
            offers.extend(new_offers)
            work += query_work
        deduped = _dedupe(offers)
        tracer = self.tracer
        if tracer.enabled:
            # Decision-ledger provenance: one pricing record per offer
            # that survives dedupe, carrying the optimization lineage
            # (offer-cache hit vs fresh DP) of the request it answers.
            # An interned RFB (MQO epoch prepass) additionally stamps
            # the amortization factor: this price is shared by that
            # many buyer sessions and charged once in aggregate.
            for offer in deduped:
                shared = rfb.shared_count_for(offer.request_key)
                tracer.event(
                    "ledger.priced", "decision", site=self.node,
                    cause=tracer.cause,
                    offer=offer.offer_id,
                    seller=offer.seller,
                    request=offer.request_key,
                    query=offer.query.key(),
                    coverage=coverage_label(offer.coverage_key()),
                    exact=offer.exact_projections,
                    money=offer.properties.money,
                    total_time=offer.properties.total_time,
                    cache=lineage.get(offer.request_key, "none"),
                    effort=round(
                        efforts.get(offer.request_key, 0.0), 12
                    ),
                    round=rfb.round_number,
                    **({"shared": shared} if shared else {}),
                )
        return deduped, work

    # ------------------------------------------------------------------
    def optimize_cached(
        self,
        query: SPJQuery,
        coverage: Mapping[str, frozenset[int]],
    ) -> tuple[DPResult, float]:
        """Local optimization through the offer/pricing cache.

        Returns the (possibly cached) :class:`DPResult` and the simulated
        optimization effort to charge: the full ``enumerated ×
        seconds_per_plan`` on a miss, the cache's ``hit_work_fraction``
        of it on a hit.  The key includes this node's current
        capabilities, so load/capability changes invalidate naturally and
        a hit is always exactly what re-optimizing would have produced.
        """
        cache = self.offer_cache
        if cache is None:
            self._last_cache_lineage = "none"
            result = self.optimizer.optimize(
                query, self.node, coverage=dict(coverage)
            )
            nominal = result.enumerated * self.seconds_per_plan
            self._nominal_effort += nominal
            return result, nominal
        key = cache.key_for(
            query,
            coverage,
            self.node,
            self.builder.caps(self.node),
            self.optimizer.name,
        )
        cached = cache.lookup(key)
        if cached is not None:
            self._last_cache_lineage = "hit"
            # Nominal effort is cache-independent: ``enumerated`` is the
            # same whether the result was recomputed or replayed.
            self._nominal_effort += cached.enumerated * self.seconds_per_plan
            work = (
                cached.enumerated
                * self.seconds_per_plan
                * cache.hit_work_fraction
            )
            return cached, work
        self._last_cache_lineage = "miss"
        result = self.optimizer.optimize(
            query, self.node, coverage=dict(coverage)
        )
        cache.store(key, result)
        nominal = result.enumerated * self.seconds_per_plan
        self._nominal_effort += nominal
        return result, nominal

    # ------------------------------------------------------------------
    def _offers_for(
        self,
        query: SPJQuery,
        reservation: float | None,
        round_number: int,
    ) -> tuple[list[Offer], float]:
        caps = self.builder.caps(self.node)
        ctx = SellerContext(
            query_key=query.key(),
            reservation=reservation,
            round_number=round_number,
            caps=caps,
        )
        offers: list[Offer] = []
        work = 0.0

        rewritten = rewrite_query(
            query, self.local.schemas, self.local.schemes, self.local.held
        )
        if rewritten is not None:
            result, opt_work = self.optimize_cached(
                rewritten.query, rewritten.coverage
            )
            work += opt_work
            if result.plan is not None:
                offers.extend(
                    self._plan_offers(query, rewritten, result, ctx)
                )

        if self.use_views:
            view_offers, view_work = self._view_offers(query, ctx)
            offers.extend(view_offers)
            work += view_work

        if self.subcontractor is not None:
            sub_offers, sub_work = self.subcontractor.augment(
                self, query, rewritten, ctx
            )
            offers.extend(sub_offers)
            work += sub_work
        return offers, work

    def _plan_offers(
        self,
        request: SPJQuery,
        rewritten: RewrittenQuery,
        result: DPResult,
        ctx: SellerContext,
    ) -> list[Offer]:
        offers: list[Offer] = []
        full_aliases = frozenset(rewritten.query.aliases)
        if self.join_capable or len(full_aliases) == 1:
            full_offer = self._offer_from_plan(
                request,
                rewritten.query,
                result.plan,
                dict(rewritten.coverage),
                rewritten.exact_projections,
                ctx,
            )
            if full_offer is not None:
                offers.append(full_offer)
        if not self.offer_partials:
            return offers
        for subset, plan in sorted(
            result.best.items(), key=lambda kv: sorted(kv[0])
        ):
            if subset == full_aliases:
                continue
            if (
                self.max_partial_size is not None
                and len(subset) > self.max_partial_size
            ):
                continue
            if not self.join_capable and len(subset) > 1:
                continue
            sub_query = rewritten.query.subquery_on(subset)
            if sub_query is None:
                continue
            coverage = {
                alias: rewritten.coverage[alias] for alias in subset
            }
            offer = self._offer_from_plan(
                request, sub_query, plan, coverage, False, ctx
            )
            if offer is not None:
                offers.append(offer)
        if self.offer_fragment_granularity:
            offers.extend(self._fragment_offers(request, rewritten, ctx))
        return offers

    def _fragment_offers(
        self,
        request: SPJQuery,
        rewritten: RewrittenQuery,
        ctx: SellerContext,
    ) -> list[Offer]:
        """Single-fragment commodities for every held fragment."""
        from repro.sql.expr import conjoin, implies, normalize_conjunction

        offers: list[Offer] = []
        alias_to_relation = {
            r.alias: r.name for r in rewritten.query.relations
        }
        for alias, fragment_ids in sorted(rewritten.coverage.items()):
            if len(fragment_ids) < 2:
                continue  # the held-set partial already is one fragment
            ref = rewritten.query.relation_for(alias)
            scheme = self.local.schemes[ref.name]
            base = request.subquery_on((alias,))
            if base is None:
                continue
            selection = request.selection_on(alias)
            for fid in sorted(fragment_ids):
                restriction = scheme.fragment(fid).restriction_for(alias)
                scan_selection = conjoin(
                    [
                        c
                        for c in selection.conjuncts()
                        if not implies(restriction, c)
                    ]
                )
                plan = self.builder.scan(
                    ref, (fid,), scan_selection, self.node, alias_to_relation
                )
                sub_query = SPJQuery(
                    relations=base.relations,
                    predicate=normalize_conjunction(
                        conjoin([base.predicate, restriction])
                    ),
                )
                offer = self._offer_from_plan(
                    request,
                    sub_query,
                    plan,
                    {alias: frozenset((fid,))},
                    False,
                    ctx,
                )
                if offer is not None:
                    offers.append(offer)
        return offers

    def _offer_from_plan(
        self,
        request: SPJQuery,
        offered_query: SPJQuery,
        plan: Plan | None,
        coverage: Mapping[str, frozenset[int]],
        exact: bool,
        ctx: SellerContext,
    ) -> Offer | None:
        if plan is None:
            return None
        rows = plan.rows
        execute = plan.response_time()
        ship = self.builder.cost_model.transfer(rows)
        total = execute + ship
        properties = AnswerProperties(
            total_time=total,
            rows=rows,
            first_row_time=execute + self.builder.cost_model.network.latency,
            rows_per_second=rows / ship if ship > 0 else rows,
            freshness=self.freshness,
        )
        priced = self.strategy.price(properties, execute, ctx)
        if priced is None:
            return None
        return Offer(
            seller=self.node,
            query=offered_query,
            coverage=dict(coverage),
            properties=priced,
            exact_projections=exact,
            request_key=request.key(),
            true_cost=execute,
        )

    # -- seller predicates analyser ---------------------------------------
    def _view_offers(
        self, query: SPJQuery, ctx: SellerContext
    ) -> tuple[list[Offer], float]:
        offers: list[Offer] = []
        work = 0.0
        for view in self.local.views:
            work += SECONDS_PER_VIEW_MATCH
            match = match_view(query, view, self.local.schemas)
            if match is None:
                continue
            caps = ctx.caps
            model = self.builder.cost_model
            rows_out = self.builder.estimator.query_rows(query)
            execute = model.scan(view.row_count, caps)
            if match.residual is not TRUE:
                execute += model.cpu_pass(view.row_count, caps)
            if match.needs_rollup:
                execute += model.cpu_pass(view.row_count, caps)
            ship = model.transfer(rows_out)
            properties = AnswerProperties(
                total_time=execute + ship,
                rows=rows_out,
                first_row_time=execute + model.network.latency,
                rows_per_second=rows_out / ship if ship > 0 else rows_out,
                freshness=min(self.freshness, view.freshness),
            )
            priced = self.strategy.price(properties, execute, ctx)
            if priced is None:
                continue
            coverage = {
                ref.alias: self.local.schemes[ref.name].fragment_ids
                for ref in query.relations
            }
            offers.append(
                Offer(
                    seller=self.node,
                    query=query,
                    coverage=coverage,
                    properties=priced,
                    exact_projections=True,
                    request_key=query.key(),
                    true_cost=execute,
                )
            )
        return offers, work

    def record_outcomes(self, won_keys: Iterable[str], lost_keys: Iterable[str]) -> None:
        for key in won_keys:
            self.strategy.record_outcome(key, True)
        for key in lost_keys:
            self.strategy.record_outcome(key, False)


def _dedupe(offers: list[Offer]) -> list[Offer]:
    """Keep one offer per (request, query, coverage): cheapest total time."""
    best: dict[tuple, Offer] = {}
    for offer in offers:
        key = offer.dedupe_key()
        current = best.get(key)
        if (
            current is None
            or offer.properties.total_time < current.properties.total_time
        ):
            best[key] = offer
    return list(best.values())
