"""Subcontracting: sellers purchasing missing data from third nodes.

Section 3.5: "when the seller does not hold the whole data requested ...
it may try to find the rest of these data using a subcontracting
procedure, i.e., purchase the missing data from a third seller node.  In
this paper, due to lack of space, we do not consider this possibility."
The paper's future-work list includes "the design of a scalable
subcontracting algorithm"; this module implements the one-level version:

* when a seller's rewrite *dropped* relations (it holds no usable
  fragment of them), it solicits its peers for exactly those missing
  single-relation parts,
* it assembles the cheapest peer coverage per missing relation, joins the
  purchased parts with its own local partial result, and
* offers the *combined* answer — covering relation subsets no single
  node's holdings could cover — priced at local cost + purchase costs +
  integration work (plus the seller's usual margin).

Recursion is bounded to one level: a subcontracting seller consults peers
whose own subcontractors stay silent for these nested requests (peers are
asked via :meth:`SellerAgent._offers_for` with the subcontractor masked),
matching the paper's concern that unbounded nesting "will only increase
the number of exchanged messages".  Nested traffic and peer compute are
accounted on the network when one is attached.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.net.messages import Message, MessageKind
from repro.net.simulator import Network
from repro.sql.query import SPJQuery
from repro.sql.rewrite import RewrittenQuery
from repro.trading.commodity import AnswerProperties, Offer
from repro.trading.strategy import SellerContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trading.seller import SellerAgent

__all__ = ["Subcontractor"]


class Subcontractor:
    """One-level subcontracting for a selling node.

    Parameters
    ----------
    peers:
        The nodes this seller may purchase from (its trading partners).
        Populated after construction via :meth:`connect` when the agent
        set is built in one go.
    network:
        Optional network for accounting the nested negotiation (two
        control messages per consulted peer; peer pricing work booked on
        the peer's compute timeline).
    max_peers:
        Consult at most this many peers per request (keeps the nested
        negotiation scalable).
    """

    def __init__(
        self,
        peers: Mapping[str, "SellerAgent"] | None = None,
        network: Network | None = None,
        max_peers: int = 8,
    ):
        self.peers: dict[str, "SellerAgent"] = dict(peers or {})
        self.network = network
        self.max_peers = max_peers

    def connect(
        self, peers: Mapping[str, "SellerAgent"], network: Network | None = None
    ) -> None:
        """Attach the peer set (excluding the owning seller itself)."""
        self.peers = dict(peers)
        if network is not None:
            self.network = network

    # ------------------------------------------------------------------
    def augment(
        self,
        seller: "SellerAgent",
        query: SPJQuery,
        rewritten: RewrittenQuery | None,
        ctx: SellerContext,
    ) -> tuple[list[Offer], float]:
        """Extra offers obtained by purchasing missing parts from peers."""
        if rewritten is None or not rewritten.dropped:
            return [], 0.0
        peers = [
            (node, agent)
            for node, agent in sorted(self.peers.items())
            if node != seller.node
        ][: self.max_peers]
        if not peers:
            return [], 0.0

        # What we need from the market: the dropped relations, whole.
        missing_queries: dict[str, SPJQuery] = {}
        for alias in sorted(rewritten.dropped):
            sub = query.subquery_on((alias,))
            if sub is None:
                return [], 0.0
            missing_queries[alias] = sub

        purchases, work = self._purchase_parts(
            seller, missing_queries, peers, ctx
        )
        if purchases is None:
            return [], work

        offer = self._combined_offer(
            seller, query, rewritten, purchases, ctx
        )
        return ([offer] if offer is not None else []), work

    # ------------------------------------------------------------------
    def _purchase_parts(
        self,
        seller: "SellerAgent",
        missing_queries: Mapping[str, SPJQuery],
        peers: Sequence[tuple[str, "SellerAgent"]],
        ctx: SellerContext,
    ) -> tuple[dict[str, list[Offer]] | None, float]:
        """Cheapest disjoint coverage per missing alias, bought from peers.

        Returns ``None`` when some alias cannot be fully covered.
        """
        from repro.trading.commodity import RequestForBids

        rfb = RequestForBids(
            buyer=seller.node,
            queries=tuple(missing_queries.values()),
            round_number=ctx.round_number,
        )
        work = 0.0
        collected: list[Offer] = []
        for node, agent in peers:
            nested = agent.subcontractor
            agent.subcontractor = None  # bound recursion to one level
            try:
                peer_offers, peer_work = agent.prepare_offers(rfb)
            finally:
                agent.subcontractor = nested
            collected.extend(peer_offers)
            if self.network is not None:
                self.network.stats.record(
                    Message(MessageKind.RFB, seller.node, node, None),
                    self.network.cost_model.network.control_message_bytes,
                )
                self.network.stats.record(
                    Message(MessageKind.OFFER, node, seller.node, None),
                    self.network.cost_model.network.control_message_bytes,
                )
                self.network.compute(node, peer_work)
            work += peer_work / max(1, len(peers))  # peers work in parallel

        purchases: dict[str, list[Offer]] = {}
        for alias, sub in missing_queries.items():
            ref_name = sub.relations[0].name
            required = seller.local.schemes[ref_name].fragment_ids
            relevant = sorted(
                (
                    o
                    for o in collected
                    if set(o.coverage) == {alias}
                ),
                key=lambda o: o.properties.total_time
                / max(1, len(o.coverage[alias])),
            )
            chosen: list[Offer] = []
            covered: frozenset[int] = frozenset()
            for offer in relevant:
                fids = frozenset(offer.coverage[alias])
                if not fids or fids & covered:
                    continue
                chosen.append(offer)
                covered |= fids
                if covered >= required:
                    break
            if covered < required:
                return None, work
            purchases[alias] = chosen
        return purchases, work

    # ------------------------------------------------------------------
    def _combined_offer(
        self,
        seller: "SellerAgent",
        query: SPJQuery,
        rewritten: RewrittenQuery,
        purchases: Mapping[str, list[Offer]],
        ctx: SellerContext,
    ) -> Offer | None:
        """Price the full query: local part ⋈ purchased parts at this node."""
        builder = seller.builder
        alias_to_relation = {r.alias: r.name for r in query.relations}

        # Goes through the offer cache: the main offer path has usually
        # just priced this same rewritten query.  The work charge is
        # dropped either way (this combination step is not separately
        # billed), so only real wall-clock is saved here.
        local_result, _work = seller.optimize_cached(
            rewritten.query, rewritten.coverage
        )
        plan = local_result.plan
        if plan is None:
            return None
        conjuncts = query.predicate.conjuncts()
        from repro.optimizer.dp import connecting_conjuncts

        covered_aliases = frozenset(rewritten.coverage)
        for alias in sorted(purchases):
            parts = [
                builder.purchased(
                    o.query,
                    o.seller,
                    rows=o.properties.rows,
                    total_time=o.properties.total_time,
                    coverage={alias: frozenset(o.coverage[alias])},
                    buyer_site=seller.node,
                    offer_id=o.offer_id,
                    money=o.properties.money,
                )
                for o in purchases[alias]
            ]
            incoming = builder.union(parts, seller.node)
            connecting = connecting_conjuncts(
                conjuncts, covered_aliases, frozenset((alias,))
            )
            plan = builder.join(
                plan, incoming, connecting, alias_to_relation,
                site=seller.node,
            )
            covered_aliases |= {alias}

        execute = plan.response_time()
        rows = plan.rows
        ship = builder.cost_model.transfer(rows)
        purchased_money = sum(
            o.properties.money for parts in purchases.values() for o in parts
        )
        properties = AnswerProperties(
            total_time=execute + ship,
            rows=rows,
            first_row_time=execute + builder.cost_model.network.latency,
            rows_per_second=rows / ship if ship > 0 else rows,
        )
        priced = seller.strategy.price(properties, execute, ctx)
        if priced is None:
            return None
        priced = priced.with_money(priced.money + purchased_money)
        coverage = dict(rewritten.coverage)
        for alias in purchases:
            ref = query.relation_for(alias)
            coverage[alias] = seller.local.schemes[ref.name].fragment_ids
        return Offer(
            seller=seller.node,
            query=query.subquery_on(query.aliases) or query,
            coverage=coverage,
            properties=priced,
            exact_projections=False,
            request_key=query.key(),
            true_cost=execute,
        )
