"""The Query-Trading (QT) framework — the paper's primary contribution.

Queries and query answers are commodities: buyers issue Requests-For-Bids
for sets of queries, sellers respond with offers describing the
properties (time, rows, freshness, money, ...) of the query-answers they
can produce, and the buyer composes winning offers into a distributed
execution plan.  The iterative algorithm of the paper's Figure 2 lives in
:class:`~repro.trading.trader.QueryTrader`.
"""

from repro.trading.commodity import (
    AnswerProperties,
    Offer,
    RequestForBids,
)
from repro.trading.valuation import Valuation, WeightedValuation
from repro.trading.strategy import (
    AdaptiveMarginStrategy,
    BuyerStrategy,
    CompetitiveSellerStrategy,
    CooperativeSellerStrategy,
    SellerContext,
    SellerStrategy,
)
from repro.trading.protocols import (
    BargainingProtocol,
    BiddingProtocol,
    NegotiationProtocol,
    VickreyAuctionProtocol,
)
from repro.trading.cache import CacheStats, InternTable, OfferCache
from repro.trading.seller import SellerAgent
from repro.trading.subcontract import Subcontractor
from repro.trading.market import Marketplace
from repro.trading.buyer import BuyerPlanGenerator, BuyerPredicatesAnalyser
from repro.trading.trader import (
    QueryTrader,
    ResilienceSummary,
    TradingResult,
)

__all__ = [
    "AnswerProperties",
    "Offer",
    "RequestForBids",
    "Valuation",
    "WeightedValuation",
    "BuyerStrategy",
    "SellerStrategy",
    "SellerContext",
    "CooperativeSellerStrategy",
    "CompetitiveSellerStrategy",
    "AdaptiveMarginStrategy",
    "NegotiationProtocol",
    "BiddingProtocol",
    "VickreyAuctionProtocol",
    "BargainingProtocol",
    "CacheStats",
    "InternTable",
    "OfferCache",
    "SellerAgent",
    "Subcontractor",
    "Marketplace",
    "BuyerPlanGenerator",
    "BuyerPredicatesAnalyser",
    "QueryTrader",
    "ResilienceSummary",
    "TradingResult",
]
