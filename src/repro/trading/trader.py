"""The Query-Trading optimizer: the iterative algorithm of Figure 2.

Steps (buyer side), as in the paper:

* **B1** — strategically estimate values for the current query set Q;
* **B2** — request bids from the selling nodes;
* **B3** — run the negotiation protocol, gathering offers (sellers run
  S2.1–S3: rewrite, local optimization, predicates analysis, pricing);
* **B4** — combine winning offers into candidate execution plans;
* **B5/B6** — the buyer predicates analyser enriches Q with new queries
  that could improve the next round's plans;
* **B7** — keep the best plan; terminate when it stopped improving or no
  new query was found;
* **B8** — award the winning offers (strike contracts) and return the
  plan.

The trader runs against the discrete-event network, so its result carries
exact simulated optimization time and message counts — the quantities
the paper's experimental study reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.net.simulator import Network, NetworkStats
from repro.obs.ledger import NegotiationLedger
from repro.obs.metrics import RunTelemetry
from repro.optimizer.plans import PlanBuilder, Purchased
from repro.sql.query import SPJQuery
from repro.trading.buyer import (
    BuyerPlanGenerator,
    BuyerPredicatesAnalyser,
    CandidatePlan,
)
from repro.trading.cache import CacheStats
from repro.trading.commodity import Offer, RequestForBids, coverage_label
from repro.trading.contracts import Contract
from repro.trading.protocols import BiddingProtocol, NegotiationProtocol
from repro.trading.seller import SellerAgent
from repro.trading.strategy import BuyerStrategy
from repro.trading.valuation import Valuation, WeightedValuation

__all__ = ["QueryTrader", "TradingResult", "ResilienceSummary"]


@dataclass
class IterationTrace:
    """Per-iteration diagnostics (drives the convergence experiment)."""

    round_number: int
    queries_asked: int
    offers_received: int
    best_value: float | None
    elapsed: float


@dataclass
class ResilienceSummary:
    """What it took to survive an unreliable federation.

    All-zero for a fault-free run.  ``degradation`` compares the final
    plan against a fault-free reference cost when one is known:
    ``0.0`` means the faults cost nothing, ``0.25`` a 25% worse plan.
    """

    timeouts_fired: int = 0  # CFB round deadlines that expired
    retries: int = 0  # all-silent rounds re-issued (with backoff)
    renegotiations: int = 0  # post-award re-trades after seller crashes
    contracts_voided: int = 0
    voided: list[Contract] = field(default_factory=list)
    fault_free_cost: float | None = None  # reference plan cost, if known
    final_cost: float | None = None

    @property
    def degradation(self) -> float | None:
        if not self.fault_free_cost or self.final_cost is None:
            return None
        return self.final_cost / self.fault_free_cost - 1.0

    @property
    def clean(self) -> bool:
        """True when no resilience machinery had to engage."""
        return not (
            self.timeouts_fired
            or self.retries
            or self.renegotiations
            or self.contracts_voided
        )

    def describe(self) -> str:
        parts = [
            f"timeouts={self.timeouts_fired}",
            f"retries={self.retries}",
            f"renegotiations={self.renegotiations}",
            f"voided={self.contracts_voided}",
        ]
        degradation = self.degradation
        if degradation is not None:
            parts.append(f"degradation={degradation:+.1%}")
        return " ".join(parts)


@dataclass
class TradingResult:
    """Everything the trading negotiation produced."""

    query: SPJQuery
    best: CandidatePlan | None
    contracts: list[Contract] = field(default_factory=list)
    iterations: int = 0
    offers_considered: int = 0
    optimization_time: float = 0.0  # simulated seconds
    messages: NetworkStats = field(default_factory=NetworkStats)
    trace: list[IterationTrace] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)  # seller offer caches
    resilience: ResilienceSummary = field(default_factory=ResilienceSummary)
    #: Per-run metrics (``None`` unless a tracer was attached to the
    #: network — see :mod:`repro.obs`).
    telemetry: RunTelemetry | None = None
    #: The negotiation's decision ledger (``None`` unless traced) —
    #: the causal RFB -> offer -> ranking -> award/void chain behind
    #: this result; feed it to :func:`repro.obs.explain`.
    ledger: NegotiationLedger | None = None
    #: True when the negotiation stopped because a compute budget ran
    #: out (offer budget hit, or the round cap fired with refined
    #: queries still pending) rather than by natural convergence.  Any
    #: plan present is still valid — just possibly improvable; the
    #: broker reports such sessions as ``degraded``.
    budget_exhausted: bool = False

    @property
    def found(self) -> bool:
        return self.best is not None

    @property
    def plan_cost(self) -> float:
        if self.best is None:
            raise ValueError("no plan found")
        return self.best.properties.total_time

    @property
    def total_payment(self) -> float:
        return sum(c.agreed.money for c in self.contracts)


class QueryTrader:
    """Buyer-side driver of the query-trading optimization.

    Parameters
    ----------
    buyer:
        The buying node's id.
    sellers:
        The selling agents, keyed by node id (in a real deployment these
        run remotely; here they live behind the simulated network).
    network:
        The discrete-event fabric (timing + message accounting).
    plan_generator:
        Buyer plan generator (choose ``mode='idp'`` for IDP-M(2,5)).
    protocol:
        Negotiation protocol; sealed-bid bidding by default.
    buyer_strategy:
        Reservation-value strategy (step B1).
    max_iterations:
        Upper bound on trading rounds (the algorithm usually terminates
        earlier via the no-improvement/no-new-queries rule).
    improvement_epsilon:
        Minimum relative improvement that counts as "better".
    offer_budget:
        Optional cap on distinct offers evaluated across all rounds;
        when hit, the negotiation stops after the current round and the
        result is flagged ``budget_exhausted`` (broker sessions report
        it as a ``degraded`` completion).
    seed_offers:
        Offers injected into the buyer's cross-round offer table before
        round one — the MQO epoch scheduler's amortized
        materialized-intermediate offers.  They compete with (and are
        displaced by) in-session offers under the ordinary valuation
        rule, and participate in awards like any other offer.  The
        default (no seeds) preserves every existing path exactly.
    """

    def __init__(
        self,
        buyer: str,
        sellers: Mapping[str, SellerAgent],
        network: Network,
        plan_generator: BuyerPlanGenerator,
        protocol: NegotiationProtocol | None = None,
        buyer_strategy: BuyerStrategy | None = None,
        valuation: Valuation | None = None,
        max_iterations: int = 6,
        improvement_epsilon: float = 1e-3,
        offer_budget: int | None = None,
        seed_offers: Sequence[Offer] | None = None,
    ):
        self.buyer = buyer
        self.sellers = dict(sellers)
        self.network = network
        self.plan_generator = plan_generator
        self.protocol = protocol or BiddingProtocol()
        self.buyer_strategy = buyer_strategy or BuyerStrategy()
        self.valuation = valuation or WeightedValuation()
        self.max_iterations = max_iterations
        self.improvement_epsilon = improvement_epsilon
        #: Optional cap on distinct offers evaluated across all rounds
        #: (a per-session compute budget under the broker).  ``None``
        #: preserves the unbudgeted historical behavior exactly.
        self.offer_budget = offer_budget
        self.seed_offers: list[Offer] = list(seed_offers or ())
        self.analyser = BuyerPredicatesAnalyser(plan_generator.builder.schemes)

    # ------------------------------------------------------------------
    def optimize(self, query: SPJQuery, initial_value: float | None = None) -> TradingResult:
        """Run the full iterative trading negotiation for *query*."""
        tracer = self.network.tracer
        if not tracer.enabled:
            return self._optimize(query, initial_value)
        self._wire_tracer(tracer)
        mark = len(tracer.records)
        with tracer.span(
            "trade.optimize", "trading", site=self.buyer, query=query.key()
        ) as span:
            result = self._optimize(query, initial_value)
            span.set(
                iterations=result.iterations,
                offers=result.offers_considered,
                found=result.found,
            )
        result.telemetry = RunTelemetry.from_records(tracer.records[mark:])
        result.ledger = NegotiationLedger.from_records(tracer.records[mark:])
        return result

    def _wire_tracer(self, tracer) -> None:
        """Propagate the network tracer into every layer this trader
        drives: plan generator, seller agents, their (possibly shared)
        offer caches, and the protocol's offer farm if one is attached.
        """
        self.plan_generator.tracer = tracer
        farm = getattr(self.protocol, "farm", None)
        if farm is not None:
            farm.tracer = tracer
        seen: set[int] = set()
        for agent in self.sellers.values():
            agent.tracer = tracer
            cache = getattr(agent, "offer_cache", None)
            if cache is not None and id(cache) not in seen:
                seen.add(id(cache))
                cache.tracer = tracer

    def _optimize(
        self, query: SPJQuery, initial_value: float | None = None
    ) -> TradingResult:
        net = self.network
        start_time = net.now
        start_stats = net.stats.snapshot()
        start_cache = self._cache_stats()

        asked: set[str] = set()
        offers: dict[tuple, Offer] = {}
        best: CandidatePlan | None = None
        estimates: dict[str, float] = {}
        if initial_value is not None:
            estimates[query.key()] = initial_value
        # MQO seeds enter the offer table before round one, exactly as
        # if a round-zero solicitation had produced them; in-session
        # offers for the same commodity displace them only by beating
        # them under the ordinary valuation rule.
        for offer in self.seed_offers:
            key = (
                offer.seller,
                offer.query.key(),
                offer.coverage_key(),
                offer.exact_projections,
            )
            offers[key] = offer
            value = self.valuation(offer.properties)
            estimate = estimates.get(offer.query.key())
            if estimate is None or value < estimate:
                estimates[offer.query.key()] = value
            if net.tracer.enabled:
                net.tracer.event(
                    "ledger.offer", "decision", site=self.buyer,
                    offer=offer.offer_id,
                    seller=offer.seller,
                    query=offer.query.key(),
                    coverage=coverage_label(offer.coverage_key()),
                    exact=offer.exact_projections,
                    round=0,
                    money=offer.properties.money,
                    total_time=offer.properties.total_time,
                    value=value,
                    outcome="seeded",
                    **(
                        {"shared": offer.shared_by}
                        if offer.shared_by
                        else {}
                    ),
                )
        queries: list[SPJQuery] = [query]
        trace: list[IterationTrace] = []
        iterations = 0
        resilience = ResilienceSummary()
        budget_exhausted = False

        for round_number in range(1, self.max_iterations + 1):
            queries = [q for q in queries if q.key() not in asked]
            if not queries:
                break
            iterations = round_number
            for q in queries:
                asked.add(q.key())

            # Once per round, outside the hot paths: a disabled tracer
            # hands back the no-op span.
            with net.tracer.span(
                "trade.round", "trading", site=self.buyer,
                round=round_number, queries=len(queries),
            ) as round_span:
                # B1: strategic value estimation.
                reservations: dict[str, float] = {}
                for q in queries:
                    reservation = self.buyer_strategy.reservation(
                        estimates.get(q.key())
                    )
                    if reservation is not None:
                        reservations[q.key()] = reservation
                rfb = RequestForBids(
                    buyer=self.buyer,
                    queries=tuple(queries),
                    reservations=reservations,
                    round_number=round_number,
                )

                # B2/B3: solicit offers over the network.
                result = self.protocol.solicit(
                    net, self.buyer, self.sellers, rfb
                )
                resilience.timeouts_fired += result.timeouts_fired
                resilience.retries += result.retries
                for offer in result.offers:
                    key = (
                        offer.seller,
                        offer.query.key(),
                        offer.coverage_key(),
                        offer.exact_projections,
                    )
                    current = offers.get(key)
                    value = self.valuation(offer.properties)
                    kept = current is None or value < self.valuation(
                        current.properties
                    )
                    if kept:
                        offers[key] = offer
                    if net.tracer.enabled:
                        self._ledger_offer(
                            net, offer, current, value, kept, round_number
                        )
                    # Track per-query market estimates for future
                    # reservations.
                    estimate = estimates.get(offer.query.key())
                    if estimate is None or value < estimate:
                        estimates[offer.query.key()] = value

                # B4: generate candidate plans (buyer-side compute is
                # booked on the buyer's timeline).
                all_offers = list(offers.values())
                plan_result = self.plan_generator.generate(query, all_offers)
                plan_work = (
                    plan_result.enumerated
                    * self.plan_generator.seconds_per_plan
                )
                finish = net.compute(self.buyer, plan_work)
                if net.tracer.enabled:
                    net.tracer.interval(
                        "buyer.compute", "trading", site=self.buyer,
                        sim_start=finish - plan_work, sim_end=finish,
                        work=plan_work, enumerated=plan_result.enumerated,
                    )
                net.sim.schedule_at(finish, lambda: None)
                net.run()

                improved = plan_result.best is not None and (
                    best is None
                    or plan_result.best.value
                    < best.value * (1.0 - self.improvement_epsilon)
                )
                if improved:
                    best = plan_result.best
                    estimates[query.key()] = best.value
                    if net.tracer.enabled:
                        net.tracer.event(
                            "ledger.plan", "decision", site=self.buyer,
                            round=round_number,
                            value=best.value,
                            cost=best.properties.total_time,
                            purchased=sorted(
                                leaf.offer_id for leaf in best.purchased()
                            ),
                        )

                # B5/B6: derive new queries.
                required = self.plan_generator.required_coverage(query)
                derived = self.analyser.derive(query, all_offers, required)
                new_queries = [q for q in derived if q.key() not in asked]

                trace.append(
                    IterationTrace(
                        round_number=round_number,
                        queries_asked=len(queries),
                        offers_received=len(result.offers),
                        best_value=None if best is None else best.value,
                        elapsed=net.now - start_time,
                    )
                )
                round_span.set(
                    offers=len(result.offers),
                    improved=improved,
                    new_queries=len(new_queries),
                )

            # Abort when no plan exists and the analyser has nothing new
            # to ask for (a softened version of the paper's first-round
            # abort: complement queries can still repair an assembly gap
            # in round 2, e.g. when sellers' holdings overlap and no
            # disjoint exact cover existed at round-one granularity).
            if best is None and not new_queries:
                break
            # B7: terminate on no improvement or no new queries.
            if round_number > 1 and not improved and best is not None:
                break
            if not new_queries:
                break
            # Per-session compute budget: stop refining once the offer
            # cap is reached, keeping whatever plan the rounds so far
            # produced.  Checked after the natural-termination rules so
            # a run that converged on its own is never flagged.
            if (
                self.offer_budget is not None
                and len(offers) >= self.offer_budget
            ):
                budget_exhausted = True
                break
            if round_number == self.max_iterations:
                # The cap fires with refined queries still pending —
                # the round budget, not convergence, ended the search.
                budget_exhausted = True
            queries = new_queries

        # B8: strike contracts for the winning offers.
        contracts: list[Contract] = []
        if best is not None:
            winning_ids = {
                leaf.offer_id for leaf in best.purchased()
            }
            winning = [o for o in offers.values() if o.offer_id in winning_ids]
            losing = [o for o in offers.values() if o.offer_id not in winning_ids]
            final = self.protocol.award(
                net, self.buyer, winning, losing, self.sellers
            )
            contracts = [
                Contract(buyer=self.buyer, offer=o, agreed=o.properties)
                for o in final
            ]

        resilience.final_cost = (
            best.properties.total_time if best is not None else None
        )
        return TradingResult(
            query=query,
            best=best,
            contracts=contracts,
            iterations=iterations,
            offers_considered=len(offers),
            optimization_time=net.now - start_time,
            messages=net.stats.delta_since(start_stats),
            trace=trace,
            cache=self._cache_stats().delta_since(start_cache),
            resilience=resilience,
            budget_exhausted=budget_exhausted,
        )

    # ------------------------------------------------------------------
    def _ledger_offer(
        self,
        net: Network,
        offer: Offer,
        current: Offer | None,
        value: float,
        kept: bool,
        round_number: int,
    ) -> None:
        """One decision-ledger record per offer entering the buyer's
        cross-round offer table (only called when tracing is on)."""
        outcome = (
            "kept" if kept and current is None
            else "kept_over" if kept
            else "dominated"
        )
        args = {
            "offer": offer.offer_id,
            "seller": offer.seller,
            "query": offer.query.key(),
            "coverage": coverage_label(offer.coverage_key()),
            "exact": offer.exact_projections,
            "round": round_number,
            "money": offer.properties.money,
            "total_time": offer.properties.total_time,
            "value": value,
            "outcome": outcome,
        }
        if current is not None:
            args["over"] = current.offer_id
        net.tracer.event(
            "ledger.offer", "decision", site=self.buyer, **args
        )

    # ------------------------------------------------------------------
    def _cache_stats(self) -> CacheStats:
        """Aggregate offer-cache counters across the market's sellers.

        Distinct cache objects only — a world-shared cache is counted
        once, not once per seller holding a reference to it.
        """
        total = CacheStats()
        seen: set[int] = set()
        for agent in self.sellers.values():
            cache = getattr(agent, "offer_cache", None)
            if cache is None or id(cache) in seen:
                continue
            seen.add(id(cache))
            total.add(cache.stats)
        return total

    # ------------------------------------------------------------------
    def retrade_after_failure(
        self, query: SPJQuery, failed: Sequence[str] | set[str]
    ) -> TradingResult:
        """Adaptive re-optimization after contracted sellers fail.

        The paper's future-work list includes "the use of contracting to
        model partial/adaptive query optimization techniques"; this is
        the base mechanism: when nodes that won contracts disappear (or
        renege) before delivery, the buyer simply re-runs the trading
        negotiation with those nodes excluded from the market.  Because
        the negotiation never shipped data, re-planning costs only
        another round of messages and pricing work.
        """
        excluded = set(failed)
        saved = self.sellers
        self.sellers = {
            node: agent
            for node, agent in saved.items()
            if node not in excluded
        }
        try:
            return self.optimize(query)
        finally:
            self.sellers = saved
