"""Offer valuation: the administrator-defined weighting aggregation.

Section 3.1: "The buyer ranks the offers received using an
administrator-defined weighting aggregation function and chooses those
that minimize the total cost/value of the query."  A
:class:`WeightedValuation` scores an :class:`AnswerProperties` vector as
a weighted sum of its dimensions (lower is better); penalty weights for
staleness and incompleteness convert those [0,1] qualities into costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trading.commodity import AnswerProperties

__all__ = ["Valuation", "WeightedValuation"]


class Valuation:
    """Interface: map answer properties to a scalar cost (lower = better)."""

    def value(self, properties: AnswerProperties) -> float:
        raise NotImplementedError

    def __call__(self, properties: AnswerProperties) -> float:
        return self.value(properties)


@dataclass(frozen=True)
class WeightedValuation(Valuation):
    """Linear weighting over the answer-property dimensions.

    The default is the paper's: pure total execution/delivery time.
    ``money_weight`` prices one currency unit in seconds-equivalent, and
    the penalty weights charge for each point of staleness or missing
    data.
    """

    time_weight: float = 1.0
    first_row_weight: float = 0.0
    money_weight: float = 0.0
    staleness_penalty: float = 0.0
    incompleteness_penalty: float = 0.0

    def value(self, properties: AnswerProperties) -> float:
        return (
            self.time_weight * properties.total_time
            + self.first_row_weight * properties.first_row_time
            + self.money_weight * properties.money
            + self.staleness_penalty * (1.0 - properties.freshness)
            + self.incompleteness_penalty * (1.0 - properties.completeness)
        )


#: The paper's default valuation: cost = total execution time.
TIME_ONLY = WeightedValuation()
