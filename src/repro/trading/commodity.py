"""The traded commodities: query-answers and their multi-dimensional value.

Section 3.1: "seller nodes make offers which contain their estimated
properties of the answer of these queries ... the total time required to
execute and transmit the results of the query back to the buyer, the time
required to find the first row of the answer, the average rate of
retrieved rows per second, the total rows of the answer, the freshness of
the data, the completeness of the data, and possibly a charged amount."
:class:`AnswerProperties` carries exactly that vector.
"""

from __future__ import annotations

import contextvars
import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping

from repro.sql.query import SPJQuery

__all__ = [
    "AnswerProperties",
    "CoverageKey",
    "Offer",
    "RequestForBids",
    "coverage_key",
    "coverage_label",
    "next_offer_id",
    "offer_id_scope",
]

_offer_ids = itertools.count(1)

#: Execution-context override of the offer-id counter.  The broker runs
#: each trading session inside its own :mod:`contextvars` context with a
#: private counter installed here, so concurrent sessions mint the same
#: id sequence a serial run would — offer ids appear in plan provenance
#: (``Purchased ... offer#N``), so id assignment must not interleave
#: across sessions.  Default ``None`` falls through to the module
#: global, keeping every existing single-session path byte-identical.
_scoped_offer_ids: contextvars.ContextVar[Iterator[int] | None] = (
    contextvars.ContextVar("repro_offer_ids", default=None)
)


def next_offer_id() -> int:
    """Mint the next offer id from the active counter.

    Indirect on purpose: tests (and the parallel offer farm) reseed
    ``commodity._offer_ids`` for reproducible ids, so callers must read
    the global at call time rather than bind the counter object once.
    A context-local counter installed via :func:`offer_id_scope` takes
    precedence (broker sessions).
    """
    scoped = _scoped_offer_ids.get()
    if scoped is not None:
        return next(scoped)
    return next(_offer_ids)


@contextmanager
def offer_id_scope(start: int = 1) -> Iterator[None]:
    """Give the current execution context its own offer-id counter.

    Everything minted inside the ``with`` block — including asyncio
    callbacks scheduled from it, which snapshot the caller's context —
    draws from a private ``count(start)``; the module-global counter is
    untouched.  Used by the broker to isolate concurrent sessions.
    """
    token = _scoped_offer_ids.set(itertools.count(start))
    try:
        yield
    finally:
        _scoped_offer_ids.reset(token)


CoverageKey = tuple[tuple[str, tuple[int, ...]], ...]


def coverage_key(coverage: Mapping[str, frozenset[int]]) -> CoverageKey:
    """Canonical, hashable form of a fragment-coverage mapping.

    The single source of truth for coverage identity — the seller's
    dedupe, the trader's cross-round offer table, the buyer DP's entry
    keys, and the offer cache all key on this shape.
    """
    return tuple(
        (alias, tuple(sorted(fids))) for alias, fids in sorted(coverage.items())
    )


def coverage_label(key: CoverageKey) -> str:
    """Compact string form of a coverage key: ``"r0:0,1;r1:2"``.

    Used by the decision-ledger events, where coverage identity must be
    a JSON scalar (stable across runs and worker counts).
    """
    return ";".join(
        f"{alias}:{','.join(str(f) for f in fids)}" for alias, fids in key
    )


@dataclass(frozen=True)
class AnswerProperties:
    """Seller-estimated properties of one query-answer."""

    total_time: float  # seconds to produce + ship the full answer
    rows: float  # estimated answer cardinality
    first_row_time: float = 0.0  # seconds until the first row arrives
    rows_per_second: float = 0.0  # delivery rate once flowing
    freshness: float = 1.0  # 1 = live data, <1 = staleness fraction
    completeness: float = 1.0  # 1 = full answer for the offered query
    money: float = 0.0  # charged amount (currency units)

    def __post_init__(self) -> None:
        if self.total_time < 0 or self.rows < 0:
            raise ValueError("negative answer properties")
        if not (0.0 <= self.freshness <= 1.0):
            raise ValueError("freshness must be in [0, 1]")
        if not (0.0 <= self.completeness <= 1.0):
            raise ValueError("completeness must be in [0, 1]")

    def with_money(self, money: float) -> "AnswerProperties":
        return replace(self, money=money)

    def scaled_time(self, factor: float) -> "AnswerProperties":
        return replace(
            self,
            total_time=self.total_time * factor,
            first_row_time=self.first_row_time * factor,
        )


@dataclass(frozen=True)
class Offer:
    """A seller's binding offer for one query-answer.

    ``coverage`` states exactly which fragments of which relation (by
    query alias) the answer ranges over — the buyer plan generator's raw
    material.  ``exact_projections`` distinguishes answers carrying the
    original projections (possibly partial aggregates that union
    losslessly) from ``SELECT *`` parts the buyer must post-process.
    ``true_cost`` is the seller's private valuation (kept for surplus
    accounting in the experiments; a real competitive seller would not
    publish it).
    """

    seller: str
    query: SPJQuery
    coverage: Mapping[str, frozenset[int]]
    properties: AnswerProperties
    exact_projections: bool
    request_key: str  # canonical key of the RFB query this answers
    offer_id: int = field(default_factory=next_offer_id)
    true_cost: float = 0.0
    #: Number of buyer sessions sharing this commodity's price (MQO
    #: amortization); ``0`` for an ordinary single-buyer offer.
    shared_by: int = 0

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset(self.coverage)

    def coverage_key(self) -> CoverageKey:
        """Cached canonical coverage identity (see :func:`coverage_key`).

        Offers are frozen, so the sorted tuple is computed once; dedupe
        passes that previously rebuilt it per comparison now reuse it.
        """
        memo = self.__dict__.get("_coverage_key_memo")
        if memo is None:
            memo = coverage_key(self.coverage)
            object.__setattr__(self, "_coverage_key_memo", memo)
        return memo

    def dedupe_key(self) -> tuple:
        """Identity for "same commodity" dedupe: one offer should survive
        per (request, offered query, coverage, shape) regardless of which
        seller round or pricing pass produced it."""
        return (
            self.request_key,
            self.query.key(),
            self.coverage_key(),
            self.exact_projections,
        )

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_coverage_key_memo", None)
        return state

    def describe(self) -> str:
        cov = "; ".join(
            f"{alias}:{sorted(fids)}"
            for alias, fids in sorted(self.coverage.items())
        )
        base = (
            f"offer#{self.offer_id} {self.seller} [{cov}] "
            f"t={self.properties.total_time:.4f}s rows={self.properties.rows:.0f}"
            f" money={self.properties.money:.4f}"
        )
        if self.shared_by:
            base += f" shared_by={self.shared_by}"
        return base


@dataclass(frozen=True)
class RequestForBids:
    """An RFB: the buyer's query set with strategic value estimates.

    ``reservations`` maps each query's canonical key to the buyer's
    estimated value (reservation price) for it — the paper's step B1
    "the buyer strategically estimates the values it should ask for the
    queries in set Q".

    ``shared_counts`` marks an *interned* RFB (issued by the MQO epoch
    scheduler): it maps a query's canonical key to the number of buyer
    sessions sharing that commodity this epoch, so sellers can stamp
    their pricing lineage with the amortization factor.  Empty for
    every ordinary single-session RFB.
    """

    buyer: str
    queries: tuple[SPJQuery, ...]
    reservations: Mapping[str, float] = field(default_factory=dict)
    round_number: int = 0
    shared_counts: Mapping[str, int] = field(default_factory=dict)

    def reservation_for(self, query: SPJQuery) -> float | None:
        return self.reservations.get(query.key())

    def shared_count_for(self, request_key: str) -> int:
        return self.shared_counts.get(request_key, 0)
