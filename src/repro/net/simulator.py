"""Deterministic discrete-event simulator with message/compute accounting.

Two layers:

* :class:`Simulator` — a bare event loop: schedule callables at absolute
  simulated times, run until idle.  Ties are broken by insertion order,
  so runs are fully deterministic.  :meth:`Simulator.schedule_cancellable`
  returns a :class:`TimerHandle` (negotiation deadlines use it); cancelled
  timers are lazily discarded when popped, without advancing the clock.
* :class:`Network` — the federation fabric on top: registered node
  handlers, message delivery with latency + size/bandwidth delay,
  per-node compute serialization (a node that accepts work is busy until
  it finishes; concurrent work at *different* nodes overlaps), and
  complete :class:`NetworkStats`.  An optional fault injector (see
  :mod:`repro.faults`) intercepts deliveries; with none installed the
  delivery path is byte-identical to a fault-free fabric.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.cost.model import CostModel
from repro.net.clock import Clock, TimerHandle
from repro.net.messages import Message, MessageKind
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

__all__ = ["Simulator", "Network", "NetworkStats", "TimerHandle"]

Handler = Callable[["Network", Message], None]


class Simulator(Clock):
    """Minimal deterministic discrete-event loop (:class:`Clock`)."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[
            tuple[float, int, Callable[[], None], TimerHandle | None]
        ] = []
        self._seq = 0

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* at ``now + delay`` (delay must be non-negative)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, None))
        self._seq += 1

    def schedule_cancellable(
        self, delay: float, fn: Callable[[], None]
    ) -> TimerHandle:
        """Like :meth:`schedule`, but returns a cancellable handle."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        handle = TimerHandle()
        heapq.heappush(self._queue, (self.now + delay, self._seq, fn, handle))
        self._seq += 1
        return handle

    def schedule_at(
        self, when: float, fn: Callable[[], None], allow_past: bool = False
    ) -> None:
        """Run *fn* at absolute time *when*.

        Scheduling strictly before ``now`` is a bug in the caller's time
        arithmetic and raises unless ``allow_past=True`` is passed, in
        which case the event is clamped to ``now`` (the historical
        behavior, which silently hid such bugs).  Clamped events fire in
        insertion order: each lands at ``(now, next seq)``, so two past
        times scheduled in sequence fire in the order they were
        scheduled, regardless of which claimed the earlier time.
        (:class:`~repro.net.clock.AsyncClock` always clamps — under wall
        time an already-due absolute deadline is normal, not a bug.)
        """
        if when < self.now and not allow_past:
            raise ValueError(
                f"schedule_at({when!r}) is in the past (now={self.now!r}); "
                "pass allow_past=True to clamp to now"
            )
        self.schedule(max(0.0, when - self.now), fn)

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Process events in time order until the queue drains.

        Raises ``RuntimeError`` once *max_events* events have been
        processed and more remain — the budget is checked before each
        handler runs, so at most ``max_events`` handlers ever execute.
        Cancelled timers are skipped without charging the budget or
        advancing the clock.
        """
        processed = 0
        while self._queue:
            when, _seq, fn, handle = heapq.heappop(self._queue)
            if handle is not None and handle.cancelled:
                continue
            if processed >= max_events:
                raise RuntimeError("simulation did not quiesce")
            self.now = max(self.now, when)
            if handle is not None:
                handle.fired = True
            fn()
            processed += 1
        return self.now

    def pending_events(self) -> int:
        """Events that will actually fire.

        Cancelled timers are deleted *lazily* — their heap entries stay
        queued until popped — so ``len(self._queue)`` over-counts after
        any cancellation.  This accessor filters them out; it is what
        queue-size reporting (e.g. the tracer's ``sim.pending_events``
        gauge) must use.
        """
        return sum(
            1
            for _when, _seq, _fn, handle in self._queue
            if handle is None or not handle.cancelled
        )

    @property
    def pending(self) -> int:
        return self.pending_events()


@dataclass
class NetworkStats:
    """Counters the experiments report.

    ``dropped``/``duplicated``/``retried`` only move when a fault
    injector (or a retrying protocol) is active; a fault-free run keeps
    them at zero.
    """

    messages: int = 0
    bytes: int = 0
    by_kind: dict[MessageKind, int] = field(default_factory=dict)
    dropped: int = 0
    duplicated: int = 0
    retried: int = 0

    def record(self, message: Message, size: int) -> None:
        self.messages += 1
        self.bytes += size
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1

    def count(self, kind: MessageKind) -> int:
        return self.by_kind.get(kind, 0)

    @property
    def by_type(self) -> "Counter[str]":
        """Per-message-type breakdown keyed by kind *name* (``"rfb"``,
        ``"offer"``, ...), as a :class:`collections.Counter` so absent
        types read as zero.  Derived from the same ``record`` path as
        the totals, so it always sums to :attr:`messages`.
        """
        return Counter(
            {kind.value: count for kind, count in self.by_kind.items()}
        )

    def describe_types(self) -> str:
        """``"rfb=16 offer=14 ..."`` — render of the by-type breakdown."""
        return " ".join(
            f"{name}={count}" for name, count in sorted(self.by_type.items())
        )

    def snapshot(self) -> "NetworkStats":
        return NetworkStats(
            self.messages,
            self.bytes,
            dict(self.by_kind),
            self.dropped,
            self.duplicated,
            self.retried,
        )

    def delta_since(self, earlier: "NetworkStats") -> "NetworkStats":
        by_kind = {
            kind: count - earlier.by_kind.get(kind, 0)
            for kind, count in self.by_kind.items()
        }
        return NetworkStats(
            self.messages - earlier.messages,
            self.bytes - earlier.bytes,
            {k: v for k, v in by_kind.items() if v},
            self.dropped - earlier.dropped,
            self.duplicated - earlier.duplicated,
            self.retried - earlier.retried,
        )


class Network:
    """Message fabric + per-node compute serialization.

    Per-node compute: :meth:`compute` books *seconds* of work on a node,
    starting no earlier than the node's current ``busy_until``, and
    returns the completion time.  Handlers use it to model local
    optimization/pricing effort; replies scheduled at the returned time
    therefore reflect queueing at a busy seller while independent sellers
    overlap — the source of QT's flat scaling in federation size.

    Fault interception: :meth:`install_faults` plugs a
    :class:`~repro.faults.injector.FaultInjector` into the delivery path.
    Every send is still *recorded* (it left the sender), but the injector
    decides the delivery times — zero, one, or several — modelling drops,
    duplicates, delay spikes, and crashed recipients.  With no injector
    installed the path is exactly the historical one.
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        clock: Clock | None = None,
    ):
        self.cost_model = cost_model or CostModel()
        # ``sim`` kept as the attribute name for compatibility; it is any
        # Clock — the deterministic Simulator by default, an AsyncClock
        # when the broker serves this network over a real event loop.
        self.sim: Clock = clock if clock is not None else Simulator()
        self.stats = NetworkStats()
        self.fault_injector: "FaultInjector | None" = None
        self.tracer: Tracer = NULL_TRACER
        self._handlers: dict[str, Handler] = {}
        self._busy_until: dict[str, float] = {}
        # Monotone per-session Lamport counter for causal message ids.
        # Only consumed when a tracer is attached; sends happen inside
        # handler bodies whose order both clocks pin down identically
        # (the (when, seq) tie-break), so assigned ids are deterministic.
        self._next_causal_id = 0

    # -- membership --------------------------------------------------------
    def register(self, node: str, handler: Handler) -> None:
        if node in self._handlers:
            raise ValueError(f"node {node!r} already registered")
        self._handlers[node] = handler

    def unregister(self, node: str) -> None:
        self._handlers.pop(node, None)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._handlers))

    # -- faults ------------------------------------------------------------
    def install_faults(self, injector: "FaultInjector | None") -> None:
        """Install (or remove, with ``None``) the fault injector."""
        self.fault_injector = injector

    # -- observability ----------------------------------------------------
    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Attach a tracer (or detach with ``None``).

        The tracer's simulated clock is bound to this network's
        simulator; the :class:`~repro.trading.trader.QueryTrader`
        propagates the same tracer into every layer it drives.
        """
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_sim(self.sim)

    # -- causality --------------------------------------------------------
    def next_causal_id(self) -> int:
        """Mint the next causal id (messages, timeouts, re-issues)."""
        mid = self._next_causal_id
        self._next_causal_id = mid + 1
        return mid

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.sim.now

    def busy_until(self, node: str) -> float:
        return self._busy_until.get(node, 0.0)

    def compute(self, node: str, seconds: float) -> float:
        """Book *seconds* of serialized work at *node*; returns finish time."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        start = max(self.now, self.busy_until(node))
        finish = start + seconds
        self._busy_until[node] = finish
        return finish

    # -- messaging -----------------------------------------------------------
    def message_delay(self, message: Message) -> float:
        size = (
            message.size_bytes
            if message.size_bytes is not None
            else self.cost_model.network.control_message_bytes
        )
        return (
            self.cost_model.network.latency
            + size / self.cost_model.network.bandwidth
        )

    def send(self, message: Message, earliest: float | None = None) -> None:
        """Deliver *message* to its recipient's handler.

        *earliest* (absolute simulated time) delays the send until e.g.
        the sender finished computing its reply; delivery adds the
        network delay on top.
        """
        if message.recipient not in self._handlers:
            raise KeyError(f"unknown recipient {message.recipient!r}")
        size = (
            message.size_bytes
            if message.size_bytes is not None
            else self.cost_model.network.control_message_bytes
        )
        self.stats.record(message, size)
        if self.tracer.enabled:
            # Stamp the causal metadata: a fresh Lamport id plus the
            # causal parent — the message (or timeout) whose handler is
            # sending.  Message is a frozen dataclass; ``frozen`` only
            # overrides ``__setattr__``, so the object-level setter
            # mutates the stamps in place without a copy.
            object.__setattr__(message, "mid", self.next_causal_id())
            object.__setattr__(message, "parent", self.tracer.cause)
            self.tracer.event(
                "msg.send", "net", site=message.sender,
                **message.trace_args(size),
            )
        depart = max(self.now, earliest if earliest is not None else self.now)
        if self.fault_injector is None:
            delay = self.message_delay(message)
            self._schedule_delivery(message, depart + delay, lat=delay)
            return
        # The injector hands back each surviving copy's *transit delay*;
        # scheduling at ``depart + lat`` and stamping that same ``lat``
        # keeps the simulator's and the critical-path replay's float
        # arithmetic identical, so the replay is bitwise-exact.
        for copy, lat in enumerate(
            self.fault_injector.intercept(self, message, depart)
        ):
            self._schedule_delivery(
                message, depart + lat, copy=copy, lat=lat
            )

    def _schedule_delivery(
        self,
        message: Message,
        deliver_at: float,
        copy: int = 0,
        lat: float = 0.0,
    ) -> None:
        def _deliver() -> None:
            tracer = self.tracer
            if tracer.enabled:
                # ``lat`` is the transit delay this copy experienced —
                # deterministic (cost model + seeded fault draws), which
                # is what lets the causal critical path be reconstructed
                # identically under wall-clock serving, where recorded
                # timestamps are not simulated times.
                tracer.event(
                    "msg.deliver", "net", site=message.recipient,
                    kind=message.kind.value, sender=message.sender,
                    mid=message.mid, copy=copy, lat=lat,
                )
            handler = self._handlers.get(message.recipient)
            if handler is None:
                return
            if not tracer.enabled:
                handler(self, message)
                return
            # Every send issued from inside the handler is causally a
            # child of this delivery; restore the previous cause so
            # nested synchronous deliveries (there are none today, but
            # the invariant is cheap) unwind correctly.
            prior = tracer.cause
            tracer.cause = message.mid
            try:
                handler(self, message)
            finally:
                tracer.cause = prior

        self.sim.schedule_at(deliver_at, _deliver)

    def broadcast(
        self,
        sender: str,
        recipients: Mapping[str, Handler] | list[str],
        kind: MessageKind,
        payload,
        earliest: float | None = None,
    ) -> int:
        """Send one message per recipient; returns how many were sent."""
        count = 0
        for recipient in recipients:
            if recipient == sender:
                continue
            self.send(
                Message(kind, sender, recipient, payload), earliest=earliest
            )
            count += 1
        return count

    def run(self) -> float:
        if self.tracer.enabled:
            # Sampled with the accurate accessor: cancelled (lazily
            # deleted) timer entries are excluded from the gauge.
            self.tracer.gauge(
                "sim.pending_events", self.sim.pending_events()
            )
        return self.sim.run_until_idle()
