"""Message vocabulary of the trading negotiation protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["MessageKind", "Message", "NO_CAUSE"]


class MessageKind(Enum):
    """The message types exchanged during query trading.

    ``RFB``/``OFFER``/``AWARD`` implement bidding (the paper's default
    protocol); ``COUNTER_OFFER``/``ACCEPT``/``REJECT`` support bargaining;
    ``STATS_REQUEST``/``STATS_RESPONSE`` model the catalog/statistics
    synchronization that *traditional* distributed optimizers require
    before they can optimize anything (QT needs none).
    """

    RFB = "rfb"
    OFFER = "offer"
    NO_OFFER = "no_offer"
    AWARD = "award"
    REJECT = "reject"
    VOID = "void"  # buyer rescinds an awarded contract (seller crashed)
    COUNTER_OFFER = "counter_offer"
    ACCEPT = "accept"
    STATS_REQUEST = "stats_request"
    STATS_RESPONSE = "stats_response"
    DATA = "data"


#: Causal ids of unstamped messages (tracing disabled) and of root
#: messages with no causal parent.
NO_CAUSE = -1


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    ``size_bytes`` drives the bandwidth component of delivery delay;
    control messages default to the cost model's control message size.

    ``mid``/``parent`` are the causal-tracing stamps: when a tracer is
    attached, :meth:`~repro.net.simulator.Network.send` assigns ``mid``
    from the session's monotone Lamport counter and ``parent`` from the
    message (or timeout) whose handler triggered this send.  Both stay
    ``-1`` (:data:`NO_CAUSE`) with tracing off — the stamps exist only
    so the causal DAG (:mod:`repro.obs.causal`) can be rebuilt from
    trace records; no protocol logic may branch on them.
    """

    kind: MessageKind
    sender: str
    recipient: str
    payload: Any = None
    size_bytes: int | None = None
    mid: int = NO_CAUSE
    parent: int = NO_CAUSE

    def trace_args(self, size: int) -> dict[str, Any]:
        """Small, JSON-able payload summary for trace events.

        Never serializes the payload itself (offers and queries are
        heavy); only counts what is countable — the number of queries
        in an RFB, the number of items in an offer list.
        """
        args: dict[str, Any] = {
            "kind": self.kind.value,
            "to": self.recipient,
            "bytes": size,
        }
        if self.mid != NO_CAUSE:
            args["mid"] = self.mid
            args["parent"] = self.parent
        payload = self.payload
        if payload is None:
            return args
        queries = getattr(payload, "queries", None)
        if queries is not None:
            args["queries"] = len(queries)
        elif isinstance(payload, (list, tuple)):
            args["items"] = len(payload)
        return args
