"""Message vocabulary of the trading negotiation protocols."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["MessageKind", "Message"]


class MessageKind(Enum):
    """The message types exchanged during query trading.

    ``RFB``/``OFFER``/``AWARD`` implement bidding (the paper's default
    protocol); ``COUNTER_OFFER``/``ACCEPT``/``REJECT`` support bargaining;
    ``STATS_REQUEST``/``STATS_RESPONSE`` model the catalog/statistics
    synchronization that *traditional* distributed optimizers require
    before they can optimize anything (QT needs none).
    """

    RFB = "rfb"
    OFFER = "offer"
    NO_OFFER = "no_offer"
    AWARD = "award"
    REJECT = "reject"
    VOID = "void"  # buyer rescinds an awarded contract (seller crashed)
    COUNTER_OFFER = "counter_offer"
    ACCEPT = "accept"
    STATS_REQUEST = "stats_request"
    STATS_RESPONSE = "stats_response"
    DATA = "data"


@dataclass(frozen=True, slots=True)
class Message:
    """One network message.

    ``size_bytes`` drives the bandwidth component of delivery delay;
    control messages default to the cost model's control message size.
    """

    kind: MessageKind
    sender: str
    recipient: str
    payload: Any = None
    size_bytes: int | None = None

    def trace_args(self, size: int) -> dict[str, Any]:
        """Small, JSON-able payload summary for trace events.

        Never serializes the payload itself (offers and queries are
        heavy); only counts what is countable — the number of queries
        in an RFB, the number of items in an offer list.
        """
        args: dict[str, Any] = {
            "kind": self.kind.value,
            "to": self.recipient,
            "bytes": size,
        }
        payload = self.payload
        if payload is None:
            return args
        queries = getattr(payload, "queries", None)
        if queries is not None:
            args["queries"] = len(queries)
        elif isinstance(payload, (list, tuple)):
            args["items"] = len(payload)
        return args
