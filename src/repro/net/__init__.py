"""Discrete-event network simulation substrate.

The paper evaluates QT in a *simulated* federation of autonomous DBMSs
(its testbed is not public); this package provides the deterministic
discrete-event equivalent: messages experience latency plus
size/bandwidth delay, per-node computation serializes on that node while
distinct nodes work concurrently, and every message/byte is accounted so
the experiments can report exchanged-message counts exactly.
"""

from repro.net.clock import AsyncClock, Clock
from repro.net.messages import Message, MessageKind
from repro.net.simulator import Network, NetworkStats, Simulator, TimerHandle

__all__ = [
    "AsyncClock",
    "Clock",
    "Message",
    "MessageKind",
    "Network",
    "NetworkStats",
    "Simulator",
    "TimerHandle",
]
