"""The clock abstraction behind the trading protocols.

The protocol state machines (:mod:`repro.trading.protocols`,
:mod:`repro.trading.resilience`) never talk to a clock implementation
directly — they schedule callbacks, arm cancellable deadline timers, and
drive the loop to quiescence through the :class:`Clock` interface.  Two
implementations exist:

* :class:`repro.net.simulator.Simulator` — the deterministic
  discrete-event loop every test, experiment, and benchmark runs under.
  Virtual time jumps instantly between events; ties break by insertion
  order, so runs are exactly reproducible.
* :class:`AsyncClock` — the same interface over a *running*
  :mod:`asyncio` event loop and real wall time, used by the federation
  broker (:mod:`repro.broker`) for long-lived serving.  Deadlines,
  retry backoff, and fault timers become genuine ``call_later`` timers.

:class:`AsyncClock` keeps its **own** ``(when, seq)`` heap and arms a
single asyncio alarm for the earliest deadline.  Events that come due
together are dispatched in insertion order — the same tie-break rule as
the simulator — instead of inheriting asyncio's unspecified ordering for
equal-deadline callbacks.  That is what lets one protocol codebase
produce identical negotiation outcomes under both clocks.

Thread model: one :class:`AsyncClock` instance belongs to one trading
session.  The session's worker thread schedules work and blocks in
:meth:`AsyncClock.run_until_idle`; all callbacks execute on the shared
asyncio loop thread.  The internal lock only guards the heap — callbacks
themselves are never run under it.

Causal tracing rides on this ordering guarantee: the network's Lamport
message ids (:meth:`repro.net.simulator.Network.next_causal_id`) are
minted inside handler bodies, and because equally-due callbacks dispatch
in insertion order under *both* clocks, a given seed mints the same id
for the same message under the simulator and under wall time.  The
causal DAG (:mod:`repro.obs.causal`) additionally sorts by ``(mid,
simulated time)`` rather than record order, so wall-time jitter between
*unequal* deadlines cannot perturb its byte-identical output either.
"""

from __future__ import annotations

import heapq
import threading
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

__all__ = ["Clock", "TimerHandle", "AsyncClock"]


class TimerHandle:
    """Handle of a cancellable timer.

    ``cancel()`` is idempotent and returns whether it took effect: a
    timer that already fired (or was already cancelled) cannot be
    cancelled again.  Cancellation is *lazy* — the heap entry stays put
    and is discarded when popped, costing neither a budget slot nor a
    clock advance.
    """

    __slots__ = ("cancelled", "fired")

    def __init__(self) -> None:
        self.cancelled = False
        self.fired = False

    @property
    def active(self) -> bool:
        return not (self.cancelled or self.fired)

    def cancel(self) -> bool:
        if not self.active:
            return False
        self.cancelled = True
        return True


class Clock:
    """What a protocol needs from time: schedule, deadline, quiesce.

    Implementations must provide a monotonically non-decreasing ``now``
    (seconds since the clock's origin) plus the scheduling methods
    below.  ``run_until_idle`` blocks until no non-cancelled event
    remains queued and returns the final ``now``.
    """

    now: float

    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        raise NotImplementedError

    def schedule_cancellable(
        self, delay: float, fn: Callable[[], None]
    ) -> TimerHandle:
        raise NotImplementedError

    def schedule_at(
        self, when: float, fn: Callable[[], None], allow_past: bool = False
    ) -> None:
        raise NotImplementedError

    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        raise NotImplementedError

    def pending_events(self) -> int:
        raise NotImplementedError

    @property
    def pending(self) -> int:
        return self.pending_events()


class _AsyncTimerHandle(TimerHandle):
    """A :class:`TimerHandle` that re-arms its clock on cancellation.

    Under the simulator a cancelled entry is simply skipped when popped;
    under wall time a cancelled *earliest* deadline must not keep
    ``run_until_idle`` waiting it out, so cancellation pokes the loop to
    drop dead heads and re-arm (or declare idle) immediately.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: "AsyncClock") -> None:
        super().__init__()
        self._clock = clock

    def cancel(self) -> bool:
        took = super().cancel()
        if took:
            self._clock._poke()
        return took


class AsyncClock(Clock):
    """:class:`Clock` over a running :mod:`asyncio` event loop.

    ``now`` is ``loop.time()`` rebased to zero at construction, so
    protocol time arithmetic (deadlines relative to session start) works
    unchanged.  Unlike the simulator, :meth:`schedule_at` never raises
    on past deadlines: wall time advances while the caller computes, so
    an already-due absolute time is *normal* here, and is clamped to
    "now" (firing in insertion order among equally-due events).

    ``max_events`` is accepted for interface parity but not enforced —
    under wall time a runaway session is bounded by ``quiesce_timeout``
    (seconds of *real* time ``run_until_idle`` is willing to wait),
    not by an event count.
    """

    def __init__(
        self, loop: "asyncio.AbstractEventLoop", quiesce_timeout: float = 60.0
    ) -> None:
        self._loop = loop
        self._origin = loop.time()
        self.quiesce_timeout = quiesce_timeout
        self._queue: list[
            tuple[float, int, Callable[[], None], TimerHandle | None]
        ] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._idle = threading.Event()
        self._idle.set()
        self._alarm: "asyncio.TimerHandle | None" = None
        self._error: BaseException | None = None
        self.events_processed = 0

    # -- time --------------------------------------------------------------
    @property
    def now(self) -> float:  # type: ignore[override]
        return self._loop.time() - self._origin

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._push(self.now + delay, fn, None)

    def schedule_cancellable(
        self, delay: float, fn: Callable[[], None]
    ) -> TimerHandle:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        handle = _AsyncTimerHandle(self)
        self._push(self.now + delay, fn, handle)
        return handle

    def schedule_at(
        self, when: float, fn: Callable[[], None], allow_past: bool = True
    ) -> None:
        # Past deadlines are clamped to now regardless of allow_past:
        # under wall time they indicate elapsed real time, not a bug in
        # the caller's time arithmetic.
        self._push(max(when, self.now), fn, None)

    def _push(
        self, when: float, fn: Callable[[], None], handle: TimerHandle | None
    ) -> None:
        with self._lock:
            heapq.heappush(self._queue, (when, self._seq, fn, handle))
            self._seq += 1
            self._idle.clear()
        self._poke()

    # -- loop-side machinery ----------------------------------------------
    def _poke(self) -> None:
        """Ask the loop thread to re-examine the heap (thread-safe)."""
        try:
            self._loop.call_soon_threadsafe(self._rearm)
        except RuntimeError:
            pass  # loop already closed during shutdown

    def _rearm(self) -> None:
        """Arm one alarm for the earliest live deadline (loop thread)."""
        with self._lock:
            while self._queue:
                head_handle = self._queue[0][3]
                if head_handle is not None and head_handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                break
            if self._alarm is not None:
                self._alarm.cancel()
                self._alarm = None
            if not self._queue:
                self._idle.set()
                return
            delay = max(0.0, self._queue[0][0] - self.now)
        self._alarm = self._loop.call_later(delay, self._dispatch)

    def _dispatch(self) -> None:
        """Run every due event in ``(when, seq)`` order (loop thread)."""
        self._alarm = None
        while True:
            with self._lock:
                while self._queue:
                    head_handle = self._queue[0][3]
                    if head_handle is not None and head_handle.cancelled:
                        heapq.heappop(self._queue)
                        continue
                    break
                if not self._queue or self._queue[0][0] > self.now + 1e-9:
                    break
                _when, _seq, fn, handle = heapq.heappop(self._queue)
            if handle is not None:
                handle.fired = True
            try:
                fn()
            except BaseException as exc:  # surface in run_until_idle
                if self._error is None:
                    self._error = exc
            self.events_processed += 1
        self._rearm()

    # -- draining ----------------------------------------------------------
    def run_until_idle(self, max_events: int = 10_000_000) -> float:
        """Block the calling (session) thread until the queue drains."""
        if not self._loop.is_running():
            raise RuntimeError("AsyncClock requires a running event loop")
        if not self._idle.wait(self.quiesce_timeout):
            raise RuntimeError(
                f"async clock did not quiesce within "
                f"{self.quiesce_timeout:.1f}s "
                f"({self.pending_events()} events pending)"
            )
        if self._error is not None:
            error, self._error = self._error, None
            raise error
        return self.now

    def pending_events(self) -> int:
        with self._lock:
            return sum(
                1
                for _when, _seq, _fn, handle in self._queue
                if handle is None or not handle.cancelled
            )
