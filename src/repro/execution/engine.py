"""Plan execution and the centralized reference evaluator.

Two entry points:

* :func:`evaluate_query` — naive, obviously-correct evaluation of an
  :class:`~repro.sql.query.SPJQuery` over fragment tables (optionally
  restricted to a fragment coverage).  It is the ground truth the tests
  compare against, and it also models what a *seller* ships when one of
  its offers is executed.
* :class:`PlanExecutor` — walks a physical plan produced by the QT buyer
  (or a baseline optimizer), executing purchased leaves via the reference
  evaluator and the glue operators (joins, unions, aggregation, sort)
  directly, returning a :class:`ResultSet`.

Together they close the loop: ``PlanExecutor(plan).run() ==
evaluate_query(original_query)`` is the correctness invariant of the
whole trading framework.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.execution.tables import ResultSet, Table, materialize_catalog
from repro.optimizer.plans import (
    FragmentScan,
    GroupAgg,
    HashJoin,
    NestedLoopJoin,
    Plan,
    Purchased,
    Sort,
    Transfer,
    Union,
)
from repro.sql.expr import Column, Comparison, Expr, TRUE
from repro.sql.query import Aggregate, SPJQuery, Star
from repro.sql.schema import Relation

__all__ = ["FederationData", "evaluate_query", "PlanExecutor"]

Row = dict[Column, object]


@dataclass
class FederationData:
    """Materialized fragment content plus schema access."""

    catalog: Catalog
    tables: dict[tuple[str, int], Table]

    @staticmethod
    def build(catalog: Catalog, seed: int = 0) -> "FederationData":
        return FederationData(catalog, materialize_catalog(catalog, seed))

    def fragment_rows(
        self, relation: str, fragment_ids: Iterable[int], alias: str
    ) -> list[Row]:
        rows: list[Row] = []
        for fid in sorted(fragment_ids):
            rows.extend(self.tables[(relation, fid)].rows_as_dicts(alias))
        return rows

    def relation_rows(self, relation: str, alias: str) -> list[Row]:
        scheme = self.catalog.scheme(relation)
        return self.fragment_rows(relation, scheme.fragment_ids, alias)


# ----------------------------------------------------------------------
# Reference evaluator
# ----------------------------------------------------------------------
def evaluate_query(
    query: SPJQuery,
    data: FederationData,
    coverage: Mapping[str, frozenset[int]] | None = None,
) -> ResultSet:
    """Evaluate *query* naively over the federation's (global) data.

    *coverage* restricts each alias to a fragment subset — exactly the
    semantics of a seller's offer.  Joins use hashing on equi-conjuncts
    where possible and fall back to filtering the cross product, so the
    implementation stays small and auditable.
    """
    rows = _join_relations(query, data, coverage)
    rows = [r for r in rows if query.predicate.evaluate(r)]
    return _project(query, rows, data.catalog.schemas)


def _join_relations(
    query: SPJQuery,
    data: FederationData,
    coverage: Mapping[str, frozenset[int]] | None,
) -> list[Row]:
    current: list[Row] | None = None
    joined_aliases: set[str] = set()
    join_conjuncts = [
        c
        for c in query.predicate.conjuncts()
        if isinstance(c, Comparison) and c.is_join and c.op == "="
    ]
    for ref in query.relations:
        if coverage is not None and ref.alias in coverage:
            rows = data.fragment_rows(ref.name, coverage[ref.alias], ref.alias)
        else:
            rows = data.relation_rows(ref.name, ref.alias)
        # Pre-filter with this alias's own selections (perf nicety).
        selection = query.selection_on(ref.alias)
        if selection is not TRUE:
            rows = [r for r in rows if selection.evaluate(r)]
        if current is None:
            current = rows
            joined_aliases.add(ref.alias)
            continue
        # Find an equi conjunct linking the new alias to what's joined.
        link = None
        for conjunct in join_conjuncts:
            tables = conjunct.tables()
            if ref.alias in tables and (tables - {ref.alias}) <= joined_aliases:
                link = conjunct
                break
        current = _hash_join(current, rows, link)
        joined_aliases.add(ref.alias)
    return current if current is not None else []


def _hash_join(
    left: list[Row], right: list[Row], conjunct: Comparison | None
) -> list[Row]:
    if conjunct is None:
        return [{**l, **r} for l in left for r in right]
    assert isinstance(conjunct.left, Column) and isinstance(
        conjunct.right, Column
    )
    left_col, right_col = conjunct.left, conjunct.right
    if left and left_col not in left[0]:
        left_col, right_col = right_col, left_col
    index: dict[object, list[Row]] = {}
    for row in right:
        index.setdefault(row[right_col], []).append(row)
    out: list[Row] = []
    for row in left:
        for match in index.get(row[left_col], ()):
            out.append({**row, **match})
    return out


def _expand_star(
    query: SPJQuery, schemas: Mapping[str, Relation]
) -> tuple[Column, ...]:
    cols: list[Column] = []
    for ref in query.relations:
        for attribute in schemas[ref.name].attributes:
            cols.append(Column(ref.alias, attribute.name))
    return tuple(cols)


def _item_name(item) -> str:
    if isinstance(item, Column):
        return f"{item.table}.{item.name}"
    if isinstance(item, Aggregate):
        return item.alias or item.sql()
    raise TypeError(f"unexpected projection item {item!r}")


def _project(
    query: SPJQuery, rows: list[Row], schemas: Mapping[str, Relation]
) -> ResultSet:
    if query.has_aggregates or query.group_by:
        return _aggregate_rows(query, rows)
    if query.is_star:
        cols = _expand_star(query, schemas)
    else:
        cols = tuple(query.projections)  # type: ignore[arg-type]
    header = tuple(_item_name(c) for c in cols)
    out = [tuple(r[c] for c in cols) for r in rows]
    if query.distinct:
        out = list(dict.fromkeys(out))
    result = ResultSet(header, out)
    if query.order_by:
        result = _order(result, query.order_by, cols)
    return result


def _aggregate_rows(query: SPJQuery, rows: list[Row]) -> ResultSet:
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(row[c] for c in query.group_by)
        groups.setdefault(key, []).append(row)
    if not query.group_by and not groups:
        groups[()] = []
    header = tuple(_item_name(item) for item in query.projections)
    out: list[tuple] = []
    for key, members in groups.items():
        key_by_col = dict(zip(query.group_by, key))
        record = []
        for item in query.projections:
            if isinstance(item, Column):
                record.append(key_by_col[item])
            elif isinstance(item, Aggregate):
                record.append(_compute_aggregate(item, members))
            else:
                raise TypeError("SELECT * with aggregates is not valid")
        out.append(tuple(record))
    result = ResultSet(header, out)
    if query.order_by:
        result = _order(result, query.order_by, tuple(query.projections))
    return result


def _compute_aggregate(item: Aggregate, rows: list[Row]):
    if item.func == "count":
        if item.arg is None:
            return len(rows)
        return sum(1 for r in rows if r[item.arg] is not None)
    values = [r[item.arg] for r in rows]
    if not values:
        return None
    if item.func == "sum":
        return sum(values)
    if item.func == "min":
        return min(values)
    if item.func == "max":
        return max(values)
    if item.func == "avg":
        return sum(values) / len(values)
    raise ValueError(f"unknown aggregate {item.func}")


def _order(
    result: ResultSet, keys: Sequence[Column], items: Sequence
) -> ResultSet:
    positions = []
    for key in keys:
        for i, item in enumerate(items):
            if item == key:
                positions.append(i)
                break
        else:
            raise ValueError(f"ORDER BY column {key.sql()} not in output")
    rows = sorted(result.rows, key=lambda r: tuple(r[p] for p in positions))
    return ResultSet(result.columns, rows, ordered=True)


# ----------------------------------------------------------------------
# Plan executor
# ----------------------------------------------------------------------
class PlanExecutor:
    """Executes a physical plan against materialized federation data.

    Raw sub-results are row dictionaries; purchased *final* answers (and
    the finished plan) are :class:`ResultSet` values.  The executor is
    deliberately independent of the cost model — it checks plan
    *semantics*, not timing.

    *observer*, when given, is called as ``observer(plan_node,
    observed_rows)`` after each node's output is materialized — the hook
    the q-error observatory uses to compare the optimizer's estimated
    cardinality (``plan.rows``) against reality without the engine
    knowing anything about metrics.
    """

    def __init__(
        self, data: FederationData, query: SPJQuery, observer=None
    ):
        self.data = data
        self.query = query
        self.schemas = data.catalog.schemas
        self.observer = observer

    def run(self, plan: Plan) -> ResultSet:
        value = self._execute(plan)
        if isinstance(value, ResultSet):
            if self.query.order_by and not value.ordered:
                items = self._final_items()
                value = _order(value, self.query.order_by, items)
            return value
        # Raw rows at the top: apply the original projections.
        return _project(self.query, value, self.schemas)

    def _final_items(self) -> tuple:
        if self.query.is_star:
            return _expand_star(self.query, self.schemas)
        return tuple(self.query.projections)

    # ------------------------------------------------------------------
    def _execute(self, plan: Plan):
        value = self._execute_node(plan)
        if self.observer is not None:
            observed = len(value.rows) if isinstance(value, ResultSet) else len(value)
            self.observer(plan, observed)
        return value

    def _execute_node(self, plan: Plan):
        if isinstance(plan, Purchased):
            return self._execute_purchased(plan)
        if isinstance(plan, FragmentScan):
            rows = self.data.fragment_rows(
                plan.ref.name, plan.fragment_ids, plan.ref.alias
            )
            if plan.predicate is not TRUE:
                rows = [r for r in rows if plan.predicate.evaluate(r)]
            return rows
        if isinstance(plan, (HashJoin, NestedLoopJoin)):
            left = self._execute(plan.left)
            right = self._execute(plan.right)
            if isinstance(left, ResultSet) or isinstance(right, ResultSet):
                raise TypeError("cannot join final answers")
            out = []
            condition = plan.condition
            equi = None
            for conjunct in condition.conjuncts():
                if (
                    isinstance(conjunct, Comparison)
                    and conjunct.is_join
                    and conjunct.op == "="
                ):
                    equi = conjunct
                    break
            joined = _hash_join(left, right, equi)
            for row in joined:
                if condition is TRUE or condition.evaluate(row):
                    out.append(row)
            return out
        if isinstance(plan, Union):
            parts = [self._execute(child) for child in plan.inputs]
            if parts and isinstance(parts[0], ResultSet):
                rows: list[tuple] = []
                for part in parts:
                    rows.extend(part.rows)
                if plan.distinct:
                    rows = list(dict.fromkeys(rows))
                return ResultSet(parts[0].columns, rows)
            merged: list[Row] = []
            for part in parts:
                merged.extend(part)
            return merged
        if isinstance(plan, GroupAgg):
            rows = self._execute(plan.child)
            if isinstance(rows, ResultSet):
                raise TypeError("cannot re-aggregate a final answer")
            return _aggregate_rows(self.query, rows)
        if isinstance(plan, Sort):
            value = self._execute(plan.child)
            if isinstance(value, ResultSet):
                return _order(value, plan.keys, self._final_items())
            return value  # raw rows: ordering applied at projection time
        if isinstance(plan, Transfer):
            return self._execute(plan.child)
        raise TypeError(f"cannot execute plan node {type(plan).__name__}")

    def _execute_purchased(self, plan: Purchased):
        coverage = {
            alias: frozenset(fids) for alias, fids in plan.coverage.items()
        }
        if plan.query.is_star:
            rows = _join_relations(plan.query, self.data, coverage)
            return [
                r for r in rows if plan.query.predicate.evaluate(r)
            ]
        return evaluate_query(plan.query, self.data, coverage)
