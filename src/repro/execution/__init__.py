"""In-memory execution substrate.

QT optimizes without moving data; this package exists to *validate* the
plans it produces: it materializes synthetic fragment data consistent
with the catalog, executes distributed plans (purchased answers + buyer
glue operators), and provides a naive centralized reference evaluator so
tests can assert that every traded plan computes exactly the same answer
a single-site database would.
"""

from repro.execution.tables import Table, ResultSet, materialize_catalog
from repro.execution.engine import (
    FederationData,
    PlanExecutor,
    evaluate_query,
)

__all__ = [
    "Table",
    "ResultSet",
    "materialize_catalog",
    "FederationData",
    "PlanExecutor",
    "evaluate_query",
]
