"""Tables, result sets, and synthetic data materialization.

A :class:`Table` stores one relation fragment column-wise in numpy
arrays.  :func:`materialize_catalog` generates deterministic synthetic
content for every fragment registered in a catalog, shaped to satisfy the
fragment predicates (list partitions on ``part``, range partitions on
``id`` — the conventions of :mod:`repro.catalog.datagen`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.catalog.catalog import Catalog
from repro.sql.expr import Column, Expr, TRUE
from repro.sql.schema import Fragment, Relation

__all__ = ["Table", "ResultSet", "materialize_catalog"]

_NUMPY_DTYPES = {"int": np.int64, "float": np.float64}


@dataclass
class Table:
    """Column-oriented storage for (a fragment of) one relation."""

    relation: Relation
    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {len(v) for v in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError("ragged columns")
        expected = {a.name for a in self.relation.attributes}
        if set(self.columns) != expected:
            raise ValueError(
                f"columns {sorted(self.columns)} do not match schema "
                f"{sorted(expected)}"
            )

    @property
    def row_count(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    @staticmethod
    def from_rows(
        relation: Relation, rows: Sequence[Mapping[str, object]]
    ) -> "Table":
        columns: dict[str, np.ndarray] = {}
        for attribute in relation.attributes:
            values = [row[attribute.name] for row in rows]
            dtype = _NUMPY_DTYPES.get(attribute.dtype)
            columns[attribute.name] = (
                np.array(values, dtype=dtype)
                if dtype is not None
                else np.array(values, dtype=object)
            )
        return Table(relation, columns)

    def rows_as_dicts(self, alias: str) -> list[dict[Column, object]]:
        """Rows keyed by :class:`Column` (alias-qualified) for evaluation."""
        names = self.relation.attribute_names
        cols = [Column(alias, n) for n in names]
        arrays = [self.columns[n] for n in names]
        out = []
        for i in range(self.row_count):
            out.append(
                {c: _to_python(a[i]) for c, a in zip(cols, arrays)}
            )
        return out

    def concat(self, other: "Table") -> "Table":
        if other.relation.name != self.relation.name:
            raise ValueError("cannot concat different relations")
        merged = {
            name: np.concatenate([self.columns[name], other.columns[name]])
            for name in self.columns
        }
        return Table(self.relation, merged)


def _to_python(value):
    """numpy scalar -> native python (so Expr.evaluate comparisons work)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


@dataclass
class ResultSet:
    """A final query answer: ordered header + row tuples."""

    columns: tuple[str, ...]
    rows: list[tuple]
    ordered: bool = False

    def sorted_rows(self) -> list[tuple]:
        return sorted(self.rows, key=lambda r: tuple(repr(v) for v in r))

    def canonical(self) -> list[tuple]:
        """Rows for order-insensitive comparison (floats rounded)."""
        out = []
        for row in self.rows:
            out.append(
                tuple(
                    round(v, 6) if isinstance(v, float) else v for v in row
                )
            )
        return sorted(out, key=lambda r: tuple(repr(v) for v in r))

    def equals_unordered(self, other: "ResultSet") -> bool:
        return self.canonical() == other.canonical()


RowFactory = "Callable[[Fragment, int, random.Random], dict[str, object]]"


def materialize_catalog(
    catalog: Catalog,
    seed: int = 0,
    row_factories: Mapping[str, object] | None = None,
) -> dict[tuple[str, int], Table]:
    """Deterministic synthetic content for every fragment in *catalog*.

    Returns ``(relation, fragment_id) -> Table``.  Every replica of a
    fragment shares the same content (the tables are shared objects).
    Row values follow the datagen conventions: dense ``id``, uniform
    ``ref0``/``ref1`` foreign keys, ``part`` equal to the fragment's list
    value, ``cat`` in [0, 10), ``val`` in [0, 1).

    *row_factories* overrides generation per relation with a callable
    ``(fragment, index_within_fragment, rng) -> row dict`` — custom
    scenarios (e.g. the telecom schema) use this to produce rows
    consistent with their own fragment predicates.
    """
    rng = random.Random(seed)
    row_factories = row_factories or {}
    tables: dict[tuple[str, int], Table] = {}
    for name in catalog.relation_names():
        relation = catalog.relation(name)
        scheme = catalog.scheme(name)
        total = max(scheme.total_rows, len(scheme.fragments))
        factory = row_factories.get(name)
        next_id = 0
        for fragment in scheme.fragments:
            rows = []
            for k in range(fragment.row_count):
                if factory is not None:
                    row = factory(fragment, k, rng)  # type: ignore[operator]
                    _force_fragment_membership(row, fragment)
                else:
                    row = _synthesize_row(
                        relation, fragment, next_id, total, rng
                    )
                rows.append(row)
                next_id += 1
            tables[(name, fragment.fragment_id)] = Table.from_rows(
                relation, rows
            )
    return tables


def _synthesize_row(
    relation: Relation,
    fragment: Fragment,
    row_id: int,
    total_rows: int,
    rng: random.Random,
) -> dict[str, object]:
    """One row satisfying *fragment*'s predicate (datagen conventions)."""
    from repro.catalog.datagen import CATEGORY_CARDINALITY

    row: dict[str, object] = {}
    for attribute in relation.attributes:
        if attribute.name == "id":
            row["id"] = row_id
        elif attribute.name.startswith("ref"):
            row[attribute.name] = rng.randrange(total_rows)
        elif attribute.name == "part":
            row["part"] = fragment.fragment_id
        elif attribute.name == "cat":
            row["cat"] = rng.randrange(CATEGORY_CARDINALITY)
        elif attribute.dtype == "float":
            row[attribute.name] = rng.random()
        elif attribute.dtype == "str":
            row[attribute.name] = f"v{rng.randrange(total_rows)}"
        else:
            row[attribute.name] = rng.randrange(total_rows)
    _force_fragment_membership(row, fragment)
    return row


def _force_fragment_membership(
    row: dict[str, object], fragment: Fragment
) -> None:
    """Ensure *row* satisfies the fragment predicate.

    The datagen conventions already guarantee membership for ``part``
    list-partitions; for ``id`` range-partitions the dense id assignment
    matches the boundaries, so this is a (cheap) verification that raises
    when a custom scheme violates its own predicate.
    """
    if fragment.predicate is TRUE:
        return
    binding = {
        Column(fragment.relation, name): value for name, value in row.items()
    }
    try:
        ok = fragment.predicate.evaluate(binding)
    except KeyError:
        return  # predicate over attributes we did not synthesize
    if not ok:
        raise ValueError(
            f"synthesized row violates fragment predicate "
            f"{fragment.predicate.sql()}: {row}"
        )
