"""E5 — exchanged messages per optimizer.

QT pays RFB/offer/award traffic for autonomy; traditional optimizers pay catalog statistics synchronization; Mariposa's single round is the floor.
"""

from repro.bench.experiments import e5_message_accounting


def test_e5_messages(benchmark, report):
    table = benchmark.pedantic(e5_message_accounting, rounds=1, iterations=1)
    report(table)
    assert table.rows
