"""Benchmark-suite plumbing: every experiment's table is printed and also
persisted under ``benchmarks/results/`` so the numbers survive pytest's
output capture."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Save an ExperimentTable under benchmarks/results/ and print it."""

    def _report(table):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.render()
        (RESULTS_DIR / f"{table.experiment}.txt").write_text(text + "\n")
        print("\n" + text)
        return table

    return _report
