"""E13 — market-based load balancing across repeated trades.

Offers reflect the sellers' current workload, so when won contracts raise
a node's load, the next trade drifts to idle replica holders — a
decentralized load balancer emerging from pricing alone.
"""

from repro.bench.experiments import e13_load_balancing


def test_e13_load_balancing(benchmark, report):
    table = benchmark.pedantic(e13_load_balancing, rounds=1, iterations=1)
    report(table)
    off, on = table.rows
    assert on[1] >= off[1]  # feedback spreads contracts over more sellers
