"""Serving benchmark: the federation broker under a bursty workload.

Drives the real thing end to end — a :class:`~repro.broker.
BrokerService` behind its stdlib HTTP server — with the bursty
multi-tenant arrival schedule from
:func:`repro.workload.build_bursty_workload`: several tenants fire
whole bursts of queries nearly at once, idle, then fire again, which
stresses admission and queueing far more than a smooth rate would.

Before any number is trusted, determinism is asserted: the plans the
concurrent broker produces (8 worker threads, shared offer cache) must
be byte-identical to a serial broker's (1 worker thread) over the same
workload.  Then two serving runs are measured:

* ``sim`` clock — every session drives a private deterministic
  simulator, so the run measures pure broker throughput (qps) and
  per-session service latency (p50/p99) with zero wall-time waits;
* ``async`` clock — sessions share one real asyncio loop, so protocol
  deadlines elapse in wall time and the latencies include genuine
  event-loop scheduling.

Writes ``BENCH_serving.json`` at the repository root and appends a
``serving`` row to the bench history; ``repro bench-check`` gates on
``all_sessions_completed``.

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
import urllib.request

from repro.bench.envelope import bench_envelope, history
from repro.broker import AdmissionConfig, BrokerService, SessionBudget, start_server
from repro.workload import BurstConfig, build_bursty_workload

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_serving.json"

#: The broker world every run serves (matches the workload's schema).
WORLD = dict(nodes=8, n_relations=6, rows=10_000, fragments=2, replicas=2, seed=7)

#: Arrival times are in "schedule seconds"; the bench replays them at
#: this fraction of real time so a full run stays minutes, not hours.
ARRIVAL_SCALE = 0.2


def _http(url: str, payload: dict | None = None) -> tuple[int, dict]:
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method="POST" if data else "GET",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


def _plan_signature(result: dict) -> tuple:
    """What must not change between serial and concurrent serving."""
    return (
        result.get("found"),
        result.get("plan_cost"),
        result.get("plan"),
        tuple(result.get("contracts") or ()),
    )


def run_workload(
    arrivals, clock: str, max_concurrent: int, scale: float = ARRIVAL_SCALE
) -> dict:
    """Serve the whole schedule over HTTP; returns metrics + results."""
    service = BrokerService(
        world_config=WORLD,
        clock=clock,
        admission=AdmissionConfig(
            max_concurrent=max_concurrent,
            queue_limit=len(arrivals) + 1,  # measure service, not shedding
            budget=SessionBudget(rounds=6),
        ),
    )
    server = start_server(service)
    try:
        started = time.perf_counter()
        session_ids = []
        for arrival in arrivals:
            due = started + arrival.arrival * scale
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            status, body = _http(
                f"{server.url}/sessions",
                {"sql": arrival.query.sql(), "tenant": arrival.tenant},
            )
            assert status == 202, f"submit failed: {status} {body}"
            session_ids.append(body["session"])
        assert service.drain(timeout=300.0), "sessions did not drain"
        elapsed = time.perf_counter() - started
        results = {}
        for session_id in session_ids:
            status, body = _http(f"{server.url}/sessions/{session_id}/result")
            assert status == 200, f"result failed: {status} {body}"
            results[session_id] = body
        _, metrics = _http(f"{server.url}/metrics")
    finally:
        server.shutdown_broker()
    states = [body["state"] for body in results.values()]
    return {
        "clock": clock,
        "max_concurrent": max_concurrent,
        "sessions": len(session_ids),
        "elapsed_s": round(elapsed, 3),
        "qps": round(len(session_ids) / elapsed, 3),
        "p50_ms": metrics["latency_ms"]["p50"],
        "p99_ms": metrics["latency_ms"]["p99"],
        "states": {state: states.count(state) for state in sorted(set(states))},
        "all_completed": all(state == "completed" for state in states),
        "results": results,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workload, single sim run + async run",
    )
    args = parser.parse_args()

    config = (
        BurstConfig(tenants=2, bursts=2, burst_size=2, seed=11)
        if args.quick
        else BurstConfig(tenants=4, bursts=3, burst_size=4, seed=11)
    )
    arrivals = build_bursty_workload(config)
    print(
        f"workload: {len(arrivals)} queries, {config.tenants} tenants, "
        f"{config.bursts} bursts of {config.burst_size}"
    )

    # Determinism first: concurrent serving must match serial serving
    # plan for plan before throughput means anything.  Arrivals are
    # replayed with scale=0 (back to back) so this is pure scheduling.
    serial = run_workload(arrivals, "sim", max_concurrent=1, scale=0.0)
    concurrent = run_workload(arrivals, "sim", max_concurrent=8, scale=0.0)
    serial_sigs = sorted(
        _plan_signature(r) for r in serial["results"].values()
    )
    concurrent_sigs = sorted(
        _plan_signature(r) for r in concurrent["results"].values()
    )
    assert serial_sigs == concurrent_sigs, (
        "concurrent broker plans diverged from serial broker plans"
    )
    print(
        f"determinism: {len(arrivals)} concurrent plans identical to serial"
    )

    # The measured runs: bursty arrivals at real (scaled) offsets.
    sim_row = run_workload(arrivals, "sim", max_concurrent=8)
    async_row = run_workload(arrivals, "async", max_concurrent=8)
    for row in (sim_row, async_row):
        print(
            f"{row['clock']:>5} clock: {row['qps']} qps  "
            f"p50={row['p50_ms']}ms p99={row['p99_ms']}ms  "
            f"states={row['states']}"
        )
        row.pop("results")  # plans live in the session API, not the bench

    all_completed = bool(
        serial["all_completed"]
        and concurrent["all_completed"]
        and sim_row["all_completed"]
        and async_row["all_completed"]
    )
    assert all_completed, "a session finished in a non-completed state"

    payload = {
        **bench_envelope(),
        "description": (
            "Broker serving a bursty multi-tenant workload over HTTP: "
            "qps and p50/p99 session latency under sim and async "
            "clocks (concurrent plans asserted identical to serial)."
        ),
        "quick": args.quick,
        "world": WORLD,
        "workload": {
            "queries": len(arrivals),
            "tenants": config.tenants,
            "bursts": config.bursts,
            "burst_size": config.burst_size,
            "arrival_scale": ARRIVAL_SCALE,
            "seed": config.seed,
        },
        "determinism": {
            "serial_vs_concurrent_plans_identical": True,
            "sessions_compared": len(arrivals),
        },
        "sim": sim_row,
        "async": async_row,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    history(REPO_ROOT).append(
        "serving",
        {
            "qps": sim_row["qps"],
            "p50_ms": sim_row["p50_ms"],
            "p99_ms": sim_row["p99_ms"],
            "async_p99_ms": async_row["p99_ms"],
            "sessions": len(arrivals),
            "all_sessions_completed": 1 if all_completed else 0,
        },
    )
    print(f"wrote {OUTPUT.name}")


if __name__ == "__main__":
    main()
