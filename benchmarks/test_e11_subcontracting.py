"""E11 — subcontracting (the extension Section 3.5 defers).

In a federation where each node holds only one relation, vanilla QT must
ship every base fragment to the buyer; subcontracting sellers buy the
missing relation from peers, pre-join near the data, and sell the
combined answer — cheaper plans at the price of more messages.
"""

from repro.bench.experiments import e11_subcontracting


def test_e11_subcontracting(benchmark, report):
    table = benchmark.pedantic(e11_subcontracting, rounds=1, iterations=1)
    report(table)
    assert table.rows
