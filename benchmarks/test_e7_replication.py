"""E7 — replication degree.

More replicas mean more competing sellers per fragment; on heterogeneous nodes the winning offers get cheaper.
"""

from repro.bench.experiments import e7_replication_degree


def test_e7_replication(benchmark, report):
    table = benchmark.pedantic(e7_replication_degree, rounds=1, iterations=1)
    report(table)
    assert table.rows
