"""E8 — cooperative vs. competitive strategies and protocols.

Valuation includes money, so pricing strategies matter; adaptive sellers bid margins down over repeated trades.
"""

from repro.bench.experiments import e8_strategies


def test_e8_strategies(benchmark, report):
    table = benchmark.pedantic(e8_strategies, rounds=1, iterations=1)
    report(table)
    assert table.rows
