"""Wall-clock benchmark: bitmask enumeration core vs the frozenset code.

Times the seller-side System-R DP (4–10 joins) and the buyer plan
generator against the reference (pre-rewire) implementations kept in
:mod:`repro.optimizer.reference`, asserting the plans are identical
before trusting the numbers.  Writes ``BENCH_enumeration.json`` at the
repository root.

Run with::

    PYTHONPATH=src python benchmarks/bench_wallclock.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.bench.envelope import bench_envelope, history
from repro.bench.harness import build_world
from repro.optimizer.dp import DynamicProgrammingOptimizer
from repro.optimizer.reference import (
    ReferenceDynamicProgrammingOptimizer,
    reference_buyer_generate,
)
from repro.trading import BuyerPlanGenerator, RequestForBids, SellerAgent
from repro.workload import chain_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_enumeration.json"
REPEATS = 5


def best_of_pair(fn_a, fn_b, repeats: int = REPEATS):
    """Best wall-clock of *repeats* runs each, interleaved.

    Alternating the two implementations per repeat keeps allocator and
    CPU-cache warmth from favoring whichever runs second.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_a = fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, result_a, best_b, result_b


def bench_seller_dp(world) -> list[dict]:
    site = next(n for n in world.nodes if n != "client")
    new = DynamicProgrammingOptimizer(world.builder)
    ref = ReferenceDynamicProgrammingOptimizer(world.builder)
    rows = []
    for joins in range(4, 11):
        query = chain_query(joins + 1)
        new_s, new_result, seed_s, ref_result = best_of_pair(
            lambda: new.optimize(query, site),
            lambda: ref.optimize(query, site),
        )
        assert new_result.plan.explain() == ref_result.plan.explain()
        assert new_result.enumerated == ref_result.enumerated
        rows.append(
            {
                "case": f"seller-dp-{joins}-joins",
                "joins": joins,
                "enumerated": new_result.enumerated,
                "seed_s": seed_s,
                "new_s": new_s,
                "speedup": seed_s / new_s,
            }
        )
    return rows


def bench_buyer_plangen(world, joins: int = 5) -> dict:
    query = chain_query(joins + 1)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    offers = []
    for node in world.nodes:
        if node == "client":
            continue
        agent = SellerAgent(world.catalog.local(node), world.builder)
        node_offers, _work = agent.prepare_offers(rfb)
        offers.extend(node_offers)
    generator = BuyerPlanGenerator(world.builder, "client", mode="dp")
    new_s, new_result, seed_s, ref_result = best_of_pair(
        lambda: generator.generate(query, offers),
        lambda: reference_buyer_generate(generator, query, offers),
    )
    assert new_result.enumerated == ref_result.enumerated
    assert (new_result.best is None) == (ref_result.best is None)
    if new_result.best is not None:
        assert new_result.best.plan.explain() == ref_result.best.plan.explain()
    return {
        "case": f"buyer-plangen-{joins}-joins",
        "joins": joins,
        "offers": len(offers),
        "enumerated": new_result.enumerated,
        "seed_s": seed_s,
        "new_s": new_s,
        "speedup": seed_s / new_s,
    }


def main() -> None:
    world = build_world(nodes=8, n_relations=11)
    cases = bench_seller_dp(world)
    cases.append(bench_buyer_plangen(world))
    eight_join = next(c for c in cases if c["case"] == "seller-dp-8-joins")
    envelope = bench_envelope()
    payload = {
        **envelope,
        "description": (
            "Wall-clock comparison: bitmask JoinGraph enumeration vs the "
            "reference frozenset implementation (plans asserted identical)."
        ),
        "repeats_best_of": REPEATS,
        "cases": cases,
        "eight_join_speedup": eight_join["speedup"],
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    history(REPO_ROOT).append(
        "enumeration",
        {"eight_join_speedup": eight_join["speedup"]},
        envelope=envelope,
    )
    for case in cases:
        print(
            f"{case['case']:>24}: seed {case['seed_s'] * 1e3:8.2f} ms  "
            f"new {case['new_s'] * 1e3:8.2f} ms  "
            f"speedup {case['speedup']:5.1f}x"
        )
    print(f"wrote {OUTPUT}")
    if eight_join["speedup"] < 3.0:
        raise SystemExit(
            f"8-join speedup {eight_join['speedup']:.2f}x below the 3x target"
        )


if __name__ == "__main__":
    main()
