"""E2 — plan quality (cost / best-known) vs. number of joins.

Full-knowledge DP is the quality reference; QT should stay within a small constant factor of it.
"""

from repro.bench.experiments import e2_plan_quality_vs_joins


def test_e2_plan_quality_vs_joins(benchmark, report):
    table = benchmark.pedantic(e2_plan_quality_vs_joins, rounds=1, iterations=1)
    report(table)
    assert table.rows
