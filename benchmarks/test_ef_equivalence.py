"""Zero-fault equivalence across the experiment parameter space.

The fault subsystem's first guarantee: with no fault plan (or a null
plan) the injector hook and the deadline machinery are invisible — the
optimizer produces byte-identical plans, costs, and message counts.
This sweep checks that over worlds spanning the E1–E11 axes (joins,
federation size, fragmentation, replication, plan-generator mode); the
fast tier-1 variant in ``tests/test_faults.py`` covers one config.
"""

import itertools

import repro.trading.commodity as commodity
from repro.bench.harness import build_world, run_qt, run_qt_faulty
from repro.faults import FaultPlan
from repro.workload import chain_query

# (nodes, n_relations, fragments, replicas, joins, mode) — one axis
# varied at a time around the E1–E11 defaults.
CONFIGS = [
    (12, 7, 4, 2, 4, "dp"),     # E1/E2 midpoint
    (12, 7, 4, 2, 6, "idp"),    # wider query, IDP generator
    (25, 4, 5, 2, 3, "idp"),    # E3 federation size
    (16, 3, 8, 2, 2, "dp"),     # E4 fine fragmentation
    (12, 4, 4, 1, 3, "dp"),     # E7 no replication
    (12, 4, 4, 3, 3, "dp"),     # E7 triple replication
]


def _measure(world, query, mode, faulty: bool, tracer=None):
    # Offer ids come from a module-global counter; reset it so the two
    # runs mint identical ids and explain() strings are comparable.
    commodity._offer_ids = itertools.count(1)
    if faulty:
        m = run_qt_faulty(
            world, query, FaultPlan(), timeout=None,
            mode=mode, offer_cache=None, use_offer_cache=False,
            tracer=tracer,
        )
    else:
        m = run_qt(
            world, query, mode=mode, offer_cache=None,
            use_offer_cache=False, tracer=tracer,
        )
    return (
        m.found, m.plan_cost, m.optimization_time, m.messages,
        m.offers, m.iterations,
    )


def _pinpoint(world, query, mode) -> str:
    """Re-run both sides traced and locate the first divergent record.

    Trace streams are deterministic, so structurally diffing them names
    the exact record where the null fault plan perturbed the run —
    far more actionable than two mismatched signature tuples.
    """
    from repro.obs import Tracer, diff_records

    tracer_a, tracer_b = Tracer(), Tracer()
    _measure(world, query, mode, faulty=False, tracer=tracer_a)
    _measure(world, query, mode, faulty=True, tracer=tracer_b)
    return diff_records(tracer_a.records, tracer_b.records).render()


def test_zero_fault_causal_byte_identity():
    """A null fault plan is invisible to the causal layer too.

    The injector path computes each copy's transit delay and the
    network stamps it verbatim as the delivery's ``lat``, so a clean
    link produces the exact ``message_delay`` bits the fault-free path
    stamps — the causal DAG and critical-path decomposition are
    byte-identical, and both replays reconcile exactly.
    """
    from repro.obs import CausalDag, CriticalPath, Tracer

    nodes, n_relations, fragments, replicas, joins, mode = CONFIGS[0]
    world = build_world(
        nodes=nodes, n_relations=n_relations, fragments=fragments,
        replicas=replicas, seed=7,
    )
    query = chain_query(joins, selection_cat=3)
    tracer_plain, tracer_null = Tracer(), Tracer()
    plain = _measure(world, query, mode, faulty=False, tracer=tracer_plain)
    nulled = _measure(world, query, mode, faulty=True, tracer=tracer_null)
    assert plain == nulled
    dag_plain = CausalDag.from_records(tracer_plain.records)
    dag_null = CausalDag.from_records(tracer_null.records)
    assert dag_plain.to_json() == dag_null.to_json(), _pinpoint(
        world, query, mode
    )
    crit_plain = CriticalPath.from_records(tracer_plain.records)
    crit_null = CriticalPath.from_records(tracer_null.records)
    assert crit_plain.to_json() == crit_null.to_json()
    assert crit_plain.reconciles() and crit_null.reconciles()
    assert crit_plain.total == plain[2]  # == optimization_time


def test_zero_fault_equivalence_sweep():
    for nodes, n_relations, fragments, replicas, joins, mode in CONFIGS:
        world = build_world(
            nodes=nodes, n_relations=n_relations, fragments=fragments,
            replicas=replicas, seed=7,
        )
        query = chain_query(joins, selection_cat=3)
        plain = _measure(world, query, mode, faulty=False)
        nulled = _measure(world, query, mode, faulty=True)
        assert plain == nulled, (
            f"null fault plan perturbed config {(nodes, n_relations, fragments, replicas, joins, mode)}: "
            f"{plain} != {nulled}\n"
            + _pinpoint(world, query, mode)
        )
