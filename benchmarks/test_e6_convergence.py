"""E6 — iterative convergence of the trading algorithm.

The buyer predicates analyser derives new tradable queries each round; the best plan value is non-increasing and typically converges within 2–3 rounds.
"""

from repro.bench.experiments import e6_iteration_convergence


def test_e6_convergence(benchmark, report):
    table = benchmark.pedantic(e6_iteration_convergence, rounds=1, iterations=1)
    report(table)
    assert table.rows
