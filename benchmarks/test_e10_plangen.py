"""E10 — buyer plan generator DP vs IDP-M(2,5).

The paper's Section 3.6 variant: IDP prunes two-way entries to the best five, trading a little quality headroom for plan-generation time.
"""

from repro.bench.experiments import e10_plan_generator_variants


def test_e10_plangen(benchmark, report):
    table = benchmark.pedantic(e10_plan_generator_variants, rounds=1, iterations=1)
    report(table)
    assert table.rows
