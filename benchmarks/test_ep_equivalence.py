"""Parallel-vs-serial byte-equivalence across the experiment axes.

The parallel trading engine's contract (``docs/PARALLEL.md``): with any
worker count the negotiation produces *byte-identical* results — same
plans (down to the offer ids in ``explain()``), same costs, same
simulated optimization time, same message counts, same offer-cache
hit/miss/eviction statistics.  This sweep checks workers ∈ {1, 4} over
worlds spanning the E1–E11 axes (joins, federation size, fragmentation,
replication, plan-generator mode), plus a faulty run under the example
fault plan (drops, duplicates, and deadline machinery engaged).  The
fast tier-1 variant in ``tests/test_parallel.py`` covers one config.
"""

import itertools
import pathlib

import repro.trading.commodity as commodity
from repro.bench.harness import build_world, run_qt, run_qt_faulty
from repro.faults import FaultPlan
from repro.trading import OfferCache
from repro.workload import chain_query

FAULT_PLAN = (
    pathlib.Path(__file__).resolve().parent.parent
    / "examples"
    / "fault_plan.json"
)

# (nodes, n_relations, fragments, replicas, joins, mode) — one axis
# varied at a time around the E1–E11 defaults.
CONFIGS = [
    (12, 7, 4, 2, 4, "dp"),     # E1/E2 midpoint
    (12, 7, 4, 2, 6, "idp"),    # wider query, IDP generator
    (25, 4, 5, 2, 3, "idp"),    # E3 federation size
    (16, 3, 8, 2, 2, "dp"),     # E4 fine fragmentation
    (12, 4, 4, 1, 3, "dp"),     # E7 no replication
    (12, 4, 4, 3, 3, "dp"),     # E7 triple replication
]

COMPARED_FIELDS = (
    # The label too: experiment tables print it, so a worker-dependent
    # name (e.g. the farm protocol leaking a "+bidding" suffix) breaks
    # stdout byte-identity even when every number matches.
    "optimizer",
    "found",
    "plan_cost",
    "optimization_time",
    "messages",
    "iterations",
    "offers",
    "payments",
    "cache_hits",
    "cache_misses",
    "plan_explain",
)

FAULT_FIELDS = COMPARED_FIELDS + (
    "dropped",
    "duplicated",
    "retried",
    "timeouts",
    "renegotiations",
)


def _signature(measurement, fields=COMPARED_FIELDS):
    return {field: getattr(measurement, field) for field in fields}


def _measure(config, workers, tracer=None):
    nodes, n_relations, fragments, replicas, joins, mode = config
    # Offer ids come from a module-global counter; reset it so runs mint
    # identical ids and explain() strings are comparable byte-for-byte.
    commodity._offer_ids = itertools.count(1)
    world = build_world(
        nodes=nodes, n_relations=n_relations, fragments=fragments,
        replicas=replicas, seed=7,
    )
    query = chain_query(joins, selection_cat=3)
    # A fresh cache per run: the equivalence claim covers cache contents
    # and statistics, so both runs must start cold.
    measurement = run_qt(
        world, query, mode=mode, workers=workers,
        offer_cache=OfferCache(), tracer=tracer,
    )
    return _signature(measurement)


def _pinpoint(run) -> str:
    """Re-run both sides traced and locate the first divergent record.

    ``run(workers, tracer)`` must repeat the exact measurement; the
    deterministic trace streams are then structurally diffed so an
    equivalence failure names the divergence site instead of dumping
    two opaque signatures.
    """
    from repro.obs import Tracer, diff_records

    tracer_a, tracer_b = Tracer(), Tracer()
    run(1, tracer_a)
    run(4, tracer_b)
    return diff_records(tracer_a.records, tracer_b.records).render()


def test_parallel_equivalence_sweep():
    for config in CONFIGS:
        serial = _measure(config, workers=1)
        parallel = _measure(config, workers=4)
        assert serial == parallel, (
            f"workers=4 diverged from serial on config {config}: "
            f"{ {k: (serial[k], parallel[k]) for k in serial if serial[k] != parallel[k]} }\n"
            + _pinpoint(lambda w, t: _measure(config, w, tracer=t))
        )


def test_parallel_equivalence_low_dp_threshold():
    """Force the partitioned buyer DP on even for small frontiers."""
    from repro.trading import BiddingProtocol, BuyerPlanGenerator, QueryTrader
    from repro.net import Network
    from repro.parallel import OfferFarm

    def run(workers, threshold):
        commodity._offer_ids = itertools.count(1)
        world = build_world(nodes=12, n_relations=7, seed=7)
        query = chain_query(5, selection_cat=3)
        network = Network(world.model)
        protocol = BiddingProtocol()
        if workers > 1:
            protocol.attach_farm(OfferFarm(workers))
        plangen = BuyerPlanGenerator(
            world.builder, "client", workers=workers,
            parallel_threshold=threshold,
        )
        trader = QueryTrader(
            "client", world.seller_agents(offer_cache=OfferCache()),
            network, plangen, protocol=protocol,
        )
        result = trader.optimize(query)
        return (
            result.found, result.best.plan.explain(), result.best.value,
            result.optimization_time, result.messages.messages,
            result.cache.hits, result.cache.misses,
        )

    assert run(1, 512) == run(4, 1)


def test_twelve_join_full_trade_byte_identical():
    """The PR 6 acceptance case: a 12-join negotiation at workers {1, 4}.

    Beyond the measurement signature, the decision ledger and the
    deterministic JSONL trace bytes must match — the strongest form of
    the equivalence contract, covering every reconstructed decision and
    every exported byte.  On mismatch the structural trace diff names
    the first divergent record.
    """
    from repro.obs import NegotiationLedger, Tracer
    from repro.obs.export import jsonl_lines

    def run(workers, tracer=None):
        commodity._offer_ids = itertools.count(1)
        world = build_world(
            nodes=6, n_relations=13, fragments=2, replicas=2, seed=7
        )
        query = chain_query(12)
        measurement = run_qt(
            world, query, mode="idp", workers=workers,
            offer_cache=OfferCache(), tracer=tracer,
        )
        return _signature(measurement)

    tracer_serial, tracer_parallel = Tracer(), Tracer()
    serial = run(1, tracer=tracer_serial)
    parallel = run(4, tracer=tracer_parallel)
    assert serial == parallel, (
        str({
            k: (serial[k], parallel[k])
            for k in serial
            if serial[k] != parallel[k]
        })
        + "\n"
        + _pinpoint(run)
    )
    ledger_serial = NegotiationLedger.from_records(tracer_serial.records)
    ledger_parallel = NegotiationLedger.from_records(tracer_parallel.records)
    assert ledger_serial == ledger_parallel, _pinpoint(run)
    lines_serial = list(jsonl_lines(tracer_serial.records))
    lines_parallel = list(jsonl_lines(tracer_parallel.records))
    assert lines_serial == lines_parallel, _pinpoint(run)
    # The causal layer inherits the contract: identical DAG and
    # critical-path decomposition bytes, and the replayed critical path
    # reproduces the simulated optimization time exactly.
    from repro.obs import CausalDag, CriticalPath

    dag_serial = CausalDag.from_records(tracer_serial.records)
    dag_parallel = CausalDag.from_records(tracer_parallel.records)
    assert dag_serial.to_json() == dag_parallel.to_json(), _pinpoint(run)
    crit_serial = CriticalPath.from_records(tracer_serial.records)
    crit_parallel = CriticalPath.from_records(tracer_parallel.records)
    assert crit_serial.to_json() == crit_parallel.to_json(), _pinpoint(run)
    assert crit_serial.reconciles()
    assert crit_serial.total == serial["optimization_time"]


def test_faulty_parallel_equivalence():
    def run(workers, tracer=None):
        commodity._offer_ids = itertools.count(1)
        world = build_world(nodes=12, n_relations=7, seed=7)
        query = chain_query(4, selection_cat=3)
        fault_plan = FaultPlan.from_file(str(FAULT_PLAN))
        measurement = run_qt_faulty(
            world, query, fault_plan, timeout=0.05, mode="dp",
            workers=workers, offer_cache=OfferCache(), tracer=tracer,
        )
        return _signature(measurement, FAULT_FIELDS)

    from repro.obs import CausalDag, CriticalPath, Tracer

    tracer_serial, tracer_parallel = Tracer(), Tracer()
    serial = run(1, tracer=tracer_serial)
    parallel = run(4, tracer=tracer_parallel)
    assert serial == parallel, str({
        k: (serial[k], parallel[k])
        for k in serial
        if serial[k] != parallel[k]
    }) + "\n" + _pinpoint(run)
    # The fault machinery actually engaged — this is not a vacuous pass.
    assert serial["dropped"] > 0 or serial["duplicated"] > 0
    # Byte-identical causal view even with drops, duplicates, and the
    # deadline machinery engaged; the replay stays bitwise-exact because
    # every delivery's stamped lat is the injector's own transit delay.
    dag_serial = CausalDag.from_records(tracer_serial.records)
    dag_parallel = CausalDag.from_records(tracer_parallel.records)
    assert dag_serial.to_json() == dag_parallel.to_json(), _pinpoint(run)
    crit_serial = CriticalPath.from_records(tracer_serial.records)
    crit_parallel = CriticalPath.from_records(tracer_parallel.records)
    assert crit_serial.to_json() == crit_parallel.to_json(), _pinpoint(run)
    assert crit_serial.reconciles()
    assert crit_serial.total == serial["optimization_time"]
