"""E1 — optimization time vs. number of joins (QT vs DP vs IDP).

The paper's central cost-of-optimization axis. QT grows mildly with query width; exhaustive distributed DP explodes; IDP-M(2,5) sits between.
"""

from repro.bench.experiments import e1_optimization_time_vs_joins


def test_e1_opt_time_vs_joins(benchmark, report):
    table = benchmark.pedantic(e1_optimization_time_vs_joins, rounds=1, iterations=1)
    report(table)
    assert table.rows
