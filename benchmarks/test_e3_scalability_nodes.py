"""E3 — scalability with federation size.

QT's sellers price their own shares in parallel, so its optimization time flattens while the traditional optimizer's centralized placement enumeration keeps growing — the crossover is the paper's headline.
"""

from repro.bench.experiments import e3_scalability_vs_nodes


def test_e3_scalability_nodes(benchmark, report):
    table = benchmark.pedantic(e3_scalability_vs_nodes, rounds=1, iterations=1)
    report(table)
    assert table.rows
