"""E9 — seller predicates analyser (materialized views).

The telecom scenario's per-(office, custid) charge view answers the manager's coarser aggregate by rollup — plan cost drops when views are on.
"""

from repro.bench.experiments import e9_materialized_views


def test_e9_views(benchmark, report):
    table = benchmark.pedantic(e9_materialized_views, rounds=1, iterations=1)
    report(table)
    assert table.rows
