"""MQO benchmark: cross-session sharing on overlapping analytics.

Drives a :class:`~repro.broker.BrokerService` over the
overlapping-analytics workload
(:func:`repro.workload.build_overlapping_analytics`): several tenant
dashboards refresh together, each perturbing only the driving
selection of a shared join template — so the join interiors repeat
across sessions while the full queries stay distinct.

Two configurations are measured over the identical schedule:

* **baseline** — per-session trading with *private* per-seller offer
  caches (``world.offer_cache = None``): every session re-prices every
  commodity from scratch, the classic no-sharing federation;
* **mqo** — the epoch scheduler batches the sessions, interns the
  shared join interiors, prices each once per epoch, and injects
  amortized seed offers (shared world cache + intern table).

Headline metrics, gated by ``repro bench-check``:

* ``hit_rate_ratio`` — the *effective* cache-hit rate of the MQO run
  over the baseline's.  The effective rate is hits per fresh
  optimization (``hits / misses``, across all sessions *and* the epoch
  prepass): how many priced answers each real optimization serves —
  the cache's amortization factor.  The plain ``hits / lookups``
  fraction saturates at 1.0 and both configurations score well on it
  thanks to within-session round-to-round reuse; hits-per-miss is what
  actually separates cross-session sharing from none.  The gate
  requires **>= 5x**.
* ``aggregate_cost_improved`` — 1 iff the MQO run's summed plan cost
  is strictly below the baseline's (amortized intermediates must make
  the actual plans cheaper, not just the accounting).

Also asserts the split-cost accounting reconciles: every shared
price's per-sharer shares sum back to the full price exactly.

Writes ``BENCH_mqo.json`` at the repository root and appends an
``mqo`` row to the bench history.

Run with::

    PYTHONPATH=src python benchmarks/bench_mqo.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

from repro.bench.envelope import bench_envelope, history
from repro.bench.harness import build_world
from repro.broker import AdmissionConfig, BrokerService, SessionBudget
from repro.broker.sessions import SessionSpec
from repro.mqo import MQOConfig
from repro.workload import OverlapConfig, build_overlapping_analytics

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_mqo.json"

#: Single-fragment relations (replicated analytics marts): a seller can
#: sell a shared join interior as one complete materialized
#: intermediate, which is what the epoch prepass prices and amortizes.
WORLD = dict(
    nodes=8, n_relations=6, rows=10_000, fragments=1, replicas=2, seed=7
)

#: Ratio reported when the baseline hit rate is exactly zero.
RATIO_CAP = 999.0


def run_workload(arrivals, mqo: bool) -> dict:
    """Serve the whole schedule; returns metrics + per-session costs."""
    world = build_world(**WORLD)
    if not mqo:
        # The no-sharing federation: each session's sellers fall back
        # to fresh private caches, nothing crosses session boundaries.
        world.offer_cache = None
    service = BrokerService(
        world=world,
        clock="sim",
        admission=AdmissionConfig(
            max_concurrent=4,
            queue_limit=len(arrivals) + 1,
            budget=SessionBudget(rounds=6),
        ),
        mqo=MQOConfig(epoch_size=len(arrivals), epoch_window=5.0)
        if mqo
        else None,
    )
    try:
        started = time.perf_counter()
        sessions = [
            service.submit(
                SessionSpec(
                    sql=arrival.query.sql(),
                    query=arrival.query,
                    tenant=arrival.tenant,
                )
            )
            for arrival in arrivals
        ]
        assert service.drain(timeout=300.0), "sessions did not drain"
        elapsed = time.perf_counter() - started
        results = [s.result for s in sessions]
        assert all(r is not None and r.found for r in results), (
            "a session failed to negotiate a plan"
        )
        metrics = service.metrics_payload()
    finally:
        service.close()

    hits = metrics["cache"]["hits"]
    misses = metrics["cache"]["misses"]
    intern_hits = metrics["cache"]["intern_hits"]
    mqo_metrics = metrics.get("mqo")
    if mqo_metrics is not None:
        prepass = mqo_metrics["prepass_cache"]
        hits += prepass["hits"]
        misses += prepass["misses"]
        intern_hits += prepass["intern_hits"]
    lookups = hits + misses
    return {
        "sessions": len(sessions),
        "elapsed_s": round(elapsed, 3),
        "aggregate_plan_cost": round(
            sum(r.best.properties.total_time for r in results), 6
        ),
        "aggregate_payments": round(
            sum(r.total_payment for r in results), 6
        ),
        "cache": {
            "hits": hits,
            "misses": misses,
            "intern_hits": intern_hits,
            "hit_rate": round(hits / lookups, 6) if lookups else 0.0,
            "hits_per_miss": round(hits / misses, 6) if misses else 0.0,
        },
        "mqo": mqo_metrics,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="smaller tenant pool"
    )
    args = parser.parse_args()

    config = (
        OverlapConfig(tenants=4, queries_per_tenant=2, seed=7)
        if args.quick
        else OverlapConfig(tenants=6, queries_per_tenant=3, seed=7)
    )
    arrivals = build_overlapping_analytics(config)
    print(
        f"workload: {len(arrivals)} sessions, {config.tenants} tenants, "
        f"{config.templates} shared templates"
    )

    base = run_workload(arrivals, mqo=False)
    shared = run_workload(arrivals, mqo=True)

    base_rate = base["cache"]["hits_per_miss"]
    mqo_rate = shared["cache"]["hits_per_miss"]
    ratio = (
        min(round(mqo_rate / base_rate, 3), RATIO_CAP)
        if base_rate > 0
        else RATIO_CAP
    )
    improved = int(
        shared["aggregate_plan_cost"] < base["aggregate_plan_cost"]
    )
    pricing = shared["mqo"]["shared_pricing"]
    assert pricing["reconciled"], (
        "amortized shares do not sum back to the full shared prices"
    )

    print(
        f"baseline: {base_rate:.3f} hits/optimization, "
        f"aggregate cost {base['aggregate_plan_cost']:.4f}, "
        f"payments {base['aggregate_payments']:.4f}"
    )
    print(
        f"     mqo: {mqo_rate:.3f} hits/optimization ({ratio}x), "
        f"aggregate cost {shared['aggregate_plan_cost']:.4f}, "
        f"payments {shared['aggregate_payments']:.4f}, "
        f"{shared['cache']['intern_hits']} intern hits, "
        f"{shared['mqo']['epochs']} epoch(s)"
    )

    payload = {
        **bench_envelope(),
        "description": (
            "Cross-session MQO on overlapping analytics: shared "
            "subquery interning and amortized epoch pricing vs "
            "per-session trading over the identical schedule."
        ),
        "quick": args.quick,
        "world": WORLD,
        "workload": {
            "sessions": len(arrivals),
            "tenants": config.tenants,
            "queries_per_tenant": config.queries_per_tenant,
            "templates": config.templates,
            "template_relations": config.template_relations,
            "seed": config.seed,
        },
        "baseline": base,
        "mqo": shared,
        "hit_rate_ratio": ratio,
        "aggregate_cost_improved": improved,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    history(REPO_ROOT).append(
        "mqo",
        {
            "hit_rate_ratio": ratio,
            "aggregate_cost_improved": improved,
            "baseline_hits_per_miss": base_rate,
            "mqo_hits_per_miss": mqo_rate,
            "intern_hits": shared["cache"]["intern_hits"],
            "baseline_cost": base["aggregate_plan_cost"],
            "mqo_cost": shared["aggregate_plan_cost"],
            "sessions": len(arrivals),
        },
    )
    print(f"wrote {OUTPUT.name}")


if __name__ == "__main__":
    main()
