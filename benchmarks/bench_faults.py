"""Wall-clock / quality record for the fault-injection experiment family.

Runs E-F1..E-F3 once, recording per-row plan quality, degradation vs the
fault-free reference, simulated negotiation time, and message/fault
accounting, plus the wall-clock seconds each sweep took.  Writes
``BENCH_faults.json`` at the repository root.

Run with::

    PYTHONPATH=src python benchmarks/bench_faults.py
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.bench.envelope import bench_envelope, history
from repro.bench.experiments import (
    ef1_drop_rate_sweep,
    ef2_crash_sweep,
    ef3_timeout_tuning,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_faults.json"


def run_family(fn) -> dict:
    start = time.perf_counter()
    table = fn()
    wall_s = time.perf_counter() - start
    return {
        "experiment": table.experiment,
        "title": table.title,
        "wall_s": round(wall_s, 3),
        "headers": table.headers,
        "rows": [[str(cell) for cell in row] for row in table.rows],
    }


def main() -> None:
    envelope = bench_envelope()
    record = {
        **envelope,
        "benchmark": "fault-injection & resilience (E-F1..E-F3)",
        "families": [
            run_family(ef1_drop_rate_sweep),
            run_family(ef2_crash_sweep),
            run_family(ef3_timeout_tuning),
        ],
    }
    # Quality gates: the record is only worth committing if the
    # resilience machinery actually held plan quality together.
    ef1 = record["families"][0]
    costs = {row[1] for row in ef1["rows"]}
    assert "-" not in costs, "E-F1: some drop rate failed to produce a plan"
    assert len(costs) == 1, "E-F1: plan cost drifted across drop rates"
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    history(REPO_ROOT).append(
        "faults", {"ef1_cost_stable": 1}, envelope=envelope
    )
    for family in record["families"]:
        print(
            f"{family['experiment']}: {len(family['rows'])} rows "
            f"in {family['wall_s']}s"
        )
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
