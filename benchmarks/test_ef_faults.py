"""E-F1..E-F3 — fault injection & resilience.

E-F1 sweeps the uniform message drop rate: QT's round deadlines with
backoff re-issue (plus a full negotiation retry when a round comes up
empty) keep plan quality flat while message/time overhead grows.

E-F2 crashes the fault-free negotiation's winners before delivery: the
buyer voids their contracts and renegotiates among survivors; plans
survive until a needed fragment loses its last replica.

E-F3 tunes the round deadline at a fixed drop rate: tight deadlines
retry aggressively (more messages), loose ones wait out every loss
(more simulated time).
"""

from repro.bench.experiments import (
    ef1_drop_rate_sweep,
    ef2_crash_sweep,
    ef3_timeout_tuning,
)


def test_ef1_drop_rate_sweep(benchmark, report):
    table = benchmark.pedantic(ef1_drop_rate_sweep, rounds=1, iterations=1)
    report(table)
    assert table.rows
    # Every drop rate quiesced and produced a complete plan.
    assert all(cost != "-" for cost in table.column("plan cost"))


def test_ef2_crash_sweep(benchmark, report):
    table = benchmark.pedantic(ef2_crash_sweep, rounds=1, iterations=1)
    report(table)
    assert table.rows
    # Plans survive crashes exactly until a fragment's last replica dies.
    for cost, lost in zip(table.column("plan cost"), table.column("replica lost")):
        assert (cost == "-") == (lost == "yes")


def test_ef3_timeout_tuning(benchmark, report):
    table = benchmark.pedantic(ef3_timeout_tuning, rounds=1, iterations=1)
    report(table)
    assert table.rows
    assert all(cost != "-" for cost in table.column("plan cost"))
