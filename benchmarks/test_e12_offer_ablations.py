"""E12 — seller offer-content ablation.

What the modified DP's exported partials and the per-fragment offers each
contribute: partials give the buyer pre-joined building blocks, fragment
granularity makes disjoint covers assemblable in round one.
"""

from repro.bench.experiments import e12_offer_ablations


def test_e12_offer_ablations(benchmark, report):
    table = benchmark.pedantic(e12_offer_ablations, rounds=1, iterations=1)
    report(table)
    assert table.rows
