"""Wall-clock benchmark: the parallel trading engine vs serial.

Times one negotiation round's offer generation — every seller's
``prepare_offers`` for the buyer's RFB — serially and through the
:class:`~repro.parallel.OfferFarm` process pool, across worker counts,
query widths (joins), and federation sizes (sites); the buyer's
full-lattice parallel DP over 12/14/16-join searches; and the
:func:`~repro.parallel.run_sweep` experiment runner over a job grid.
Offers and plans are asserted byte-identical before any number is
trusted.  Writes ``BENCH_parallel.json`` at the repository root.

The offer worlds use heavy replication/fragmentation so each seller
holds a meaningful local DP — that is the regime the farm targets; with
trivial per-seller work the fork/pickle overhead dominates and the
serial path wins (which the farm's threshold-free design accepts:
callers choose ``--workers``).  Buyer-DP worlds keep sellers cheap
(IDP local optimizers) so the timer isolates the buyer's lattice
search.  Every pool is warmed with :func:`~repro.parallel.warm_pool`
before timing — the executor forks lazily, so a cold pool would bill
worker spawn to the first measured round.

Speedups depend on the host: the ≥2x offer-farm gate (8 joins/32
sites) and the ≥3x buyer-DP gate (12 joins, 8 workers) are enforced
only when the machine reports at least 4 CPUs; below that the numbers
are recorded as measured.

Run with::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import time

import repro.trading.commodity as commodity
from repro.bench.envelope import bench_envelope, history
from repro.bench.harness import build_world
from repro.optimizer import IDPOptimizer
from repro.parallel import (
    OfferFarm,
    SweepJob,
    available_cpus,
    run_sweep,
    warm_pool,
)
from repro.trading import BuyerPlanGenerator, RequestForBids, SellerAgent
from repro.workload import chain_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_parallel.json"

REPEATS = 3
WORKER_COUNTS = (2, 4, 8)
JOINS_CURVE = (4, 6, 8, 10)
SITES_CURVE = (8, 16, 32, 64)
BUYER_JOINS = (12, 14, 16)
BUYER_REPEATS = 2
# Heavy replication: each of the 32 sites holds fragments of many
# relations, so a seller's local DP is real work, not microseconds.
REPLICAS = 8
FRAGMENTS = 6
SPEEDUP_TARGET = 2.0
BUYER_SPEEDUP_TARGET = 3.0
MIN_CPUS_FOR_GATE = 4


def _heavy_world(sites: int, joins: int):
    return build_world(
        nodes=sites,
        n_relations=joins + 1,
        replicas=min(REPLICAS, sites - 2),
        fragments=FRAGMENTS,
        seed=7,
    )


def _offer_round(world, rfb, workers: int) -> tuple[list[str], float]:
    """One full offer-generation round; returns (describes, seconds).

    ``workers == 1`` is the plain serial loop; otherwise the round runs
    through the farm: prepare (fan out + gather) plus per-seller consume,
    i.e. everything the parallel engine adds is inside the timer.
    """
    sellers = world.seller_agents(use_offer_cache=False)
    commodity._offer_ids = itertools.count(1)
    describes: list[str] = []
    start = time.perf_counter()
    if workers == 1:
        for node in sorted(sellers):
            offers, _work = sellers[node].prepare_offers(rfb)
            describes.extend(o.describe() for o in offers)
    else:
        farm = OfferFarm(workers)
        prefetch = farm.prepare(sellers, rfb, exclude="client")
        if prefetch is None:
            raise SystemExit(f"farm refused round (workers={workers})")
        for node in sorted(sellers):
            batch = prefetch.consume(node, sellers[node], rfb)
            offers, _work = batch
            describes.extend(o.describe() for o in offers)
        prefetch.discard()
    return describes, time.perf_counter() - start


def bench_offer_rounds(
    sites: int, joins: int, worker_counts, repeats: int
) -> dict:
    """Best-of-*repeats* round times for serial and each worker count."""
    world = _heavy_world(sites, joins)
    query = chain_query(joins + 1, selection_cat=3)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)

    serial_best = float("inf")
    reference = None
    for _ in range(repeats):
        describes, elapsed = _offer_round(world, rfb, workers=1)
        serial_best = min(serial_best, elapsed)
        reference = describes

    row = {
        "case": f"offers-{joins}j-{sites}s",
        "joins": joins,
        "sites": sites,
        "offers": len(reference),
        "serial_s": serial_best,
        "workers": {},
    }
    for workers in worker_counts:
        warm_pool(workers)  # fork every worker before the clock starts
        best = float("inf")
        for _ in range(repeats):
            describes, elapsed = _offer_round(world, rfb, workers)
            assert describes == reference, (
                f"parallel offers diverged (workers={workers}, "
                f"joins={joins}, sites={sites})"
            )
            best = min(best, elapsed)
        row["workers"][str(workers)] = {
            "best_s": best,
            "speedup": serial_best / best,
        }
    return row


def bench_buyer_dp(joins: int, worker_counts, repeats: int) -> dict:
    """The buyer's full-lattice DP, serial vs cost-balanced parallel.

    One fixed offer set (cheap IDP seller optimizers keep its
    generation off the critical path and under the seller DP's
    relation limit), then the buyer's `dp`-mode plan generation is
    timed across worker counts.  Plans are byte-compared (candidate
    values + ``explain()`` strings + enumerated counts) against the
    serial run before any speedup is reported.
    """
    commodity._offer_ids = itertools.count(1)
    world = build_world(
        nodes=6, n_relations=joins + 1, fragments=2, replicas=2, seed=7
    )
    query = chain_query(joins + 1)
    rfb = RequestForBids(buyer="client", queries=(query,), round_number=1)
    offers = []
    for node in world.nodes:
        if node == "client":
            continue
        agent = SellerAgent(
            world.catalog.local(node),
            world.builder,
            optimizer=IDPOptimizer(world.builder),
            use_offer_cache=False,
        )
        node_offers, _work = agent.prepare_offers(rfb)
        offers.extend(node_offers)

    def run(workers: int) -> tuple[tuple, float]:
        generator = BuyerPlanGenerator(
            world.builder, "client", mode="dp",
            workers=workers, parallel_threshold=1,
        )
        start = time.perf_counter()
        result = generator.generate(query, offers)
        elapsed = time.perf_counter() - start
        signature = (
            result.enumerated,
            tuple(
                (c.value, c.plan.explain()) for c in result.candidates
            ),
        )
        return signature, elapsed

    serial_best = float("inf")
    reference = None
    for _ in range(repeats):
        reference, elapsed = run(1)
        serial_best = min(serial_best, elapsed)

    row = {
        "case": f"buyer-dp-{joins}j",
        "joins": joins,
        "offers": len(offers),
        "enumerated": reference[0],
        "serial_s": serial_best,
        "workers": {},
    }
    for workers in worker_counts:
        warm_pool(workers)
        best = float("inf")
        for _ in range(repeats):
            signature, elapsed = run(workers)
            assert signature == reference, (
                f"buyer DP diverged (workers={workers}, joins={joins})"
            )
            best = min(best, elapsed)
        row["workers"][str(workers)] = {
            "best_s": best,
            "speedup": serial_best / best,
        }
    return row


def bench_sweep(worker_counts, repeats: int, joins_list) -> dict:
    """The parallel sweep runner over a (joins x mode) measurement grid."""
    jobs = [
        SweepJob(
            label=f"qt-{mode}-{joins}j",
            runner="qt",
            world={"nodes": 12, "n_relations": 7, "seed": 7},
            query={"n_relations": joins, "selection_cat": 3},
            run={"mode": mode, "offer_cache": None, "use_offer_cache": False},
        )
        for joins in joins_list
        for mode in ("dp", "idp")
    ]

    def signature(measurements):
        return [
            (m.optimizer, m.plan_cost, m.optimization_time, m.messages,
             m.plan_explain)
            for m in measurements
        ]

    serial_best = float("inf")
    reference = None
    for _ in range(repeats):
        start = time.perf_counter()
        measurements = run_sweep(jobs, workers=1)
        serial_best = min(serial_best, time.perf_counter() - start)
        reference = signature(measurements)

    row = {
        "case": f"sweep-{len(jobs)}-jobs",
        "jobs": len(jobs),
        "serial_s": serial_best,
        "workers": {},
    }
    for workers in worker_counts:
        warm_pool(workers)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            measurements = run_sweep(jobs, workers=workers)
            best = min(best, time.perf_counter() - start)
            assert signature(measurements) == reference, (
                f"sweep measurements diverged (workers={workers})"
            )
        row["workers"][str(workers)] = {
            "best_s": best,
            "speedup": serial_best / best,
        }
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller grid and fewer repeats (for CI smoke runs)",
    )
    args = parser.parse_args()

    repeats = 2 if args.quick else REPEATS
    worker_counts = (2, 4) if args.quick else WORKER_COUNTS
    joins_curve = (4, 8) if args.quick else JOINS_CURVE
    sites_curve = (8, 32) if args.quick else SITES_CURVE
    sweep_joins = (3, 4) if args.quick else (3, 4, 5)
    buyer_joins = (12,) if args.quick else BUYER_JOINS
    buyer_repeats = 1 if args.quick else BUYER_REPEATS

    cpus = available_cpus()
    joins_rows = [
        bench_offer_rounds(32, joins, worker_counts, repeats)
        for joins in joins_curve
    ]
    sites_rows = [
        bench_offer_rounds(sites, 8, worker_counts, repeats)
        for sites in sites_curve
        if sites != 32  # already measured in the joins curve
    ]
    buyer_rows = [
        bench_buyer_dp(joins, worker_counts, buyer_repeats)
        for joins in buyer_joins
    ]
    sweep_row = bench_sweep(worker_counts, repeats, sweep_joins)

    eight_join = next(r for r in joins_rows if r["joins"] == 8)
    accept_workers = "4" if "4" in eight_join["workers"] else str(
        max(int(w) for w in eight_join["workers"])
    )
    accept_speedup = eight_join["workers"][accept_workers]["speedup"]
    gate_enforced = cpus >= MIN_CPUS_FOR_GATE

    twelve_join = next(r for r in buyer_rows if r["joins"] == 12)
    buyer_workers = str(max(int(w) for w in twelve_join["workers"]))
    buyer_speedup = twelve_join["workers"][buyer_workers]["speedup"]
    # The ≥3x buyer target is specified at 8 workers; quick runs cap at
    # 4, so their gate is informational even on big hosts.
    buyer_gate_enforced = gate_enforced and buyer_workers == "8"

    envelope = bench_envelope()
    payload = {
        **envelope,
        "description": (
            "Wall-clock comparison: OfferFarm process-pool offer "
            "generation and the parallel sweep runner vs the serial "
            "paths (offers asserted byte-identical)."
        ),
        "cpus": cpus,
        "repeats_best_of": repeats,
        "quick": args.quick,
        "world": {"replicas": REPLICAS, "fragments": FRAGMENTS},
        "joins_curve": joins_rows,
        "sites_curve": sites_rows,
        "buyer_dp": buyer_rows,
        "sweep": sweep_row,
        "eight_join_32_site": {
            "workers": accept_workers,
            "speedup": accept_speedup,
            "target": SPEEDUP_TARGET,
            "gate_enforced": gate_enforced,
        },
        "twelve_join_buyer": {
            "workers": buyer_workers,
            "speedup": buyer_speedup,
            "target": BUYER_SPEEDUP_TARGET,
            "gate_enforced": buyer_gate_enforced,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    history(REPO_ROOT).append(
        "parallel",
        {
            "eight_join_speedup": accept_speedup,
            "speedup_gate_enforced": gate_enforced,
            "twelve_join_buyer_speedup": buyer_speedup,
            "buyer_gate_enforced": buyer_gate_enforced,
        },
        envelope=envelope,
    )

    for row in joins_rows + sites_rows + buyer_rows + [sweep_row]:
        parts = "  ".join(
            f"w{workers} {entry['best_s'] * 1e3:8.1f} ms "
            f"({entry['speedup']:4.2f}x)"
            for workers, entry in row["workers"].items()
        )
        print(
            f"{row['case']:>18}: serial {row['serial_s'] * 1e3:8.1f} ms  "
            f"{parts}"
        )
    print(f"cpus={cpus}; wrote {OUTPUT}")
    if gate_enforced and accept_speedup < SPEEDUP_TARGET:
        raise SystemExit(
            f"8-join/32-site speedup {accept_speedup:.2f}x "
            f"(workers={accept_workers}) below the "
            f"{SPEEDUP_TARGET:.0f}x target"
        )
    if buyer_gate_enforced and buyer_speedup < BUYER_SPEEDUP_TARGET:
        raise SystemExit(
            f"12-join buyer DP speedup {buyer_speedup:.2f}x "
            f"(workers={buyer_workers}) below the "
            f"{BUYER_SPEEDUP_TARGET:.0f}x target"
        )
    if not gate_enforced:
        print(
            f"note: {cpus} cpu(s) < {MIN_CPUS_FOR_GATE}; "
            f"speedup gates recorded but not enforced"
        )


if __name__ == "__main__":
    main()
