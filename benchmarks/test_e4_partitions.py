"""E4 — horizontal partitions per relation.

Finer partitioning multiplies tradable pieces (offers) and buyer plan-generation work.
"""

from repro.bench.experiments import e4_partitions_per_relation


def test_e4_partitions(benchmark, report):
    table = benchmark.pedantic(e4_partitions_per_relation, rounds=1, iterations=1)
    report(table)
    assert table.rows
