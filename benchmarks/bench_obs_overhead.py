"""Wall-clock overhead of the observability layer.

Times the same negotiation (fresh world, same seed, offer-id counter
reseeded) in three modes:

* ``disabled`` — no tracer attached anywhere (the pre-obs code path),
* ``null``     — ``Tracer(enabled=False)`` attached to the network and
  wired through every component (the ``if tracer.enabled`` guards run,
  nothing records),
* ``enabled``  — a recording tracer, plus one deterministic-JSONL
  export to price the exporter.

Also prices the broker's *live* observability layer (PR 9): the same
bursty session batch is drained through a sim-clock broker with live
observability off and on.  ``live_overhead`` is the fractional cost of
the always-on bookkeeping (site registry + SLO tracking + event ring,
q-error sampling disabled) over the off run — that is the per-session
hot-path tax the <10% gate certifies.  Q-error sampling re-executes
purchased plans against materialized data, which is deliberately
*sampled* background work, so its cost is reported separately
(``live_qerror_overhead``, ungated) rather than hidden in the gate.

Also prices the causal-tracing layer (PR 10): the same faulty
negotiation (drops, duplicates, round deadlines — the configuration
with the most causal-id stamping on the hot path) runs with no tracer
vs a disabled tracer.  ``causal_overhead`` is that fractional cost and
shares the <5% disabled-instrumentation gate; the analysis-side costs
(building the causal DAG and replaying the critical path from an
enabled trace) are reported ungated.

Writes ``BENCH_obs.json`` at the repository root and enforces the
documented contracts: the *null* mode — tracing compiled in but
switched off — costs less than 5% over *disabled* (the plain and the
causal/faulty measurements both), and live-obs-on costs less than 10%
over live-obs-off (per-mode minimum over repeats to shave scheduler
noise).

Run with::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import statistics
import time

import repro.trading.commodity as commodity
from repro.bench.envelope import bench_envelope, history
from repro.bench.harness import build_world, run_qt
from repro.obs import Tracer, jsonl_lines
from repro.trading import OfferCache
from repro.workload import chain_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_obs.json"

OVERHEAD_GATE = 0.05  # null-tracer overhead vs disabled, fractional
LIVE_GATE = 0.10      # broker live-obs-on overhead vs off, fractional

#: The broker world + workload for the live-obs overhead case.
BROKER_WORLD = dict(
    nodes=4, n_relations=4, rows=2_000, fragments=2, replicas=2, seed=7
)


def one_run(joins: int, nodes: int, tracer: Tracer | None) -> tuple[float, int]:
    """Wall seconds for one full trade; also returns records captured."""
    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=nodes, n_relations=max(joins, 3), seed=7)
    query = chain_query(joins)
    start = time.perf_counter()
    measurement = run_qt(world, query, offer_cache=OfferCache(), tracer=tracer)
    if tracer is not None and tracer.enabled:
        for _ in jsonl_lines(tracer.records):  # price the export too
            pass
    elapsed = time.perf_counter() - start
    assert measurement.found, "benchmark trade must find a plan"
    records = len(tracer.records) if tracer is not None else 0
    if tracer is not None:
        tracer.reset()
    return elapsed, records


def time_mode(joins: int, nodes: int, mode: str, repeats: int) -> dict:
    times = []
    records = 0
    for _ in range(repeats):
        tracer = {
            "disabled": None,
            "null": Tracer(enabled=False),
            "enabled": Tracer(),
        }[mode]
        elapsed, captured = one_run(joins, nodes, tracer)
        times.append(elapsed)
        records = max(records, captured)
    return {
        "mode": mode,
        "min_s": round(min(times), 6),
        "median_s": round(statistics.median(times), 6),
        "records": records,
    }


def broker_drain(arrivals, live_obs=None) -> float:
    """Wall seconds to drain *arrivals* through a sim-clock broker."""
    from repro.broker import BrokerService

    commodity._offer_ids = itertools.count(1)
    service = BrokerService(
        world_config=BROKER_WORLD,
        clock="sim",
        live_obs=live_obs,
    )
    try:
        start = time.perf_counter()
        for arrival in arrivals:
            service.submit(service.parse_spec(
                {"sql": arrival.query.sql(), "tenant": arrival.tenant}
            ))
        assert service.drain(timeout=300.0), "broker drain timed out"
        elapsed = time.perf_counter() - start
        if live_obs is not None:
            snapshot = service.live.snapshot()
            assert snapshot["sites"]["sessions"] > 0, (
                "live registry observed no sessions"
            )
    finally:
        service.close()
    return elapsed


def causal_case(repeats: int) -> dict:
    """Price the causal-tracing layer on its busiest code path.

    Fault injection exercises every new stamping site at once — message
    mids on sends, per-delivery latencies, fault verdicts, timeout ids,
    retry re-issues — so a faulty negotiation is where a disabled
    tracer would show causal-stamping overhead if it had any.  Also
    times the offline analyses an *enabled* trace pays for: building
    the :class:`~repro.obs.causal.CausalDag` and replaying the
    :class:`~repro.obs.critpath.CriticalPath` (which the replay itself
    cross-checks: phases must tile the session's simulated time).
    """
    from repro.bench.harness import run_qt_faulty
    from repro.faults import FaultPlan
    from repro.obs import CausalDag, CriticalPath

    joins, nodes = 3, 8
    plan = FaultPlan.uniform(
        drop_rate=0.10, duplicate_rate=0.05, seed=11
    )

    def faulty_run(tracer: Tracer | None) -> float:
        commodity._offer_ids = itertools.count(1)
        world = build_world(nodes=nodes, n_relations=max(joins, 3), seed=7)
        query = chain_query(joins)
        start = time.perf_counter()
        measurement = run_qt_faulty(world, query, plan, tracer=tracer)
        elapsed = time.perf_counter() - start
        assert measurement.found, "faulty benchmark trade must find a plan"
        if tracer is not None:
            tracer.reset()
        return elapsed

    faulty_run(None)  # warm caches / imports
    disabled = [faulty_run(None) for _ in range(repeats)]
    null = [faulty_run(Tracer(enabled=False)) for _ in range(repeats)]
    causal_overhead = min(null) / min(disabled) - 1.0

    # Analysis-side costs from one enabled trace (ungated).
    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=nodes, n_relations=max(joins, 3), seed=7)
    tracer = Tracer()
    run_qt_faulty(world, chain_query(joins), plan, tracer=tracer)
    records = list(tracer.records)
    start = time.perf_counter()
    dag = CausalDag.from_records(records)
    dag_s = time.perf_counter() - start
    start = time.perf_counter()
    critical = CriticalPath.from_records(records)
    critpath_s = time.perf_counter() - start
    assert critical is not None, "faulty trace must yield a critical path"
    assert critical.reconciles(), "critical-path phases must tile the run"
    return {
        "joins": joins,
        "nodes": nodes,
        "repeats": repeats,
        "disabled_min_s": round(min(disabled), 6),
        "null_min_s": round(min(null), 6),
        "causal_overhead": round(causal_overhead, 4),
        "trace_records": len(records),
        "dag_nodes": len(dag.nodes),
        "dag_build_s": round(dag_s, 6),
        "critpath_replay_s": round(critpath_s, 6),
    }


def live_obs_case(repeats: int) -> dict:
    """Broker throughput with live observability off vs on.

    The gated *on* mode runs the full always-on surface (registry, SLO
    tracker, event ring, prometheus-ready state) with q-error sampling
    disabled; a third mode with default q-error sampling prices the
    sampled plan re-execution separately.
    """
    from repro.obs.live import LiveObsConfig
    from repro.workload import BurstConfig, build_bursty_workload

    arrivals = build_bursty_workload(BurstConfig(
        tenants=4, bursts=2, burst_size=4, available_relations=4, seed=11
    ))
    bookkeeping = LiveObsConfig(qerror_sample_every=0)
    sampled = LiveObsConfig()  # default q-error sampling rate
    broker_drain(arrivals)  # warm imports / caches
    off = [broker_drain(arrivals) for _ in range(repeats)]
    on = [broker_drain(arrivals, bookkeeping) for _ in range(repeats)]
    qerror = [broker_drain(arrivals, sampled) for _ in range(repeats)]
    live_overhead = min(on) / min(off) - 1.0
    qerror_overhead = min(qerror) / min(off) - 1.0
    return {
        "sessions": len(arrivals),
        "repeats": repeats,
        "off_min_s": round(min(off), 6),
        "off_median_s": round(statistics.median(off), 6),
        "on_min_s": round(min(on), 6),
        "on_median_s": round(statistics.median(on), 6),
        "qerror_min_s": round(min(qerror), 6),
        "qerror_sample_every": sampled.qerror_sample_every,
        "live_overhead": round(live_overhead, 4),
        "live_qerror_overhead": round(qerror_overhead, 4),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats, smaller world")
    args = parser.parse_args()
    repeats = 3 if args.quick else 7
    cases = [(3, 8)] if args.quick else [(3, 8), (4, 12)]

    results = []
    for joins, nodes in cases:
        one_run(joins, nodes, None)  # warm caches / imports
        modes = {
            mode: time_mode(joins, nodes, mode, repeats)
            for mode in ("disabled", "null", "enabled")
        }
        null_overhead = (
            modes["null"]["min_s"] / modes["disabled"]["min_s"] - 1.0
        )
        enabled_overhead = (
            modes["enabled"]["min_s"] / modes["disabled"]["min_s"] - 1.0
        )
        results.append(
            {
                "joins": joins,
                "nodes": nodes,
                "repeats": repeats,
                "modes": list(modes.values()),
                "null_overhead": round(null_overhead, 4),
                "enabled_overhead": round(enabled_overhead, 4),
            }
        )
        print(
            f"joins={joins} nodes={nodes}: disabled "
            f"{modes['disabled']['min_s']:.4f}s, null "
            f"{modes['null']['min_s']:.4f}s ({null_overhead:+.1%}), enabled "
            f"{modes['enabled']['min_s']:.4f}s ({enabled_overhead:+.1%}, "
            f"{modes['enabled']['records']} records)"
        )

    causal = causal_case(repeats)
    print(
        f"causal tracing (faulty, joins={causal['joins']} "
        f"nodes={causal['nodes']}): disabled {causal['disabled_min_s']:.4f}s, "
        f"null {causal['null_min_s']:.4f}s "
        f"({causal['causal_overhead']:+.1%}); analysis: dag "
        f"{causal['dag_build_s']:.4f}s, critical path "
        f"{causal['critpath_replay_s']:.4f}s over "
        f"{causal['trace_records']} records"
    )

    live = live_obs_case(repeats=3 if args.quick else 5)
    print(
        f"broker live-obs ({live['sessions']} sessions): off "
        f"{live['off_min_s']:.4f}s, on {live['on_min_s']:.4f}s "
        f"({live['live_overhead']:+.1%}); with q-error sampling "
        f"every {live['qerror_sample_every']}th session "
        f"{live['qerror_min_s']:.4f}s ({live['live_qerror_overhead']:+.1%}, "
        f"ungated)"
    )

    envelope = bench_envelope()
    record = {
        **envelope,
        "benchmark": "observability overhead (disabled / null / enabled)",
        "gate_null_overhead_lt": OVERHEAD_GATE,
        "gate_causal_overhead_lt": OVERHEAD_GATE,
        "gate_live_overhead_lt": LIVE_GATE,
        "cases": results,
        "causal": causal,
        "live_obs": live,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    worst = max(case["null_overhead"] for case in results)
    history(REPO_ROOT).append(
        "obs_overhead",
        {
            "worst_null_overhead": worst,
            "causal_overhead": causal["causal_overhead"],
            "live_overhead": live["live_overhead"],
            "live_qerror_overhead": live["live_qerror_overhead"],
        },
        envelope=envelope,
    )
    print(f"wrote {OUTPUT}")

    assert worst < OVERHEAD_GATE, (
        f"null-tracer overhead {worst:.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate"
    )
    print(f"gate ok: worst null-tracer overhead {worst:+.1%} < "
          f"{OVERHEAD_GATE:.0%}")
    assert causal["causal_overhead"] < OVERHEAD_GATE, (
        f"causal-stamping disabled-tracer overhead "
        f"{causal['causal_overhead']:.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate"
    )
    print(f"gate ok: causal disabled-tracer overhead "
          f"{causal['causal_overhead']:+.1%} < {OVERHEAD_GATE:.0%}")
    assert live["live_overhead"] < LIVE_GATE, (
        f"live-obs overhead {live['live_overhead']:.1%} breaches the "
        f"{LIVE_GATE:.0%} gate"
    )
    print(f"gate ok: broker live-obs overhead {live['live_overhead']:+.1%} "
          f"< {LIVE_GATE:.0%}")


if __name__ == "__main__":
    main()
