"""Wall-clock overhead of the observability layer.

Times the same negotiation (fresh world, same seed, offer-id counter
reseeded) in three modes:

* ``disabled`` — no tracer attached anywhere (the pre-obs code path),
* ``null``     — ``Tracer(enabled=False)`` attached to the network and
  wired through every component (the ``if tracer.enabled`` guards run,
  nothing records),
* ``enabled``  — a recording tracer, plus one deterministic-JSONL
  export to price the exporter.

Writes ``BENCH_obs.json`` at the repository root and enforces the
documented contract: the *null* mode — tracing compiled in but switched
off — costs less than 5% over *disabled* (median over repeats; the gate
uses the per-mode minimum to shave scheduler noise).

Run with::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import itertools
import json
import pathlib
import statistics
import time

import repro.trading.commodity as commodity
from repro.bench.envelope import bench_envelope, history
from repro.bench.harness import build_world, run_qt
from repro.obs import Tracer, jsonl_lines
from repro.trading import OfferCache
from repro.workload import chain_query

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_obs.json"

OVERHEAD_GATE = 0.05  # null-tracer overhead vs disabled, fractional


def one_run(joins: int, nodes: int, tracer: Tracer | None) -> tuple[float, int]:
    """Wall seconds for one full trade; also returns records captured."""
    commodity._offer_ids = itertools.count(1)
    world = build_world(nodes=nodes, n_relations=max(joins, 3), seed=7)
    query = chain_query(joins)
    start = time.perf_counter()
    measurement = run_qt(world, query, offer_cache=OfferCache(), tracer=tracer)
    if tracer is not None and tracer.enabled:
        for _ in jsonl_lines(tracer.records):  # price the export too
            pass
    elapsed = time.perf_counter() - start
    assert measurement.found, "benchmark trade must find a plan"
    records = len(tracer.records) if tracer is not None else 0
    if tracer is not None:
        tracer.reset()
    return elapsed, records


def time_mode(joins: int, nodes: int, mode: str, repeats: int) -> dict:
    times = []
    records = 0
    for _ in range(repeats):
        tracer = {
            "disabled": None,
            "null": Tracer(enabled=False),
            "enabled": Tracer(),
        }[mode]
        elapsed, captured = one_run(joins, nodes, tracer)
        times.append(elapsed)
        records = max(records, captured)
    return {
        "mode": mode,
        "min_s": round(min(times), 6),
        "median_s": round(statistics.median(times), 6),
        "records": records,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats, smaller world")
    args = parser.parse_args()
    repeats = 3 if args.quick else 7
    cases = [(3, 8)] if args.quick else [(3, 8), (4, 12)]

    results = []
    for joins, nodes in cases:
        one_run(joins, nodes, None)  # warm caches / imports
        modes = {
            mode: time_mode(joins, nodes, mode, repeats)
            for mode in ("disabled", "null", "enabled")
        }
        null_overhead = (
            modes["null"]["min_s"] / modes["disabled"]["min_s"] - 1.0
        )
        enabled_overhead = (
            modes["enabled"]["min_s"] / modes["disabled"]["min_s"] - 1.0
        )
        results.append(
            {
                "joins": joins,
                "nodes": nodes,
                "repeats": repeats,
                "modes": list(modes.values()),
                "null_overhead": round(null_overhead, 4),
                "enabled_overhead": round(enabled_overhead, 4),
            }
        )
        print(
            f"joins={joins} nodes={nodes}: disabled "
            f"{modes['disabled']['min_s']:.4f}s, null "
            f"{modes['null']['min_s']:.4f}s ({null_overhead:+.1%}), enabled "
            f"{modes['enabled']['min_s']:.4f}s ({enabled_overhead:+.1%}, "
            f"{modes['enabled']['records']} records)"
        )

    envelope = bench_envelope()
    record = {
        **envelope,
        "benchmark": "observability overhead (disabled / null / enabled)",
        "gate_null_overhead_lt": OVERHEAD_GATE,
        "cases": results,
    }
    OUTPUT.write_text(json.dumps(record, indent=2) + "\n")
    worst = max(case["null_overhead"] for case in results)
    history(REPO_ROOT).append(
        "obs_overhead", {"worst_null_overhead": worst}, envelope=envelope
    )
    print(f"wrote {OUTPUT}")

    assert worst < OVERHEAD_GATE, (
        f"null-tracer overhead {worst:.1%} breaches the "
        f"{OVERHEAD_GATE:.0%} gate"
    )
    print(f"gate ok: worst null-tracer overhead {worst:+.1%} < "
          f"{OVERHEAD_GATE:.0%}")


if __name__ == "__main__":
    main()
