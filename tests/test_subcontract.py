"""Unit/integration tests for subcontracting and adaptive re-trading."""

import pytest

from repro.bench.experiments import build_split_federation_world
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.net import MessageKind, Network
from repro.trading import (
    BuyerPlanGenerator,
    QueryTrader,
    RequestForBids,
    SellerAgent,
    Subcontractor,
)
from repro.workload import chain_query


@pytest.fixture(scope="module")
def split_world():
    return build_split_federation_world(n_relations=2, fragments=4,
                                        rows=2_000)


def build_sellers(world, network, subcontracting):
    sellers = {}
    for node in world.nodes:
        if node == "client":
            continue
        sub = Subcontractor(network=network) if subcontracting else None
        sellers[node] = SellerAgent(
            world.catalog.local(node), world.builder, subcontractor=sub
        )
    if subcontracting:
        for node, agent in sellers.items():
            agent.subcontractor.connect(
                {m: a for m, a in sellers.items() if m != node}, network
            )
    return sellers


class TestSubcontractor:
    def test_no_peers_no_offers(self, split_world):
        world = split_world
        agent = SellerAgent(
            world.catalog.local("n0_0"), world.builder,
            subcontractor=Subcontractor(),
        )
        offers, _ = agent.prepare_offers(
            RequestForBids("client", (chain_query(2),))
        )
        # only its own single-relation offers
        assert all(o.aliases == frozenset({"r0"}) for o in offers)

    def test_combined_offers_cover_dropped_relations(self, split_world):
        world = split_world
        network = Network(world.model)
        sellers = build_sellers(world, network, subcontracting=True)
        offers, _ = sellers["n1_0"].prepare_offers(
            RequestForBids("client", (chain_query(2),))
        )
        combined = [o for o in offers if o.aliases == frozenset({"r0", "r1"})]
        assert combined
        # the purchased relation is fully covered
        full = world.catalog.scheme("R0").fragment_ids
        assert all(o.coverage["r0"] == full for o in combined)

    def test_nested_traffic_accounted(self, split_world):
        world = split_world
        network = Network(world.model)
        sellers = build_sellers(world, network, subcontracting=True)
        before = network.stats.messages
        sellers["n1_0"].prepare_offers(
            RequestForBids("client", (chain_query(2),))
        )
        assert network.stats.messages > before
        assert network.stats.count(MessageKind.RFB) > 0

    def test_recursion_bounded_to_one_level(self, split_world):
        world = split_world
        network = Network(world.model)
        sellers = build_sellers(world, network, subcontracting=True)
        sellers["n1_0"].prepare_offers(
            RequestForBids("client", (chain_query(2),))
        )
        # peers keep their subcontractors after being consulted
        assert all(a.subcontractor is not None for a in sellers.values())

    def test_purchase_cost_included_in_price(self, split_world):
        world = split_world
        network = Network(world.model)
        sellers = build_sellers(world, network, subcontracting=True)
        offers, _ = sellers["n1_0"].prepare_offers(
            RequestForBids("client", (chain_query(2),))
        )
        combined = [o for o in offers if o.aliases == frozenset({"r0", "r1"})]
        for offer in combined:
            assert offer.properties.money > offer.true_cost * 0.5

    def test_improves_plans_in_split_federation(self, split_world):
        world = split_world
        query = chain_query(2, selection_cat=3)
        costs = {}
        for subcontracting in (False, True):
            network = Network(world.model)
            sellers = build_sellers(world, network, subcontracting)
            trader = QueryTrader(
                "client", sellers, network,
                BuyerPlanGenerator(world.builder, "client"),
            )
            result = trader.optimize(query)
            assert result.found
            costs[subcontracting] = result.plan_cost
        assert costs[True] < costs[False]

    def test_subcontracted_plan_is_correct(self, split_world):
        world = split_world
        query = chain_query(2, selection_cat=3)
        network = Network(world.model)
        sellers = build_sellers(world, network, subcontracting=True)
        trader = QueryTrader(
            "client", sellers, network,
            BuyerPlanGenerator(world.builder, "client"),
        )
        result = trader.optimize(query)
        data = FederationData.build(world.catalog, seed=3)
        got = PlanExecutor(data, query).run(result.best.plan)
        assert got.equals_unordered(evaluate_query(query, data))


class TestAdaptiveRetrade:
    def test_failed_sellers_excluded(self):
        """With replicated fragments, losing a contracted seller is
        recoverable: the re-trade buys from surviving replica holders."""
        from repro.bench import build_world

        world = build_world(nodes=8, n_relations=2, rows=2_000,
                            fragments=4, replicas=2, seed=5)
        query = chain_query(2, selection_cat=3)
        network = Network(world.model)
        sellers = world.seller_agents()
        trader = QueryTrader(
            "client", sellers, network,
            BuyerPlanGenerator(world.builder, "client"),
        )
        first = trader.optimize(query)
        assert first.found
        failed = {first.contracts[0].seller}
        retraded = trader.retrade_after_failure(query, failed)
        assert retraded.found
        assert not failed & {c.seller for c in retraded.contracts}
        # the original market is restored afterwards
        assert set(trader.sellers) == set(sellers)

    def test_retrade_without_alternatives_fails(self, split_world):
        """Fragments without replicas: losing the only holder of a
        fragment makes the query unanswerable."""
        world = split_world
        query = chain_query(2, selection_cat=3)
        network = Network(world.model)
        sellers = build_sellers(world, network, subcontracting=False)
        trader = QueryTrader(
            "client", sellers, network,
            BuyerPlanGenerator(world.builder, "client"),
        )
        result = trader.retrade_after_failure(query, {"n0_0"})
        assert not result.found
