"""Unit tests for the SQL parser."""

import pytest

from repro.sql import Aggregate, ParseError, Star, column, parse_query
from repro.sql.expr import Comparison, InList, Or


def parse(text, small_schemas):
    return parse_query(text, small_schemas)


class TestBasicParsing:
    def test_star(self, small_schemas):
        q = parse("SELECT * FROM customer", small_schemas)
        assert isinstance(q.projections[0], Star)
        assert q.relations[0].name == "customer"

    def test_alias(self, small_schemas):
        q = parse("SELECT c.custid FROM customer c", small_schemas)
        assert q.relations[0].alias == "c"
        assert q.projections[0] == column("c", "custid")

    def test_join_and_where(self, small_schemas):
        q = parse(
            "SELECT c.office FROM customer c, invoiceline i "
            "WHERE c.custid = i.custid AND i.charge > 10.5",
            small_schemas,
        )
        assert len(q.relations) == 2
        joins = q.join_conjuncts()
        assert len(joins) == 1
        sel = q.selection_on("i")
        assert isinstance(sel, Comparison) and sel.op == ">"
        assert sel.right.value == 10.5

    def test_in_list(self, small_schemas):
        q = parse(
            "SELECT * FROM customer c WHERE c.office IN ('Corfu', 'Myconos')",
            small_schemas,
        )
        pred = q.predicate
        assert isinstance(pred, InList)
        assert pred.values == frozenset({"Corfu", "Myconos"})

    def test_aggregates_and_group_by(self, small_schemas):
        q = parse(
            "SELECT c.office, SUM(i.charge) AS total "
            "FROM customer c, invoiceline i "
            "WHERE c.custid = i.custid GROUP BY c.office",
            small_schemas,
        )
        agg = q.projections[1]
        assert isinstance(agg, Aggregate)
        assert agg.func == "sum" and agg.alias == "total"
        assert q.group_by == (column("c", "office"),)

    def test_count_star(self, small_schemas):
        q = parse("SELECT COUNT(*) FROM customer", small_schemas)
        agg = q.projections[0]
        assert agg.func == "count" and agg.arg is None

    def test_order_by(self, small_schemas):
        q = parse(
            "SELECT c.custid FROM customer c ORDER BY c.custid",
            small_schemas,
        )
        assert q.order_by == (column("c", "custid"),)

    def test_distinct(self, small_schemas):
        q = parse("SELECT DISTINCT c.office FROM customer c", small_schemas)
        assert q.distinct

    def test_or_and_parens(self, small_schemas):
        q = parse(
            "SELECT * FROM customer c "
            "WHERE (c.office = 'Corfu' OR c.office = 'Myconos') "
            "AND c.custid > 5",
            small_schemas,
        )
        conjuncts = q.predicate.conjuncts()
        assert any(isinstance(c, Or) for c in conjuncts)

    def test_string_escape(self, small_schemas):
        q = parse(
            "SELECT * FROM customer c WHERE c.custname = 'O''Neil'",
            small_schemas,
        )
        assert q.predicate.right.value == "O'Neil"

    def test_unqualified_resolution(self, small_schemas):
        q = parse(
            "SELECT office FROM customer WHERE charge = 5 OR office = 'x'",
            small_schemas,
        ) if False else parse(
            "SELECT office FROM customer WHERE office = 'x'", small_schemas
        )
        assert q.projections[0] == column("customer", "office")

    def test_case_insensitive_keywords(self, small_schemas):
        q = parse("select * from customer where custid = 1", small_schemas)
        assert q.predicate.right.value == 1

    def test_round_trip_through_sql(self, small_schemas):
        q1 = parse(
            "SELECT c.office, SUM(i.charge) AS total "
            "FROM customer c, invoiceline i "
            "WHERE c.custid = i.custid AND c.office IN ('Corfu', 'Myconos') "
            "GROUP BY c.office",
            small_schemas,
        )
        q2 = parse(q1.sql(), small_schemas)
        assert q1.key() == q2.key()


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "SELECT *",
            "SELECT * FROM nowhere",
            "SELECT zzz FROM customer",
            "SELECT c.zzz FROM customer c",
            "SELECT * FROM customer c WHERE c.custid ~ 5",
            "SELECT * FROM customer c WHERE c.custid =",
            "SELECT custid FROM customer c, invoiceline i",  # ambiguous
            "SELECT * FROM customer c, customer c",  # duplicate alias
            "SELECT AVG(*) FROM customer",
            "SELECT * FROM customer c WHERE c.office IN ()",
            "SELECT * FROM customer c extra garbage",
        ],
    )
    def test_rejects(self, text, small_schemas):
        with pytest.raises(ParseError):
            parse(text, small_schemas)

    def test_schemas_as_sequence(self, small_schemas):
        q = parse_query(
            "SELECT * FROM customer", list(small_schemas.values())
        )
        assert q.relations[0].name == "customer"
