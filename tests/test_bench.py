"""Unit tests for the benchmark harness and experiment plumbing."""

import pytest

from repro.bench import (
    Measurement,
    build_world,
    format_table,
    run_distdp,
    run_distidp,
    run_mariposa,
    run_qt,
)
from repro.bench.experiments import (
    ExperimentTable,
    build_split_federation_world,
    e5_message_accounting,
    e6_iteration_convergence,
    e9_materialized_views,
    e11_subcontracting,
)
from repro.workload import chain_query


@pytest.fixture(scope="module")
def world():
    return build_world(nodes=6, n_relations=2, rows=1_000, fragments=2,
                       replicas=2, seed=3)


class TestWorld:
    def test_seller_agents_exclude_buyer(self, world):
        agents = world.seller_agents()
        assert "client" not in agents
        assert len(agents) == 6

    def test_agent_kwargs_forwarded(self, world):
        agents = world.seller_agents(offer_partials=False)
        assert all(not a.offer_partials for a in agents.values())


class TestRunners:
    def test_run_qt(self, world):
        m = run_qt(world, chain_query(2))
        assert m.found and m.optimizer == "qt-dp"
        assert m.messages > 0 and m.plan_cost > 0

    def test_run_qt_idp_label(self, world):
        m = run_qt(world, chain_query(2), mode="idp")
        assert m.optimizer == "qt-idp"

    def test_run_qt_subcontracting(self):
        split = build_split_federation_world(fragments=2, rows=1_000)
        plain = run_qt(split, chain_query(2))
        sub = run_qt(split, chain_query(2), subcontracting=True)
        assert sub.plan_cost <= plain.plan_cost + 1e-9

    def test_run_distdp(self, world):
        m = run_distdp(world, chain_query(2))
        assert m.found and m.optimizer == "dist-dp"

    def test_run_distidp(self, world):
        m = run_distidp(world, chain_query(2), m=3)
        assert m.found and "idp" in m.optimizer

    def test_run_mariposa(self, world):
        m = run_mariposa(world, chain_query(2))
        assert m.found and m.optimizer == "mariposa"

    def test_measurement_row(self):
        m = Measurement("x", True, 1.5, 0.25, 10)
        row = m.row()
        assert row[0] == "x" and row[3] == 10


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-header" in lines[2]
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1  # fixed width rows

    def test_experiment_table_helpers(self):
        table = ExperimentTable("EX", "t", ["a", "b"], [[1, 2], [3, 4]])
        assert table.column("b") == [2, 4]
        assert "[EX] t" in table.render()
        with pytest.raises(ValueError):
            table.column("zzz")


class TestExperimentsSmoke:
    """Cheap experiments run end-to-end and report sane shapes."""

    def test_e5(self):
        table = e5_message_accounting(nodes=6)
        by_name = {row[0]: row for row in table.rows}
        assert by_name["dist-dp"][-1] < by_name["qt-dp"][-1]

    def test_e6_values_non_increasing(self):
        table = e6_iteration_convergence()
        values = [
            float(v) for v in table.column("best value") if v != "-"
        ]
        assert values == sorted(values, reverse=True)

    def test_e9_views_cheaper(self):
        table = e9_materialized_views(n_offices=3,
                                      customers_per_office=300)
        costs = [float(v) for v in table.column("plan cost")]
        assert costs[1] < costs[0]  # views on < views off

    def test_e11_subcontracting_cheaper_but_chattier(self):
        table = e11_subcontracting()
        off, on = table.rows
        assert float(on[1]) < float(off[1])  # plan cost
        assert on[2] > off[2]  # messages
