"""End-to-end correctness: every optimizer's plan must compute the same
answer as a centralized evaluation of the original query.

This is the framework's master invariant — trading may change *where* and
*how* the query runs, never *what* it returns.
"""

import pytest

from repro.baselines import (
    DistributedDPOptimizer,
    DistributedIDPOptimizer,
    MariposaBroker,
)
from repro.execution import FederationData, PlanExecutor, evaluate_query
from repro.net import Network
from repro.trading import SellerAgent
from repro.workload import WorkloadConfig, chain_query, generate_workload, star_query
from tests.conftest import make_federation, make_trader


def small_world(seed, fragments=3, replicas=2, nodes=6):
    catalog, node_list, estimator, model, builder = make_federation(
        nodes=nodes,
        n_relations=4,
        rows=240,
        fragments=fragments,
        replicas=replicas,
        seed=seed,
    )
    data = FederationData.build(catalog, seed=seed)
    return catalog, node_list, model, builder, data


QUERIES = [
    chain_query(1, selection_cat=2),
    chain_query(2),
    chain_query(2, selection_cat=1),
    chain_query(3, selection_cat=4),
    chain_query(2, aggregate=True),
    chain_query(3, aggregate=True, selection_cat=0),
    star_query(2, selection_cat=3),
    star_query(2, aggregate=True),
]


class TestQTCorrectness:
    @pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.sql()[:60])
    def test_qt_plan_equals_centralized(self, query):
        catalog, node_list, model, builder, data = small_world(seed=13)
        trader, _ = make_trader(catalog, node_list, builder, model)
        result = trader.optimize(query)
        assert result.found, f"no plan for {query.sql()}"
        got = PlanExecutor(data, query).run(result.best.plan)
        ref = evaluate_query(query, data)
        assert got.equals_unordered(ref), query.sql()

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_worlds(self, seed):
        catalog, node_list, model, builder, data = small_world(
            seed=seed, fragments=2 + seed % 3, replicas=1 + seed % 2
        )
        trader, _ = make_trader(catalog, node_list, builder, model)
        for query in generate_workload(
            WorkloadConfig(
                queries=4,
                min_relations=1,
                max_relations=3,
                available_relations=4,
                seed=seed,
            )
        ):
            result = trader.optimize(query)
            assert result.found, query.sql()
            got = PlanExecutor(data, query).run(result.best.plan)
            ref = evaluate_query(query, data)
            assert got.equals_unordered(ref), query.sql()

    def test_idp_plan_generator_correct(self):
        catalog, node_list, model, builder, data = small_world(seed=21)
        trader, _ = make_trader(
            catalog, node_list, builder, model, mode="idp"
        )
        query = chain_query(3, selection_cat=2)
        result = trader.optimize(query)
        assert result.found
        got = PlanExecutor(data, query).run(result.best.plan)
        assert got.equals_unordered(evaluate_query(query, data))


class TestBaselineCorrectness:
    @pytest.mark.parametrize(
        "query",
        [chain_query(2, selection_cat=1), chain_query(3),
         chain_query(2, aggregate=True)],
        ids=lambda q: q.sql()[:50],
    )
    def test_distributed_dp_equals_centralized(self, query):
        catalog, node_list, model, builder, data = small_world(seed=31)
        opt = DistributedDPOptimizer(catalog, builder, "client")
        result = opt.optimize(query)
        assert result.found
        got = PlanExecutor(data, query).run(result.plan)
        assert got.equals_unordered(evaluate_query(query, data))

    def test_distributed_idp_equals_centralized(self):
        catalog, node_list, model, builder, data = small_world(seed=32)
        query = chain_query(3, selection_cat=1)
        opt = DistributedIDPOptimizer(catalog, builder, "client", m=2)
        result = opt.optimize(query)
        assert result.found
        got = PlanExecutor(data, query).run(result.plan)
        assert got.equals_unordered(evaluate_query(query, data))

    def test_mariposa_equals_centralized(self):
        catalog, node_list, model, builder, data = small_world(seed=33)
        query = chain_query(2, selection_cat=2)
        network = Network(model)
        sellers = {
            node: SellerAgent(catalog.local(node), builder)
            for node in node_list
            if node != "client"
        }
        broker = MariposaBroker("client", sellers, network, builder)
        result = broker.optimize(query)
        assert result.found
        got = PlanExecutor(data, query).run(result.plan)
        assert got.equals_unordered(evaluate_query(query, data))


class TestCrossOptimizerConsistency:
    def test_all_optimizers_same_answer(self):
        """QT, DistDP, and Mariposa plans all compute identical results."""
        catalog, node_list, model, builder, data = small_world(seed=44)
        query = chain_query(3, selection_cat=1)
        answers = []

        trader, _ = make_trader(catalog, node_list, builder, model)
        qt = trader.optimize(query)
        answers.append(PlanExecutor(data, query).run(qt.best.plan))

        dp = DistributedDPOptimizer(catalog, builder, "client").optimize(query)
        answers.append(PlanExecutor(data, query).run(dp.plan))

        network = Network(model)
        sellers = {
            node: SellerAgent(catalog.local(node), builder)
            for node in node_list
            if node != "client"
        }
        mp = MariposaBroker("client", sellers, network, builder).optimize(query)
        answers.append(PlanExecutor(data, query).run(mp.plan))

        for other in answers[1:]:
            assert answers[0].equals_unordered(other)
