"""Unit tests for node/network cost models."""

import pytest

from repro.cost import CostModel, NetworkParameters, NodeCapabilities


class TestNodeCapabilities:
    def test_defaults(self):
        caps = NodeCapabilities()
        assert caps.slowdown == 1.0

    def test_load_slowdown(self):
        caps = NodeCapabilities(load=1.0)
        assert caps.slowdown == 2.0

    def test_with_load(self):
        caps = NodeCapabilities().with_load(0.5)
        assert caps.load == 0.5

    @pytest.mark.parametrize(
        "kwargs", [dict(cpu_rate=0), dict(io_rate=-1), dict(load=-0.1)]
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NodeCapabilities(**kwargs)


class TestNetworkParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkParameters(latency=-1)
        with pytest.raises(ValueError):
            NetworkParameters(bandwidth=0)


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CostModel(NetworkParameters(latency=0.01, bandwidth=1e6,
                                           row_bytes=100))

    def test_scan_linear(self, model):
        caps = NodeCapabilities(io_rate=1000)
        assert model.scan(2000, caps) == pytest.approx(2.0)

    def test_load_scales_scan(self, model):
        caps = NodeCapabilities(io_rate=1000, load=1.0)
        assert model.scan(1000, caps) == pytest.approx(2.0)

    def test_hash_join_cheaper_than_nested_loop(self, model):
        caps = NodeCapabilities()
        hj = model.hash_join(10_000, 10_000, 1_000, caps)
        nl = model.nested_loop_join(10_000, 10_000, caps)
        assert hj < nl

    def test_sort_superlinear(self, model):
        caps = NodeCapabilities()
        assert model.sort(10_000, caps) > 10 * model.sort(1_000, caps) / 1.4

    def test_sort_tiny_input(self, model):
        caps = NodeCapabilities()
        assert model.sort(1, caps) > 0

    def test_transfer(self, model):
        # 1000 rows * 100 bytes / 1e6 B/s + 0.01 latency
        assert model.transfer(1000) == pytest.approx(0.11)

    def test_control_message(self, model):
        assert model.control_message() == pytest.approx(
            0.01 + 1024 / 1e6
        )

    def test_monetary(self, model):
        caps = NodeCapabilities(price_per_second=2.0)
        assert model.monetary(3.0, caps) == 6.0

    def test_result_bytes(self, model):
        assert model.result_bytes(10) == 1000
