"""Unit tests for the execution engine and reference evaluator."""

import pytest

from repro.cost import CardinalityEstimator, CostModel, stats_for_catalog
from repro.execution import (
    FederationData,
    PlanExecutor,
    ResultSet,
    evaluate_query,
)
from repro.execution.tables import Table, materialize_catalog
from repro.optimizer import DynamicProgrammingOptimizer, PlanBuilder
from repro.sql import Relation, RelationRef, SPJQuery, column, conjoin, eq
from repro.sql.query import Aggregate
from repro.workload import chain_query
from tests.conftest import make_federation


@pytest.fixture(scope="module")
def world():
    catalog, nodes, estimator, model, builder = make_federation(
        nodes=6, n_relations=3, rows=300, fragments=3, replicas=2, seed=5
    )
    data = FederationData.build(catalog, seed=1)
    return catalog, builder, data


class TestTable:
    def test_from_rows_round_trip(self):
        rel = Relation.of("r", "a", ("b", "float"), ("c", "str"))
        table = Table.from_rows(
            rel, [{"a": 1, "b": 2.5, "c": "x"}, {"a": 2, "b": 0.5, "c": "y"}]
        )
        assert table.row_count == 2
        rows = table.rows_as_dicts("t")
        assert rows[0][column("t", "a")] == 1
        assert rows[1][column("t", "c")] == "y"
        # values are native python, not numpy scalars
        assert type(rows[0][column("t", "a")]) is int

    def test_schema_mismatch_rejected(self):
        rel = Relation.of("r", "a")
        with pytest.raises(ValueError):
            Table(rel, {"zzz": __import__("numpy").array([1])})

    def test_concat(self):
        rel = Relation.of("r", "a")
        t1 = Table.from_rows(rel, [{"a": 1}])
        t2 = Table.from_rows(rel, [{"a": 2}])
        assert t1.concat(t2).row_count == 2


class TestMaterialization:
    def test_fragment_rows_respect_predicates(self, world):
        catalog, _, data = world
        for name in catalog.relation_names():
            scheme = catalog.scheme(name)
            for fragment in scheme.fragments:
                table = data.tables[(name, fragment.fragment_id)]
                assert table.row_count == fragment.row_count
                for row in table.rows_as_dicts(name):
                    from repro.sql.expr import TRUE

                    if fragment.predicate is not TRUE:
                        assert fragment.predicate.evaluate(row)

    def test_deterministic(self, world):
        catalog, _, _ = world
        t1 = materialize_catalog(catalog, seed=9)
        t2 = materialize_catalog(catalog, seed=9)
        key = ("R0", 0)
        assert (
            t1[key].columns["val"] == t2[key].columns["val"]
        ).all()


class TestReferenceEvaluator:
    def test_selection(self, world):
        catalog, _, data = world
        query = chain_query(1, selection_cat=3)
        result = evaluate_query(query, data)
        cat_index = list(result.columns).index("r0.cat")
        assert all(row[cat_index] == 3 for row in result.rows)

    def test_join_matches_manual(self, world):
        catalog, _, data = world
        query = chain_query(2)
        result = evaluate_query(query, data)
        # manual nested-loop check on a sample
        r0 = {
            row[column("x", "id")]: row
            for row in data.relation_rows("R1", "x")
        }
        expected = 0
        for row in data.relation_rows("R0", "y"):
            if row[column("y", "ref0")] in r0:
                expected += 1
        assert len(result.rows) == expected

    def test_coverage_restricts(self, world):
        catalog, _, data = world
        query = chain_query(1)
        full = evaluate_query(query, data)
        partial = evaluate_query(
            query, data, coverage={"r0": frozenset({0})}
        )
        assert len(partial.rows) < len(full.rows)

    def test_aggregate(self, world):
        catalog, _, data = world
        query = chain_query(1, aggregate=True)
        result = evaluate_query(query, data)
        # one row per part fragment value
        assert len(result.rows) == 3
        total = sum(row[1] for row in result.rows)
        raw = sum(
            row[column("r0", "val")]
            for row in data.relation_rows("R0", "r0")
        )
        assert total == pytest.approx(raw)

    def test_scalar_aggregate_on_empty_input(self, world):
        catalog, _, data = world
        query = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            predicate=conjoin(
                [eq(column("r0", "cat"), 3), eq(column("r0", "cat"), 4)]
            ),
            projections=(Aggregate("count", None, "n"),),
        )
        result = evaluate_query(query, data)
        assert result.rows == [(0,)]

    def test_distinct(self, world):
        catalog, _, data = world
        query = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            projections=(column("r0", "cat"),),
            distinct=True,
        )
        result = evaluate_query(query, data)
        assert len(result.rows) == len(set(result.rows))

    def test_order_by(self, world):
        catalog, _, data = world
        query = SPJQuery(
            relations=(RelationRef.of("R0", "r0"),),
            projections=(column("r0", "id"),),
            order_by=(column("r0", "id"),),
        )
        result = evaluate_query(query, data)
        values = [row[0] for row in result.rows]
        assert values == sorted(values)
        assert result.ordered


class TestPlanExecutor:
    def test_local_plan_matches_reference(self, world):
        catalog, builder, data = world
        query = chain_query(2, selection_cat=1)
        plan = DynamicProgrammingOptimizer(builder).optimize(
            query, "node0"
        ).plan
        got = PlanExecutor(data, query).run(plan)
        ref = evaluate_query(query, data)
        assert got.equals_unordered(ref)

    def test_aggregate_plan_matches_reference(self, world):
        catalog, builder, data = world
        query = chain_query(2, aggregate=True)
        plan = DynamicProgrammingOptimizer(builder).optimize(
            query, "node0"
        ).plan
        got = PlanExecutor(data, query).run(plan)
        ref = evaluate_query(query, data)
        assert got.equals_unordered(ref)

    def test_coverage_scan(self, world):
        catalog, builder, data = world
        query = chain_query(1)
        plan = DynamicProgrammingOptimizer(builder).optimize(
            query, "node0", coverage={"r0": frozenset({1})}
        ).plan
        got = PlanExecutor(data, query).run(plan)
        ref = evaluate_query(query, data, coverage={"r0": frozenset({1})})
        assert got.equals_unordered(ref)


class TestResultSet:
    def test_equals_unordered(self):
        a = ResultSet(("x",), [(1,), (2,)])
        b = ResultSet(("x",), [(2,), (1,)])
        assert a.equals_unordered(b)

    def test_float_rounding(self):
        a = ResultSet(("x",), [(0.1 + 0.2,)])
        b = ResultSet(("x",), [(0.3,)])
        assert a.equals_unordered(b)

    def test_differs(self):
        a = ResultSet(("x",), [(1,)])
        b = ResultSet(("x",), [(2,)])
        assert not a.equals_unordered(b)
